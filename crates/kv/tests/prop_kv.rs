//! Property tests for the KV service, in the style of `prop_http.rs` /
//! `prop_stm.rs`: protocol round trips survive arbitrary chunking, and the
//! sharded store (both backends, with TTLs) is model-checked against a
//! plain `HashMap` reference under a deterministic `simos` schedule.

use std::collections::HashMap;
use std::sync::Arc;

use bytes::Bytes;
use eveth_core::time::SECS;
use eveth_kv::protocol::{Command, CommandParser, Reply, ReplyParser};
use eveth_kv::store::{
    Backend, CasOutcome, ConcatOutcome, CounterResult, Entry, ShardedStore, StoreConfig,
};
use eveth_simos::SimRuntime;
use proptest::prelude::*;

fn arb_key() -> impl Strategy<Value = String> {
    "[a-e]{1,3}"
}

/// One abstract store operation with explicit virtual time.
#[derive(Debug, Clone)]
enum Op {
    Set {
        key: String,
        value: Vec<u8>,
        ttl_secs: u64,
    },
    Add {
        key: String,
        value: Vec<u8>,
        ttl_secs: u64,
    },
    Replace {
        key: String,
        value: Vec<u8>,
        ttl_secs: u64,
    },
    /// `gets`-then-`cas`: uses the key's current stamp when `stale` is
    /// false (must store), a mismatching one when true (must reject).
    Cas {
        key: String,
        value: Vec<u8>,
        stale: bool,
    },
    Append {
        key: String,
        value: Vec<u8>,
    },
    Prepend {
        key: String,
        value: Vec<u8>,
    },
    Touch {
        key: String,
        ttl_secs: u64,
    },
    Get {
        key: String,
    },
    Gets {
        key: String,
    },
    Delete {
        key: String,
    },
    Incr {
        key: String,
        delta: u64,
    },
    Purge,
    Advance {
        secs: u64,
    },
}

fn arb_op() -> impl Strategy<Value = Op> {
    let val = || proptest::collection::vec(any::<u8>(), 0..32);
    prop_oneof![
        (arb_key(), val(), 0u64..4).prop_map(|(key, value, ttl_secs)| Op::Set {
            key,
            value,
            ttl_secs
        }),
        (arb_key(), val(), 0u64..4).prop_map(|(key, value, ttl_secs)| Op::Add {
            key,
            value,
            ttl_secs
        }),
        (arb_key(), val(), 0u64..4).prop_map(|(key, value, ttl_secs)| Op::Replace {
            key,
            value,
            ttl_secs
        }),
        (arb_key(), val(), any::<bool>()).prop_map(|(key, value, stale)| Op::Cas {
            key,
            value,
            stale
        }),
        (arb_key(), val()).prop_map(|(key, value)| Op::Append { key, value }),
        (arb_key(), val()).prop_map(|(key, value)| Op::Prepend { key, value }),
        (arb_key(), 0u64..4).prop_map(|(key, ttl_secs)| Op::Touch { key, ttl_secs }),
        arb_key().prop_map(|key| Op::Get { key }),
        arb_key().prop_map(|key| Op::Gets { key }),
        arb_key().prop_map(|key| Op::Delete { key }),
        (arb_key(), 0u64..100).prop_map(|(key, delta)| Op::Incr { key, delta }),
        Just(Op::Purge),
        (1u64..3).prop_map(|secs| Op::Advance { secs }),
    ]
}

/// A modelled live entry: value, deadline, version stamp.
#[derive(Debug, Clone)]
struct Slot {
    value: Vec<u8>,
    deadline: Option<u64>,
    version: u64,
}

/// The reference model, driven by the same virtual clock the simulated
/// store sees. It mirrors the store's stamping rule exactly: one version
/// is drawn per mutating operation call (set/add/replace/cas/incr),
/// applied only when the write commits.
struct Model {
    map: HashMap<String, Slot>,
    next_version: u64,
}

impl Default for Model {
    fn default() -> Self {
        Model {
            map: HashMap::new(),
            next_version: 1,
        }
    }
}

impl Model {
    fn stamp(&mut self) -> u64 {
        let v = self.next_version;
        self.next_version += 1;
        v
    }

    fn expire(&mut self, key: &str, now: u64) -> bool {
        if let Some(Slot {
            deadline: Some(d), ..
        }) = self.map.get(key)
        {
            if *d <= now {
                self.map.remove(key);
                return true;
            }
        }
        false
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Arbitrary op sequences against both backends match the reference
    /// model exactly, including TTL behaviour, when run on the simulated
    /// runtime's deterministic schedule.
    #[test]
    fn store_matches_hashmap_reference(
        ops in proptest::collection::vec(arb_op(), 1..60),
        shards in 1usize..5,
        stm in any::<bool>(),
    ) {
        let backend = if stm { Backend::Stm } else { Backend::Mutex };
        let sim = SimRuntime::new_default();
        let store = ShardedStore::new(StoreConfig {
            shards,
            backend,
            ..Default::default()
        });
        let mut model = Model::default();

        for op in ops {
            let now = sim.now();
            match op {
                Op::Set { key, value, ttl_secs } => {
                    let st = Arc::clone(&store);
                    let k = Bytes::from(key.clone().into_bytes());
                    let entry = Entry {
                        value: Bytes::from(value.clone()),
                        flags: 7,
                        expires_at: ShardedStore::deadline(now, ttl_secs),
                        version: 0,
                    };
                    sim.block_on(st.set(k, entry)).unwrap();
                    let version = model.stamp();
                    model.map.insert(key, Slot {
                        value,
                        deadline: ShardedStore::deadline(now, ttl_secs),
                        version,
                    });
                }
                Op::Add { key, value, ttl_secs } => {
                    let st = Arc::clone(&store);
                    let k = Bytes::from(key.clone().into_bytes());
                    let entry = Entry {
                        value: Bytes::from(value.clone()),
                        flags: 7,
                        expires_at: ShardedStore::deadline(now, ttl_secs),
                        version: 0,
                    };
                    let stored = sim.block_on(st.add(k, entry, now)).unwrap();
                    let version = model.stamp();
                    model.expire(&key, now);
                    let absent = !model.map.contains_key(&key);
                    prop_assert_eq!(stored, absent, "add mismatch for {}", key);
                    if absent {
                        model.map.insert(key, Slot {
                            value,
                            deadline: ShardedStore::deadline(now, ttl_secs),
                            version,
                        });
                    }
                }
                Op::Replace { key, value, ttl_secs } => {
                    let st = Arc::clone(&store);
                    let k = Bytes::from(key.clone().into_bytes());
                    let entry = Entry {
                        value: Bytes::from(value.clone()),
                        flags: 7,
                        expires_at: ShardedStore::deadline(now, ttl_secs),
                        version: 0,
                    };
                    let stored = sim.block_on(st.replace(k, entry, now)).unwrap();
                    let version = model.stamp();
                    model.expire(&key, now);
                    let present = model.map.contains_key(&key);
                    prop_assert_eq!(stored, present, "replace mismatch for {}", key);
                    if present {
                        model.map.insert(key, Slot {
                            value,
                            deadline: ShardedStore::deadline(now, ttl_secs),
                            version,
                        });
                    }
                }
                Op::Cas { key, value, stale } => {
                    let st = Arc::clone(&store);
                    let k = Bytes::from(key.clone().into_bytes());
                    // The stamp a well-behaved client would have seen via
                    // `gets` (bogus 0 when the key is dead — then NotFound
                    // is the only correct answer); +1 models a concurrent
                    // writer having intervened.
                    let live_version = {
                        let peek = model.map.get(&key).filter(|s| {
                            s.deadline.is_none_or(|d| d > now)
                        });
                        peek.map(|s| s.version).unwrap_or(0)
                    };
                    let expected = if stale { live_version.wrapping_add(1) } else { live_version };
                    let entry = Entry {
                        value: Bytes::from(value.clone()),
                        flags: 7,
                        expires_at: None,
                        version: 0,
                    };
                    let outcome = sim.block_on(st.cas(k, entry, expected, now)).unwrap();
                    let version = model.stamp();
                    model.expire(&key, now);
                    match model.map.get_mut(&key) {
                        None => prop_assert_eq!(outcome, CasOutcome::NotFound, "cas on dead {}", key),
                        Some(slot) if slot.version == expected => {
                            prop_assert_eq!(outcome, CasOutcome::Stored, "cas match for {}", key);
                            *slot = Slot { value, deadline: None, version };
                        }
                        Some(_) => {
                            prop_assert_eq!(outcome, CasOutcome::Exists, "stale cas for {}", key);
                        }
                    }
                }
                op @ (Op::Append { .. } | Op::Prepend { .. }) => {
                    let (key, value, is_prepend) = match op {
                        Op::Append { key, value } => (key, value, false),
                        Op::Prepend { key, value } => (key, value, true),
                        _ => unreachable!(),
                    };
                    let st = Arc::clone(&store);
                    let k = Bytes::from(key.clone().into_bytes());
                    let outcome = sim
                        .block_on(st.concat(k, Bytes::from(value.clone()), is_prepend, now))
                        .unwrap();
                    let version = model.stamp();
                    model.expire(&key, now);
                    match model.map.get_mut(&key) {
                        None => prop_assert_eq!(
                            outcome,
                            ConcatOutcome::Missing,
                            "concat on dead {}",
                            key
                        ),
                        Some(slot) => {
                            // Test values are ≤ 32 bytes against a 1 MiB
                            // cap, so TooLarge is unreachable here.
                            prop_assert_eq!(outcome, ConcatOutcome::Stored, "concat {}", key);
                            if is_prepend {
                                let mut joined = value;
                                joined.extend_from_slice(&slot.value);
                                slot.value = joined;
                            } else {
                                slot.value.extend_from_slice(&value);
                            }
                            // Concatenation keeps flags and deadline but
                            // re-stamps the entry.
                            slot.version = version;
                        }
                    }
                }
                Op::Touch { key, ttl_secs } => {
                    let st = Arc::clone(&store);
                    let k = Bytes::from(key.clone().into_bytes());
                    let deadline = ShardedStore::deadline(now, ttl_secs);
                    let touched = sim.block_on(st.touch(k, deadline, now)).unwrap();
                    let version = model.stamp();
                    model.expire(&key, now);
                    match model.map.get_mut(&key) {
                        None => prop_assert!(!touched, "touch on dead {}", key),
                        Some(slot) => {
                            prop_assert!(touched, "touch on live {}", key);
                            slot.deadline = deadline;
                            slot.version = version;
                        }
                    }
                }
                Op::Get { key } | Op::Gets { key } => {
                    let st = Arc::clone(&store);
                    let k = Bytes::from(key.clone().into_bytes());
                    let got = sim.block_on(st.get(k, now)).unwrap();
                    model.expire(&key, now);
                    let want = model.map.get(&key);
                    match (got, want) {
                        (None, None) => {}
                        (Some(e), Some(slot)) => {
                            prop_assert_eq!(e.value.to_vec(), slot.value.clone(), "value mismatch for {}", key);
                            prop_assert_eq!(e.flags, 7);
                            prop_assert_eq!(e.version, slot.version, "version stamp mismatch for {}", key);
                        }
                        (got, want) => {
                            panic!("presence mismatch for {key}: store={got:?} model={want:?}");
                        }
                    }
                }
                Op::Delete { key } => {
                    let st = Arc::clone(&store);
                    let k = Bytes::from(key.clone().into_bytes());
                    let removed = sim.block_on(st.delete(k, now)).unwrap();
                    let was_expired = model.expire(&key, now);
                    let model_removed = model.map.remove(&key).is_some() && !was_expired;
                    prop_assert_eq!(removed, model_removed, "delete mismatch for {}", key);
                }
                Op::Incr { key, delta } => {
                    let st = Arc::clone(&store);
                    let k = Bytes::from(key.clone().into_bytes());
                    let res = sim.block_on(st.counter_op(k, delta, false, now)).unwrap();
                    let version = model.stamp();
                    model.expire(&key, now);
                    match (res, model.map.get_mut(&key)) {
                        (CounterResult::NotFound, None) => {}
                        (CounterResult::Ok(v), Some(slot)) => {
                            let cur: u64 = std::str::from_utf8(&slot.value).unwrap().parse().unwrap();
                            let next = cur.wrapping_add(delta);
                            prop_assert_eq!(v, next, "incr result for {}", key);
                            slot.value = next.to_string().into_bytes();
                            slot.version = version;
                        }
                        (CounterResult::NotNumeric, Some(slot)) => {
                            let numeric = std::str::from_utf8(&slot.value)
                                .ok()
                                .and_then(|s| s.parse::<u64>().ok())
                                .is_some();
                            prop_assert!(!numeric, "store said NotNumeric but model has a number");
                        }
                        (res, want) => {
                            panic!("incr mismatch for {key}: store={res:?} model={want:?}");
                        }
                    }
                }
                Op::Purge => {
                    for idx in 0..store.shard_count() {
                        let st = Arc::clone(&store);
                        sim.block_on(st.purge_shard(idx, now)).unwrap();
                    }
                    let keys: Vec<String> = model.map.keys().cloned().collect();
                    for k in keys {
                        model.expire(&k, now);
                    }
                }
                Op::Advance { secs } => {
                    sim.block_on(eveth_core::syscall::sys_sleep(secs * SECS)).unwrap();
                }
            }
        }
        // Final reconciliation: purge everything at one fixed `now` and
        // expire the model at the same instant; live counts must agree.
        let now = sim.now();
        for idx in 0..store.shard_count() {
            let st = Arc::clone(&store);
            sim.block_on(st.purge_shard(idx, now)).unwrap();
        }
        let keys: Vec<String> = model.map.keys().cloned().collect();
        for k in keys {
            model.expire(&k, now);
        }
        prop_assert_eq!(store.len_now(), model.map.len(), "final live-entry count");
    }

    /// Any command encodes → parses back identically, no matter how the
    /// bytes are sliced into recv-sized chunks.
    #[test]
    fn command_roundtrip_any_chunking(
        key in "[a-z0-9]{1,16}",
        value in proptest::collection::vec(any::<u8>(), 0..512),
        flags in any::<u32>(),
        exptime in 0u64..100_000,
        noreply in any::<bool>(),
        cuts in proptest::collection::vec(1usize..64, 0..16),
    ) {
        let mut raw = format!("set {key} {flags} {exptime} {}", value.len())
            .into_bytes();
        if noreply {
            raw.extend_from_slice(b" noreply");
        }
        raw.extend_from_slice(b"\r\n");
        raw.extend_from_slice(&value);
        raw.extend_from_slice(b"\r\n");

        let mut parser = CommandParser::new();
        let mut parsed = None;
        let mut pos = 0;
        let mut cut_iter = cuts.into_iter();
        while pos < raw.len() {
            let step = cut_iter.next().unwrap_or(raw.len()).min(raw.len() - pos);
            if let Some(c) = parser.feed(&raw[pos..pos + step]).expect("valid command") {
                parsed = Some(c);
            }
            pos += step;
        }
        let cmd = parsed.expect("command completed");
        prop_assert_eq!(
            cmd,
            Command::Set {
                key: Bytes::from(key.into_bytes()),
                flags,
                exptime,
                value: Bytes::from(value),
                noreply,
            }
        );
        prop_assert_eq!(parser.buffered(), 0);
    }

    /// Replies encode → parse back identically through the client parser
    /// under arbitrary chunking.
    #[test]
    fn reply_roundtrip_any_chunking(
        key in "[a-z]{1,8}",
        data in proptest::collection::vec(any::<u8>(), 0..256),
        flags in any::<u32>(),
        n in any::<u64>(),
        cuts in proptest::collection::vec(1usize..32, 0..12),
    ) {
        let replies = vec![
            Reply::Value {
                key: Bytes::from(key.into_bytes()),
                flags,
                data: Bytes::from(data),
            },
            Reply::End,
            Reply::Stored,
            Reply::Number(n),
            Reply::NotFound,
        ];
        let mut wire = Vec::new();
        for r in &replies {
            r.encode_into(&mut wire);
        }
        let mut parser = ReplyParser::new();
        let mut got = Vec::new();
        let mut pos = 0;
        let mut cut_iter = cuts.into_iter();
        while pos < wire.len() {
            let step = cut_iter.next().unwrap_or(wire.len()).min(wire.len() - pos);
            if let Some(r) = parser.feed(&wire[pos..pos + step]).expect("valid reply") {
                got.push(r);
                while let Some(r) = parser.feed(b"").expect("valid reply") {
                    got.push(r);
                }
            }
            pos += step;
        }
        prop_assert_eq!(got, replies);
        prop_assert_eq!(parser.buffered(), 0);
    }
}
