//! Property tests for the KV service, in the style of `prop_http.rs` /
//! `prop_stm.rs`: protocol round trips survive arbitrary chunking, and the
//! sharded store (both backends, with TTLs) is model-checked against a
//! plain `HashMap` reference under a deterministic `simos` schedule.

use std::collections::HashMap;
use std::sync::Arc;

use bytes::Bytes;
use eveth_core::time::SECS;
use eveth_kv::protocol::{Command, CommandParser, Reply, ReplyParser};
use eveth_kv::store::{Backend, CounterResult, Entry, ShardedStore, StoreConfig};
use eveth_simos::SimRuntime;
use proptest::prelude::*;

fn arb_key() -> impl Strategy<Value = String> {
    "[a-e]{1,3}"
}

/// One abstract store operation with explicit virtual time.
#[derive(Debug, Clone)]
enum Op {
    Set {
        key: String,
        value: Vec<u8>,
        ttl_secs: u64,
    },
    Get {
        key: String,
    },
    Delete {
        key: String,
    },
    Incr {
        key: String,
        delta: u64,
    },
    Purge,
    Advance {
        secs: u64,
    },
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (
            arb_key(),
            proptest::collection::vec(any::<u8>(), 0..32),
            0u64..4
        )
            .prop_map(|(key, value, ttl_secs)| Op::Set {
                key,
                value,
                ttl_secs
            }),
        arb_key().prop_map(|key| Op::Get { key }),
        arb_key().prop_map(|key| Op::Delete { key }),
        (arb_key(), 0u64..100).prop_map(|(key, delta)| Op::Incr { key, delta }),
        Just(Op::Purge),
        (1u64..3).prop_map(|secs| Op::Advance { secs }),
    ]
}

/// The reference model: a HashMap of (value, deadline) driven by the same
/// virtual clock the simulated store sees.
#[derive(Default)]
struct Model {
    map: HashMap<String, (Vec<u8>, Option<u64>)>,
}

impl Model {
    fn expire(&mut self, key: &str, now: u64) -> bool {
        if let Some((_, Some(d))) = self.map.get(key) {
            if *d <= now {
                self.map.remove(key);
                return true;
            }
        }
        false
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Arbitrary op sequences against both backends match the reference
    /// model exactly, including TTL behaviour, when run on the simulated
    /// runtime's deterministic schedule.
    #[test]
    fn store_matches_hashmap_reference(
        ops in proptest::collection::vec(arb_op(), 1..60),
        shards in 1usize..5,
        stm in any::<bool>(),
    ) {
        let backend = if stm { Backend::Stm } else { Backend::Mutex };
        let sim = SimRuntime::new_default();
        let store = ShardedStore::new(StoreConfig {
            shards,
            backend,
            ..Default::default()
        });
        let mut model = Model::default();

        for op in ops {
            let now = sim.now();
            match op {
                Op::Set { key, value, ttl_secs } => {
                    let st = Arc::clone(&store);
                    let k = Bytes::from(key.clone().into_bytes());
                    let entry = Entry {
                        value: Bytes::from(value.clone()),
                        flags: 7,
                        expires_at: ShardedStore::deadline(now, ttl_secs),
                    };
                    sim.block_on(st.set(k, entry)).unwrap();
                    model.map.insert(key, (value, ShardedStore::deadline(now, ttl_secs)));
                }
                Op::Get { key } => {
                    let st = Arc::clone(&store);
                    let k = Bytes::from(key.clone().into_bytes());
                    let got = sim.block_on(st.get(k, now)).unwrap();
                    model.expire(&key, now);
                    let want = model.map.get(&key);
                    match (got, want) {
                        (None, None) => {}
                        (Some(e), Some((v, _))) => {
                            prop_assert_eq!(e.value.to_vec(), v.clone(), "value mismatch for {}", key);
                            prop_assert_eq!(e.flags, 7);
                        }
                        (got, want) => {
                            panic!("presence mismatch for {key}: store={got:?} model={want:?}");
                        }
                    }
                }
                Op::Delete { key } => {
                    let st = Arc::clone(&store);
                    let k = Bytes::from(key.clone().into_bytes());
                    let removed = sim.block_on(st.delete(k, now)).unwrap();
                    let was_expired = model.expire(&key, now);
                    let model_removed = model.map.remove(&key).is_some() && !was_expired;
                    prop_assert_eq!(removed, model_removed, "delete mismatch for {}", key);
                }
                Op::Incr { key, delta } => {
                    let st = Arc::clone(&store);
                    let k = Bytes::from(key.clone().into_bytes());
                    let res = sim.block_on(st.counter_op(k, delta, false, now)).unwrap();
                    model.expire(&key, now);
                    match (res, model.map.get_mut(&key)) {
                        (CounterResult::NotFound, None) => {}
                        (CounterResult::Ok(v), Some((mv, _))) => {
                            let cur: u64 = std::str::from_utf8(mv).unwrap().parse().unwrap();
                            let next = cur.wrapping_add(delta);
                            prop_assert_eq!(v, next, "incr result for {}", key);
                            *mv = next.to_string().into_bytes();
                        }
                        (CounterResult::NotNumeric, Some((mv, _))) => {
                            let numeric = std::str::from_utf8(mv)
                                .ok()
                                .and_then(|s| s.parse::<u64>().ok())
                                .is_some();
                            prop_assert!(!numeric, "store said NotNumeric but model has a number");
                        }
                        (res, want) => {
                            panic!("incr mismatch for {key}: store={res:?} model={want:?}");
                        }
                    }
                }
                Op::Purge => {
                    for idx in 0..store.shard_count() {
                        let st = Arc::clone(&store);
                        sim.block_on(st.purge_shard(idx, now)).unwrap();
                    }
                    let keys: Vec<String> = model.map.keys().cloned().collect();
                    for k in keys {
                        model.expire(&k, now);
                    }
                }
                Op::Advance { secs } => {
                    sim.block_on(eveth_core::syscall::sys_sleep(secs * SECS)).unwrap();
                }
            }
        }
        // Final reconciliation: purge everything at one fixed `now` and
        // expire the model at the same instant; live counts must agree.
        let now = sim.now();
        for idx in 0..store.shard_count() {
            let st = Arc::clone(&store);
            sim.block_on(st.purge_shard(idx, now)).unwrap();
        }
        let keys: Vec<String> = model.map.keys().cloned().collect();
        for k in keys {
            model.expire(&k, now);
        }
        prop_assert_eq!(store.len_now(), model.map.len(), "final live-entry count");
    }

    /// Any command encodes → parses back identically, no matter how the
    /// bytes are sliced into recv-sized chunks.
    #[test]
    fn command_roundtrip_any_chunking(
        key in "[a-z0-9]{1,16}",
        value in proptest::collection::vec(any::<u8>(), 0..512),
        flags in any::<u32>(),
        exptime in 0u64..100_000,
        noreply in any::<bool>(),
        cuts in proptest::collection::vec(1usize..64, 0..16),
    ) {
        let mut raw = format!("set {key} {flags} {exptime} {}", value.len())
            .into_bytes();
        if noreply {
            raw.extend_from_slice(b" noreply");
        }
        raw.extend_from_slice(b"\r\n");
        raw.extend_from_slice(&value);
        raw.extend_from_slice(b"\r\n");

        let mut parser = CommandParser::new();
        let mut parsed = None;
        let mut pos = 0;
        let mut cut_iter = cuts.into_iter();
        while pos < raw.len() {
            let step = cut_iter.next().unwrap_or(raw.len()).min(raw.len() - pos);
            if let Some(c) = parser.feed(&raw[pos..pos + step]).expect("valid command") {
                parsed = Some(c);
            }
            pos += step;
        }
        let cmd = parsed.expect("command completed");
        prop_assert_eq!(
            cmd,
            Command::Set {
                key: Bytes::from(key.into_bytes()),
                flags,
                exptime,
                value: Bytes::from(value),
                noreply,
            }
        );
        prop_assert_eq!(parser.buffered(), 0);
    }

    /// Replies encode → parse back identically through the client parser
    /// under arbitrary chunking.
    #[test]
    fn reply_roundtrip_any_chunking(
        key in "[a-z]{1,8}",
        data in proptest::collection::vec(any::<u8>(), 0..256),
        flags in any::<u32>(),
        n in any::<u64>(),
        cuts in proptest::collection::vec(1usize..32, 0..12),
    ) {
        let replies = vec![
            Reply::Value {
                key: Bytes::from(key.into_bytes()),
                flags,
                data: Bytes::from(data),
            },
            Reply::End,
            Reply::Stored,
            Reply::Number(n),
            Reply::NotFound,
        ];
        let mut wire = Vec::new();
        for r in &replies {
            r.encode_into(&mut wire);
        }
        let mut parser = ReplyParser::new();
        let mut got = Vec::new();
        let mut pos = 0;
        let mut cut_iter = cuts.into_iter();
        while pos < wire.len() {
            let step = cut_iter.next().unwrap_or(wire.len()).min(wire.len() - pos);
            if let Some(r) = parser.feed(&wire[pos..pos + step]).expect("valid reply") {
                got.push(r);
                while let Some(r) = parser.feed(b"").expect("valid reply") {
                    got.push(r);
                }
            }
            pos += step;
        }
        prop_assert_eq!(got, replies);
        prop_assert_eq!(parser.buffered(), 0);
    }
}
