//! Protocol edge cases, each asserted under BOTH socket layers — the
//! simulated kernel-socket fabric and the application-level TCP stack over
//! the simulated packet network:
//!
//! * a `set` whose declared size sits exactly at the value cap (and one
//!   byte over it);
//! * `noreply` split across a receive-chunk boundary;
//! * one pipelined command straddling three separate reads;
//! * `incr` wraparound at `u64::MAX` and `decr` flooring at zero.
//!
//! The wire bytes are shipped in deliberately awkward chunks with virtual
//! sleeps between them, so the server's incremental parser actually sees
//! the split input.

use std::sync::{Arc, Weak};

use bytes::Bytes;
use eveth_core::engine::RuntimeCtx;
use eveth_core::net::{recv_to_end, send_all, Endpoint, HostId, NetStack};
use eveth_core::syscall::sys_sleep;
use eveth_core::time::MILLIS;
use eveth_core::{do_m, for_each_m};
use eveth_kv::server::{KvConfig, KvServer};
use eveth_kv::store::StoreConfig;
use eveth_simos::net::{LinkParams, SimNet};
use eveth_simos::sockets::{FabricParams, SocketFabric};
use eveth_simos::SimRuntime;
use eveth_tcp::host::TcpHost;
use eveth_tcp::segment::Segment;
use eveth_tcp::tcb::TcpConfig;
use eveth_tcp::transport::SegmentTransport;

/// Minimal local copy of the facade's SimNet glue (the `eveth` crate is
/// not visible from here): segments travel as SimNet packets.
struct NetTransport {
    net: Arc<SimNet>,
}

impl SegmentTransport for NetTransport {
    fn send(&self, src: HostId, dst: HostId, seg: Segment) {
        let wire = seg.wire_len();
        self.net.send(src, dst, wire, Box::new(seg));
    }
}

fn tcp_host(ctx: Arc<dyn RuntimeCtx>, net: &Arc<SimNet>, host: HostId) -> Arc<TcpHost> {
    let tcp = TcpHost::start(
        ctx,
        host,
        Arc::new(NetTransport {
            net: Arc::clone(net),
        }),
        TcpConfig::default(),
    );
    let weak: Weak<TcpHost> = Arc::downgrade(&tcp);
    net.register_host(
        host,
        Arc::new(move |src, pkt| {
            if let (Some(host), Ok(seg)) = (weak.upgrade(), pkt.downcast::<Segment>()) {
                host.inject(src, *seg);
            }
        }),
    );
    tcp
}

#[derive(Clone, Copy, Debug)]
enum Stack {
    KernelSockets,
    AppTcp,
}

const STACKS: [Stack; 2] = [Stack::KernelSockets, Stack::AppTcp];

/// Starts a KV server on a fresh simulation over the given stack, ships
/// `chunks` with 5 ms virtual gaps between them (so each arrives as its
/// own read), and returns everything the server replied until it closed.
fn run_session(stack: Stack, max_value_bytes: usize, chunks: &[&[u8]]) -> String {
    let sim = SimRuntime::new_default();
    let (server_stack, client_stack): (Arc<dyn NetStack>, Arc<dyn NetStack>) = match stack {
        Stack::KernelSockets => {
            let fabric = SocketFabric::new(sim.clock(), FabricParams::default());
            (fabric.stack(HostId(1)), fabric.stack(HostId(2)))
        }
        Stack::AppTcp => {
            let net = SimNet::new(sim.clock(), LinkParams::ethernet_100mbps(), 7);
            (
                tcp_host(sim.ctx(), &net, HostId(1)),
                tcp_host(sim.ctx(), &net, HostId(2)),
            )
        }
    };

    let server = KvServer::new(
        server_stack,
        KvConfig {
            port: 11211,
            store: StoreConfig {
                shards: 2,
                max_value_bytes,
                ..Default::default()
            },
            ..Default::default()
        },
    );
    sim.spawn(server.run());

    let chunks: Arc<Vec<Bytes>> =
        Arc::new(chunks.iter().map(|c| Bytes::from(c.to_vec())).collect());
    let reply = sim
        .block_on(do_m! {
            let conn <- client_stack.connect(Endpoint::new(HostId(1), 11211));
            let conn = conn.unwrap();
            let conn2 = Arc::clone(&conn);
            for_each_m(0..chunks.len(), move |i| {
                let conn = Arc::clone(&conn);
                let chunk = chunks[i].clone();
                do_m! {
                    let sent <- send_all(&conn, chunk);
                    let _ = sent.expect("send");
                    sys_sleep(5 * MILLIS)
                }
            });
            recv_to_end(&conn2, 64 * 1024)
        })
        .expect("session completed")
        .expect("recv");
    String::from_utf8(reply.to_vec()).expect("replies are ASCII")
}

#[test]
fn declared_size_exactly_at_value_cap_is_stored() {
    for stack in STACKS {
        let value = vec![b'v'; 64];
        let mut set = b"set k 0 0 64\r\n".to_vec();
        set.extend_from_slice(&value);
        set.extend_from_slice(b"\r\n");
        let reply = run_session(stack, 64, &[&set, b"get k\r\nquit\r\n"]);
        let expect = format!("STORED\r\nVALUE k 0 64\r\n{}\r\nEND\r\n", "v".repeat(64));
        assert_eq!(reply, expect, "{stack:?}");
    }
}

#[test]
fn declared_size_one_over_the_cap_is_rejected_before_buffering() {
    for stack in STACKS {
        // The command line alone declares 65 bytes: the server answers
        // CLIENT_ERROR and closes without ever reading the payload.
        let reply = run_session(stack, 64, &[b"set k 0 0 65\r\n"]);
        assert_eq!(reply, "CLIENT_ERROR value too large\r\n", "{stack:?}");
    }
}

#[test]
fn noreply_split_across_chunk_boundary_suppresses_the_reply() {
    for stack in STACKS {
        // The token "noreply" (and the payload) straddle the boundary:
        // the only reply on the wire must be the get's.
        let reply = run_session(
            stack,
            1024,
            &[b"set k 0 0 3 norep", b"ly\r\nabc\r\n", b"get k\r\nquit\r\n"],
        );
        assert_eq!(reply, "VALUE k 0 3\r\nabc\r\nEND\r\n", "{stack:?}");
    }
}

#[test]
fn pipelined_command_straddles_three_reads() {
    for stack in STACKS {
        // One `set` split across three reads, with the trailing `get`
        // itself split over the last two.
        let reply = run_session(
            stack,
            1024,
            &[b"set kk 0 0 5\r\nhe", b"llo\r\nget k", b"k\r\nquit\r\n"],
        );
        assert_eq!(
            reply, "STORED\r\nVALUE kk 0 5\r\nhello\r\nEND\r\n",
            "{stack:?}"
        );
    }
}

#[test]
fn incr_wraps_at_u64_max_and_decr_floors_at_zero() {
    for stack in STACKS {
        let wire = b"set n 0 0 20\r\n18446744073709551615\r\nincr n 1\r\nset m 0 0 1\r\n3\r\ndecr m 5\r\nquit\r\n";
        let reply = run_session(stack, 1024, &[wire]);
        // memcached semantics: incr wraps modulo 2^64, decr saturates at 0.
        assert_eq!(reply, "STORED\r\n0\r\nSTORED\r\n0\r\n", "{stack:?}");
    }
}

#[test]
fn wrapped_counter_remains_usable() {
    for stack in STACKS {
        // After wrapping to 0, further incrs count up from zero again.
        let wire = b"set n 0 0 20\r\n18446744073709551615\r\nincr n 6\r\nget n\r\nquit\r\n";
        let reply = run_session(stack, 1024, &[wire]);
        assert_eq!(
            reply, "STORED\r\n5\r\nVALUE n 0 1\r\n5\r\nEND\r\n",
            "{stack:?}"
        );
    }
}

#[test]
fn append_prepend_touch_over_the_wire() {
    for stack in STACKS {
        let reply = run_session(
            stack,
            1024,
            &[
                b"set k 5 0 3\r\nmid\r\n",
                b"append k 0 0 4\r\n-end\r\n",
                b"prepend k 9 0 4\r\npre-\r\n",
                b"append missing 0 0 1\r\nx\r\n",
                b"touch k 120\r\n",
                b"touch missing 5\r\n",
                b"get k\r\nquit\r\n",
            ],
        );
        // Concatenation preserves the entry's own flags (5) even though
        // the append/prepend lines carried 0 and 9.
        assert_eq!(
            reply,
            "STORED\r\nSTORED\r\nSTORED\r\nNOT_STORED\r\nTOUCHED\r\nNOT_FOUND\r\n\
             VALUE k 5 11\r\npre-mid-end\r\nEND\r\n",
            "{stack:?}"
        );
    }
}

#[test]
fn append_over_the_value_cap_is_rejected_without_storing() {
    for stack in STACKS {
        let reply = run_session(
            stack,
            8,
            &[
                b"set k 0 0 6\r\nsixsix\r\n",
                b"append k 0 0 4\r\nmore\r\n", // 6 + 4 > 8: rejected
                b"append k 0 0 2\r\nok\r\n",   // 6 + 2 == 8: at the cap
                b"get k\r\nquit\r\n",
            ],
        );
        assert_eq!(
            reply,
            "STORED\r\nCLIENT_ERROR value too large\r\nSTORED\r\n\
             VALUE k 0 8\r\nsixsixok\r\nEND\r\n",
            "{stack:?}"
        );
    }
}
