//! Incremental parsing of the memcached-style text protocol.
//!
//! Mirrors the idiom of `eveth_http::parser`: the parser accumulates bytes
//! fed from the socket, yields one [`Command`] as soon as it is complete,
//! and keeps any excess bytes for the next command on the connection —
//! which is exactly what makes pipelining free. Payload-carrying commands
//! are materialized zero-copy: the buffered bytes for a completed command
//! are frozen into one [`Bytes`] allocation and the key/value are O(1)
//! slices into it.
//!
//! The grammar is the classic memcached text protocol subset:
//!
//! ```text
//! get <key>+\r\n
//! gets <key>+\r\n
//! set <key> <flags> <exptime> <bytes> [noreply]\r\n<data>\r\n
//! add <key> <flags> <exptime> <bytes> [noreply]\r\n<data>\r\n
//! replace <key> <flags> <exptime> <bytes> [noreply]\r\n<data>\r\n
//! cas <key> <flags> <exptime> <bytes> <cas unique> [noreply]\r\n<data>\r\n
//! append <key> <flags> <exptime> <bytes> [noreply]\r\n<data>\r\n
//! prepend <key> <flags> <exptime> <bytes> [noreply]\r\n<data>\r\n
//! touch <key> <exptime> [noreply]\r\n
//! delete <key> [noreply]\r\n
//! incr <key> <delta> [noreply]\r\n
//! decr <key> <delta> [noreply]\r\n
//! stats\r\n
//! version\r\n
//! quit\r\n
//! ```
//!
//! `gets` is `get` plus the per-entry version stamp (`cas unique`) in each
//! `VALUE` line; `cas` stores only if the stamp is unchanged.

use std::fmt;
use std::mem;

use bytes::{BufferPool, Bytes, BytesMut};

/// Maximum key length, per the memcached protocol.
pub const MAX_KEY_LEN: usize = 250;

/// One parsed client command.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Command {
    /// `get` with one or more keys.
    Get {
        /// Keys to look up, in request order.
        keys: Vec<Bytes>,
    },
    /// `gets`: like `get`, but each `VALUE` line carries the entry's
    /// version stamp (`cas unique`) for a later `cas`.
    Gets {
        /// Keys to look up, in request order.
        keys: Vec<Bytes>,
    },
    /// `set`: store a value unconditionally.
    Set {
        /// The key.
        key: Bytes,
        /// Opaque client flags, echoed back on `get`.
        flags: u32,
        /// Expiry in seconds relative to receipt; `0` = never.
        exptime: u64,
        /// The value payload.
        value: Bytes,
        /// Suppress the reply.
        noreply: bool,
    },
    /// `add`: store only if the key is absent (or expired).
    Add {
        /// The key.
        key: Bytes,
        /// Opaque client flags, echoed back on `get`.
        flags: u32,
        /// Expiry in seconds relative to receipt; `0` = never.
        exptime: u64,
        /// The value payload.
        value: Bytes,
        /// Suppress the reply.
        noreply: bool,
    },
    /// `replace`: store only if a live entry already exists.
    Replace {
        /// The key.
        key: Bytes,
        /// Opaque client flags, echoed back on `get`.
        flags: u32,
        /// Expiry in seconds relative to receipt; `0` = never.
        exptime: u64,
        /// The value payload.
        value: Bytes,
        /// Suppress the reply.
        noreply: bool,
    },
    /// `cas`: store only if the entry's version stamp is unchanged since
    /// the client's `gets`.
    Cas {
        /// The key.
        key: Bytes,
        /// Opaque client flags, echoed back on `get`.
        flags: u32,
        /// Expiry in seconds relative to receipt; `0` = never.
        exptime: u64,
        /// The value payload.
        value: Bytes,
        /// The version stamp the client observed via `gets`.
        cas_unique: u64,
        /// Suppress the reply.
        noreply: bool,
    },
    /// `append`: concatenate onto the tail of an existing live value
    /// (`NOT_STORED` on a miss). Per memcached, the `flags`/`exptime`
    /// fields are required on the wire but ignored — the stored entry
    /// keeps its own.
    Append {
        /// The key.
        key: Bytes,
        /// Wire-required, ignored (the entry keeps its flags).
        flags: u32,
        /// Wire-required, ignored (the entry keeps its deadline).
        exptime: u64,
        /// Bytes concatenated after the existing value.
        value: Bytes,
        /// Suppress the reply.
        noreply: bool,
    },
    /// `prepend`: concatenate onto the head of an existing live value
    /// (`NOT_STORED` on a miss); `flags`/`exptime` ignored like `append`.
    Prepend {
        /// The key.
        key: Bytes,
        /// Wire-required, ignored (the entry keeps its flags).
        flags: u32,
        /// Wire-required, ignored (the entry keeps its deadline).
        exptime: u64,
        /// Bytes concatenated before the existing value.
        value: Bytes,
        /// Suppress the reply.
        noreply: bool,
    },
    /// `touch`: update a live entry's expiry without sending or returning
    /// its value (`TOUCHED` / `NOT_FOUND`).
    Touch {
        /// The key.
        key: Bytes,
        /// New expiry in seconds relative to receipt; `0` = never.
        exptime: u64,
        /// Suppress the reply.
        noreply: bool,
    },
    /// `delete` a key.
    Delete {
        /// The key.
        key: Bytes,
        /// Suppress the reply.
        noreply: bool,
    },
    /// `incr`: add to a decimal-numeric value.
    Incr {
        /// The key.
        key: Bytes,
        /// Amount to add.
        delta: u64,
        /// Suppress the reply.
        noreply: bool,
    },
    /// `decr`: subtract from a decimal-numeric value (floored at 0).
    Decr {
        /// The key.
        key: Bytes,
        /// Amount to subtract.
        delta: u64,
        /// Suppress the reply.
        noreply: bool,
    },
    /// `stats`: dump server counters.
    Stats,
    /// `version`.
    Version,
    /// `quit`: close the connection.
    Quit,
}

impl Command {
    /// True when the client asked for no reply.
    pub fn noreply(&self) -> bool {
        match self {
            Command::Set { noreply, .. }
            | Command::Add { noreply, .. }
            | Command::Replace { noreply, .. }
            | Command::Cas { noreply, .. }
            | Command::Append { noreply, .. }
            | Command::Prepend { noreply, .. }
            | Command::Touch { noreply, .. }
            | Command::Delete { noreply, .. }
            | Command::Incr { noreply, .. }
            | Command::Decr { noreply, .. } => *noreply,
            _ => false,
        }
    }

    /// The command's routing key: its first (for `get`/`gets`, only
    /// meaningful when single-key) key. `None` for keyless commands
    /// (`stats`, `version`, `quit`) — a router must pick a home for those
    /// by policy, not by hash.
    pub fn key(&self) -> Option<&Bytes> {
        match self {
            Command::Get { keys } | Command::Gets { keys } => keys.first(),
            Command::Set { key, .. }
            | Command::Add { key, .. }
            | Command::Replace { key, .. }
            | Command::Cas { key, .. }
            | Command::Append { key, .. }
            | Command::Prepend { key, .. }
            | Command::Touch { key, .. }
            | Command::Delete { key, .. }
            | Command::Incr { key, .. }
            | Command::Decr { key, .. } => Some(key),
            Command::Stats | Command::Version | Command::Quit => None,
        }
    }

    /// True for commands that mutate the store — the set a replicating
    /// router must fan out to every replica of the key.
    pub fn is_write(&self) -> bool {
        matches!(
            self,
            Command::Set { .. }
                | Command::Add { .. }
                | Command::Replace { .. }
                | Command::Cas { .. }
                | Command::Append { .. }
                | Command::Prepend { .. }
                | Command::Touch { .. }
                | Command::Delete { .. }
                | Command::Incr { .. }
                | Command::Decr { .. }
        )
    }

    /// Appends the canonical wire form to `out` — the inverse of
    /// [`CommandParser`]. Round-tripping may normalize whitespace but
    /// never changes meaning; a router re-encodes parsed commands with
    /// this when forwarding to a backend.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        use std::io::Write as _;
        // Infallible: Vec's io::Write never errors.
        let storage = |out: &mut Vec<u8>,
                       verb: &str,
                       key: &Bytes,
                       flags: u32,
                       exptime: u64,
                       cas: Option<u64>,
                       value: &Bytes,
                       noreply: bool| {
            let _ = write!(out, "{verb} ");
            out.extend_from_slice(key);
            let _ = write!(out, " {flags} {exptime} {}", value.len());
            if let Some(cas) = cas {
                let _ = write!(out, " {cas}");
            }
            if noreply {
                out.extend_from_slice(b" noreply");
            }
            out.extend_from_slice(wire::CRLF);
            out.extend_from_slice(value);
            out.extend_from_slice(wire::CRLF);
        };
        let keyed =
            |out: &mut Vec<u8>, verb: &str, key: &Bytes, num: Option<u64>, noreply: bool| {
                let _ = write!(out, "{verb} ");
                out.extend_from_slice(key);
                if let Some(num) = num {
                    let _ = write!(out, " {num}");
                }
                if noreply {
                    out.extend_from_slice(b" noreply");
                }
                out.extend_from_slice(wire::CRLF);
            };
        match self {
            Command::Get { keys } | Command::Gets { keys } => {
                out.extend_from_slice(if matches!(self, Command::Get { .. }) {
                    b"get".as_slice()
                } else {
                    b"gets".as_slice()
                });
                for key in keys {
                    out.push(b' ');
                    out.extend_from_slice(key);
                }
                out.extend_from_slice(wire::CRLF);
            }
            Command::Set {
                key,
                flags,
                exptime,
                value,
                noreply,
            } => storage(out, "set", key, *flags, *exptime, None, value, *noreply),
            Command::Add {
                key,
                flags,
                exptime,
                value,
                noreply,
            } => storage(out, "add", key, *flags, *exptime, None, value, *noreply),
            Command::Replace {
                key,
                flags,
                exptime,
                value,
                noreply,
            } => storage(out, "replace", key, *flags, *exptime, None, value, *noreply),
            Command::Cas {
                key,
                flags,
                exptime,
                value,
                cas_unique,
                noreply,
            } => storage(
                out,
                "cas",
                key,
                *flags,
                *exptime,
                Some(*cas_unique),
                value,
                *noreply,
            ),
            Command::Append {
                key,
                flags,
                exptime,
                value,
                noreply,
            } => storage(out, "append", key, *flags, *exptime, None, value, *noreply),
            Command::Prepend {
                key,
                flags,
                exptime,
                value,
                noreply,
            } => storage(out, "prepend", key, *flags, *exptime, None, value, *noreply),
            Command::Touch {
                key,
                exptime,
                noreply,
            } => keyed(out, "touch", key, Some(*exptime), *noreply),
            Command::Delete { key, noreply } => keyed(out, "delete", key, None, *noreply),
            Command::Incr {
                key,
                delta,
                noreply,
            } => keyed(out, "incr", key, Some(*delta), *noreply),
            Command::Decr {
                key,
                delta,
                noreply,
            } => keyed(out, "decr", key, Some(*delta), *noreply),
            Command::Stats => out.extend_from_slice(b"stats\r\n"),
            Command::Version => out.extend_from_slice(b"version\r\n"),
            Command::Quit => out.extend_from_slice(b"quit\r\n"),
        }
    }
}

/// Why parsing failed; the server answers `CLIENT_ERROR` and closes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtoError {
    /// A line exceeded the configured limit.
    TooLarge,
    /// Structurally invalid input, with a short reason.
    Malformed(&'static str),
}

impl ProtoError {
    /// The human-readable reason.
    pub fn reason(&self) -> &'static str {
        match self {
            ProtoError::TooLarge => "line too long",
            ProtoError::Malformed(why) => why,
        }
    }
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "protocol error: {}", self.reason())
    }
}

impl std::error::Error for ProtoError {}

/// Incremental command parser; one per connection.
///
/// # Examples
///
/// ```
/// use eveth_kv::protocol::{Command, CommandParser};
///
/// let mut p = CommandParser::new();
/// assert!(p.feed(b"set k 7 0 3\r\nab").unwrap().is_none());
/// let cmd = p.feed(b"c\r\nget k\r\n").unwrap().unwrap();
/// match cmd {
///     Command::Set { key, flags, value, .. } => {
///         assert_eq!(&key[..], b"k");
///         assert_eq!(flags, 7);
///         assert_eq!(&value[..], b"abc");
///     }
///     other => panic!("unexpected {other:?}"),
/// }
/// // The pipelined `get` is already buffered:
/// let next = p.feed(b"").unwrap().unwrap();
/// assert_eq!(next, Command::Get { keys: vec![bytes::Bytes::from_static(b"k")] });
/// ```
#[derive(Debug)]
pub struct CommandParser {
    /// Refcounted window over the bytes currently being parsed. A chunk
    /// handed to [`CommandParser::feed_bytes`] when nothing is buffered
    /// lands here *aliased*, zero-copy; completed commands are split off
    /// the front O(1) and their keys/values are windows into the same
    /// region.
    frozen: Bytes,
    /// Copy-staged bytes, used only when a command straddles input
    /// boundaries (or for slice-based [`CommandParser::feed`]). Pooled;
    /// once it holds a complete command the whole staging buffer is
    /// frozen into `frozen` and consumed from there.
    staging: BytesMut,
    limit: usize,
    value_limit: usize,
}

impl CommandParser {
    /// A parser with an 8 KB command-line limit and a 1 MiB value limit.
    pub fn new() -> Self {
        Self::with_limit(8 * 1024)
    }

    /// A parser with an explicit command-line limit and the default 1 MiB
    /// value limit.
    pub fn with_limit(limit: usize) -> Self {
        Self::with_limits(limit, 1024 * 1024)
    }

    /// A parser with explicit command-line and value-payload limits. The
    /// value limit is enforced on the *declared* byte count, before any
    /// payload is buffered — a client announcing a huge `set` is rejected
    /// immediately instead of ballooning server memory.
    pub fn with_limits(limit: usize, value_limit: usize) -> Self {
        CommandParser {
            frozen: Bytes::new(),
            staging: BytesMut::new(),
            limit,
            value_limit,
        }
    }

    /// Bytes buffered but not yet consumed by a complete command.
    pub fn buffered(&self) -> usize {
        self.staging.len() + self.frozen.len()
    }

    /// Feeds bytes; returns a command once one is complete. Call again
    /// with an empty slice to drain pipelined commands already buffered.
    ///
    /// This entry point copies `data` into the staging buffer; the
    /// zero-copy path is [`CommandParser::feed_bytes`].
    ///
    /// # Errors
    ///
    /// [`ProtoError`] on oversized or malformed input; the connection
    /// should be closed afterwards.
    pub fn feed(&mut self, data: &[u8]) -> Result<Option<Command>, ProtoError> {
        if !data.is_empty() {
            self.stage(data);
        }
        self.try_next()
    }

    /// Feeds an owned chunk, aliasing it zero-copy when nothing is
    /// buffered (the common case for a socket's recv loop: each chunk is
    /// drained of complete commands before the next recv). Only a partial
    /// command left straddling the boundary forces a copy-merge into the
    /// staging buffer.
    pub fn feed_bytes(&mut self, chunk: Bytes) -> Result<Option<Command>, ProtoError> {
        if !chunk.is_empty() {
            if self.staging.is_empty() && self.frozen.is_empty() {
                self.frozen = chunk;
            } else {
                self.stage(&chunk);
            }
        }
        self.try_next()
    }

    /// Copies `data` into the staging buffer, first folding in any frozen
    /// remainder so the buffered bytes stay contiguous.
    fn stage(&mut self, data: &[u8]) {
        if self.staging.is_empty() {
            let mut staging = BufferPool::global().acquire();
            if !self.frozen.is_empty() {
                staging.extend_from_slice(&self.frozen);
                self.frozen = Bytes::new();
            }
            self.staging = staging;
        }
        self.staging.extend_from_slice(data);
    }

    /// Extracts the next complete command from the buffered bytes
    /// without feeding anything — the drain step for pipelined bursts.
    pub fn try_next(&mut self) -> Result<Option<Command>, ProtoError> {
        // At most one of staging/frozen is non-empty. Staged bytes are
        // promoted to a frozen window once they hold a complete command,
        // so extraction below is always O(1) splitting.
        if !self.staging.is_empty() {
            match scan(&self.staging, self.limit, self.value_limit)? {
                Scan::Incomplete => return Ok(None),
                Scan::Complete { .. } => {
                    self.frozen = mem::take(&mut self.staging).freeze();
                }
            }
        }
        if self.frozen.is_empty() {
            return Ok(None);
        }
        match scan(&self.frozen, self.limit, self.value_limit)? {
            Scan::Incomplete => Ok(None),
            Scan::Complete {
                head,
                line_end,
                total,
            } => {
                let command = self.frozen.split_to(total);
                if self.frozen.is_empty() {
                    // Drop the (now spent) window so the backing region —
                    // a recv chunk or recycled slab — is released.
                    self.frozen = Bytes::new();
                }
                head.into_command(command, line_end)
            }
        }
    }
}

/// Outcome of scanning a buffer for one complete command.
enum Scan {
    /// More bytes are needed.
    Incomplete,
    /// `buf[..total]` is one complete command (`line_end` = offset of the
    /// command line's CR).
    Complete {
        head: ParsedLine,
        line_end: usize,
        total: usize,
    },
}

/// Scans `buf` for one complete command without consuming anything,
/// enforcing the line limit and the *declared* value limit — a client
/// announcing a huge `set` is rejected before any payload is buffered.
fn scan(buf: &[u8], limit: usize, value_limit: usize) -> Result<Scan, ProtoError> {
    let Some(line_end) = find_crlf(buf) else {
        if buf.len() > limit {
            return Err(ProtoError::TooLarge);
        }
        return Ok(Scan::Incomplete);
    };
    if line_end > limit {
        return Err(ProtoError::TooLarge);
    }
    // `set` carries a data block: wait until line + payload + CRLF are
    // all buffered before consuming anything.
    let head = ParsedLine::parse(&buf[..line_end])?;
    let total = match head.payload_len {
        Some(n) => {
            if n > value_limit {
                return Err(ProtoError::Malformed("value too large"));
            }
            let need = line_end + 2 + n + 2;
            if buf.len() < need {
                return Ok(Scan::Incomplete);
            }
            if &buf[line_end + 2 + n..need] != b"\r\n" {
                return Err(ProtoError::Malformed("data block not CRLF-terminated"));
            }
            need
        }
        None => line_end + 2,
    };
    Ok(Scan::Complete {
        head,
        line_end,
        total,
    })
}

impl Default for CommandParser {
    fn default() -> Self {
        Self::new()
    }
}

/// Field offsets of a command line, resolved into `Bytes` slices only once
/// the whole command is buffered.
struct ParsedLine {
    verb: Verb,
    /// (start, end) offsets of each argument within the line.
    args: Vec<(usize, usize)>,
    noreply: bool,
    /// `Some(n)` when a data block of `n` bytes follows the line.
    payload_len: Option<usize>,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Verb {
    Get,
    Gets,
    Set,
    Add,
    Replace,
    Cas,
    Append,
    Prepend,
    Touch,
    Delete,
    Incr,
    Decr,
    Stats,
    Version,
    Quit,
}

impl Verb {
    /// Verbs carrying a `<flags> <exptime> <bytes>` header + data block.
    fn is_storage(self) -> bool {
        matches!(
            self,
            Verb::Set | Verb::Add | Verb::Replace | Verb::Cas | Verb::Append | Verb::Prepend
        )
    }
}

impl ParsedLine {
    fn parse(line: &[u8]) -> Result<ParsedLine, ProtoError> {
        let mut fields = split_fields(line);
        let (vs, ve) = *fields
            .first()
            .ok_or(ProtoError::Malformed("empty command"))?;
        let verb = match &line[vs..ve] {
            b"get" => Verb::Get,
            b"gets" => Verb::Gets,
            b"set" => Verb::Set,
            b"add" => Verb::Add,
            b"replace" => Verb::Replace,
            b"cas" => Verb::Cas,
            b"append" => Verb::Append,
            b"prepend" => Verb::Prepend,
            b"touch" => Verb::Touch,
            b"delete" => Verb::Delete,
            b"incr" => Verb::Incr,
            b"decr" => Verb::Decr,
            b"stats" => Verb::Stats,
            b"version" => Verb::Version,
            b"quit" => Verb::Quit,
            _ => return Err(ProtoError::Malformed("unknown command")),
        };
        fields.remove(0);
        let mut noreply = false;
        if verb.is_storage() || matches!(verb, Verb::Touch | Verb::Delete | Verb::Incr | Verb::Decr)
        {
            if let Some(&(s, e)) = fields.last() {
                if &line[s..e] == b"noreply" {
                    noreply = true;
                    fields.pop();
                }
            }
        }
        let expect = |n: usize, what: &'static str| {
            if fields.len() == n {
                Ok(())
            } else {
                Err(ProtoError::Malformed(what))
            }
        };
        let payload_len = match verb {
            Verb::Get | Verb::Gets => {
                if fields.is_empty() {
                    return Err(ProtoError::Malformed("get needs at least one key"));
                }
                None
            }
            Verb::Set | Verb::Add | Verb::Replace | Verb::Cas | Verb::Append | Verb::Prepend => {
                if verb == Verb::Cas {
                    expect(5, "cas needs <key> <flags> <exptime> <bytes> <cas unique>")?;
                    parse_u64(&line[fields[4].0..fields[4].1])
                        .ok_or(ProtoError::Malformed("bad cas unique"))?;
                } else {
                    expect(4, "set needs <key> <flags> <exptime> <bytes>")?;
                }
                let flags = parse_u64(&line[fields[1].0..fields[1].1])
                    .ok_or(ProtoError::Malformed("bad flags"))?;
                if flags > u32::MAX as u64 {
                    return Err(ProtoError::Malformed("flags out of range"));
                }
                parse_u64(&line[fields[2].0..fields[2].1])
                    .ok_or(ProtoError::Malformed("bad exptime"))?;
                let n = parse_u64(&line[fields[3].0..fields[3].1])
                    .ok_or(ProtoError::Malformed("bad byte count"))?
                    as usize;
                Some(n)
            }
            Verb::Touch => {
                expect(2, "touch needs <key> <exptime>")?;
                parse_u64(&line[fields[1].0..fields[1].1])
                    .ok_or(ProtoError::Malformed("bad exptime"))?;
                None
            }
            Verb::Delete => {
                expect(1, "delete needs <key>")?;
                None
            }
            Verb::Incr | Verb::Decr => {
                expect(2, "incr/decr need <key> <delta>")?;
                parse_u64(&line[fields[1].0..fields[1].1])
                    .ok_or(ProtoError::Malformed("bad delta"))?;
                None
            }
            Verb::Stats | Verb::Version | Verb::Quit => {
                expect(0, "unexpected arguments")?;
                None
            }
        };
        for &(s, e) in key_fields(verb, &fields) {
            validate_key(&line[s..e])?;
        }
        Ok(ParsedLine {
            verb,
            args: fields,
            noreply,
            payload_len,
        })
    }

    /// Builds the final command from the frozen buffer (`line_end` is the
    /// offset of the line's CR within it).
    fn into_command(self, frozen: Bytes, line_end: usize) -> Result<Option<Command>, ProtoError> {
        let arg = |i: usize| -> Bytes {
            let (s, e) = self.args[i];
            frozen.slice(s..e)
        };
        let num = |i: usize| -> u64 {
            let (s, e) = self.args[i];
            parse_u64(&frozen[s..e]).expect("validated by ParsedLine::parse")
        };
        let cmd = match self.verb {
            Verb::Get => Command::Get {
                keys: (0..self.args.len()).map(arg).collect(),
            },
            Verb::Gets => Command::Gets {
                keys: (0..self.args.len()).map(arg).collect(),
            },
            Verb::Set | Verb::Add | Verb::Replace | Verb::Cas | Verb::Append | Verb::Prepend => {
                let n = self.payload_len.expect("storage verbs have a payload");
                let key = arg(0);
                let flags = num(1) as u32;
                let exptime = num(2);
                let value = frozen.slice(line_end + 2..line_end + 2 + n);
                let noreply = self.noreply;
                match self.verb {
                    Verb::Set => Command::Set {
                        key,
                        flags,
                        exptime,
                        value,
                        noreply,
                    },
                    Verb::Add => Command::Add {
                        key,
                        flags,
                        exptime,
                        value,
                        noreply,
                    },
                    Verb::Replace => Command::Replace {
                        key,
                        flags,
                        exptime,
                        value,
                        noreply,
                    },
                    Verb::Append => Command::Append {
                        key,
                        flags,
                        exptime,
                        value,
                        noreply,
                    },
                    Verb::Prepend => Command::Prepend {
                        key,
                        flags,
                        exptime,
                        value,
                        noreply,
                    },
                    _ => Command::Cas {
                        key,
                        flags,
                        exptime,
                        value,
                        cas_unique: num(4),
                        noreply,
                    },
                }
            }
            Verb::Touch => Command::Touch {
                key: arg(0),
                exptime: num(1),
                noreply: self.noreply,
            },
            Verb::Delete => Command::Delete {
                key: arg(0),
                noreply: self.noreply,
            },
            Verb::Incr => Command::Incr {
                key: arg(0),
                delta: num(1),
                noreply: self.noreply,
            },
            Verb::Decr => Command::Decr {
                key: arg(0),
                delta: num(1),
                noreply: self.noreply,
            },
            Verb::Stats => Command::Stats,
            Verb::Version => Command::Version,
            Verb::Quit => Command::Quit,
        };
        Ok(Some(cmd))
    }
}

fn key_fields(verb: Verb, fields: &[(usize, usize)]) -> &[(usize, usize)] {
    match verb {
        Verb::Get | Verb::Gets => fields,
        Verb::Set
        | Verb::Add
        | Verb::Replace
        | Verb::Cas
        | Verb::Append
        | Verb::Prepend
        | Verb::Touch
        | Verb::Delete
        | Verb::Incr
        | Verb::Decr => &fields[..1],
        _ => &[],
    }
}

fn validate_key(key: &[u8]) -> Result<(), ProtoError> {
    if key.is_empty() {
        return Err(ProtoError::Malformed("empty key"));
    }
    if key.len() > MAX_KEY_LEN {
        return Err(ProtoError::Malformed("key too long"));
    }
    if key.iter().any(|&b| b <= b' ' || b == 0x7F) {
        return Err(ProtoError::Malformed(
            "key contains whitespace or control bytes",
        ));
    }
    Ok(())
}

fn find_crlf(buf: &[u8]) -> Option<usize> {
    buf.windows(2).position(|w| w == b"\r\n")
}

fn split_fields(line: &[u8]) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < line.len() {
        if line[i] == b' ' {
            i += 1;
            continue;
        }
        let start = i;
        while i < line.len() && line[i] != b' ' {
            i += 1;
        }
        out.push((start, i));
    }
    out
}

fn parse_u64(field: &[u8]) -> Option<u64> {
    if field.is_empty() || field.len() > 20 {
        return None;
    }
    let mut v: u64 = 0;
    for &b in field {
        if !b.is_ascii_digit() {
            return None;
        }
        v = v.checked_mul(10)?.checked_add((b - b'0') as u64)?;
    }
    Some(v)
}

// ---------------------------------------------------------------------------
// Server replies.
// ---------------------------------------------------------------------------

/// The protocol's fixed reply lines. Centralizing them keeps every encode
/// path byte-identical and lets single-line replies ship as
/// `Bytes::from_static` — a true alias of these constants, zero
/// allocation and zero copy.
pub mod wire {
    /// `END\r\n`.
    pub const END: &[u8] = b"END\r\n";
    /// `STORED\r\n`.
    pub const STORED: &[u8] = b"STORED\r\n";
    /// `NOT_STORED\r\n`.
    pub const NOT_STORED: &[u8] = b"NOT_STORED\r\n";
    /// `EXISTS\r\n`.
    pub const EXISTS: &[u8] = b"EXISTS\r\n";
    /// `TOUCHED\r\n`.
    pub const TOUCHED: &[u8] = b"TOUCHED\r\n";
    /// `DELETED\r\n`.
    pub const DELETED: &[u8] = b"DELETED\r\n";
    /// `NOT_FOUND\r\n`.
    pub const NOT_FOUND: &[u8] = b"NOT_FOUND\r\n";
    /// `ERROR\r\n`.
    pub const ERROR: &[u8] = b"ERROR\r\n";
    /// The line/block terminator.
    pub const CRLF: &[u8] = b"\r\n";
    /// The `VALUE ` line prefix.
    pub const VALUE_PREFIX: &[u8] = b"VALUE ";
}

/// A server reply, encodable to wire bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Reply {
    /// One `VALUE` line + data block (part of a `get` response).
    Value {
        /// The key.
        key: Bytes,
        /// Client flags stored with the value.
        flags: u32,
        /// The value payload.
        data: Bytes,
    },
    /// One `VALUE` line with a trailing `cas unique` (part of a `gets`
    /// response).
    ValueCas {
        /// The key.
        key: Bytes,
        /// Client flags stored with the value.
        flags: u32,
        /// The value payload.
        data: Bytes,
        /// The entry's version stamp.
        cas: u64,
    },
    /// `END` terminating a `get` or `stats` response.
    End,
    /// `STORED`.
    Stored,
    /// `NOT_STORED` (failed `add`/`replace` precondition).
    NotStored,
    /// `EXISTS` (a `cas` found the entry modified).
    Exists,
    /// `TOUCHED` (a `touch` found and re-deadlined a live entry).
    Touched,
    /// `DELETED`.
    Deleted,
    /// `NOT_FOUND`.
    NotFound,
    /// Numeric result of `incr`/`decr`.
    Number(u64),
    /// One `STAT <name> <value>` line.
    Stat(String, String),
    /// `VERSION <v>`.
    Version(&'static str),
    /// `ERROR` (unknown command).
    Error,
    /// `CLIENT_ERROR <msg>`.
    ClientError(&'static str),
    /// `SERVER_ERROR <msg>` — the server (or a router in front of it)
    /// could not execute an otherwise valid command, e.g. every replica
    /// of the key was unreachable. Unlike `CLIENT_ERROR` it does not
    /// imply the connection must close.
    ServerError(&'static str),
}

impl Reply {
    /// Appends the wire encoding to `out`.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            Reply::Value { key, flags, data } => {
                out.extend_from_slice(wire::VALUE_PREFIX);
                out.extend_from_slice(key);
                out.extend_from_slice(format!(" {} {}\r\n", flags, data.len()).as_bytes());
                out.extend_from_slice(data);
                out.extend_from_slice(wire::CRLF);
            }
            Reply::ValueCas {
                key,
                flags,
                data,
                cas,
            } => {
                out.extend_from_slice(wire::VALUE_PREFIX);
                out.extend_from_slice(key);
                out.extend_from_slice(format!(" {} {} {}\r\n", flags, data.len(), cas).as_bytes());
                out.extend_from_slice(data);
                out.extend_from_slice(wire::CRLF);
            }
            Reply::End => out.extend_from_slice(wire::END),
            Reply::Stored => out.extend_from_slice(wire::STORED),
            Reply::NotStored => out.extend_from_slice(wire::NOT_STORED),
            Reply::Exists => out.extend_from_slice(wire::EXISTS),
            Reply::Touched => out.extend_from_slice(wire::TOUCHED),
            Reply::Deleted => out.extend_from_slice(wire::DELETED),
            Reply::NotFound => out.extend_from_slice(wire::NOT_FOUND),
            Reply::Number(n) => out.extend_from_slice(format!("{n}\r\n").as_bytes()),
            Reply::Stat(k, v) => out.extend_from_slice(format!("STAT {k} {v}\r\n").as_bytes()),
            Reply::Version(v) => out.extend_from_slice(format!("VERSION {v}\r\n").as_bytes()),
            Reply::Error => out.extend_from_slice(wire::ERROR),
            Reply::ClientError(msg) => {
                out.extend_from_slice(format!("CLIENT_ERROR {msg}\r\n").as_bytes())
            }
            Reply::ServerError(msg) => {
                out.extend_from_slice(format!("SERVER_ERROR {msg}\r\n").as_bytes())
            }
        }
    }

    /// Appends the wire encoding to a gather queue. Byte-identical to
    /// [`Reply::encode_into`], but `VALUE` payloads are queued as O(1)
    /// refcounted windows of the stored entry instead of being copied —
    /// the value bytes flow from the store to the socket untouched. Line
    /// text (prefixes, headers, status lines) lands in the queue's pooled
    /// scratch region, formatted in place without intermediate `String`s.
    pub fn encode_gather(&self, q: &mut ReplyQueue) {
        match self {
            Reply::Value { key, flags, data } => {
                q.put_scratch(wire::VALUE_PREFIX);
                q.put_scratch(key);
                q.put_fmt(format_args!(" {} {}\r\n", flags, data.len()));
                q.push_bytes(data.clone());
                q.put_scratch(wire::CRLF);
            }
            Reply::ValueCas {
                key,
                flags,
                data,
                cas,
            } => {
                q.put_scratch(wire::VALUE_PREFIX);
                q.put_scratch(key);
                q.put_fmt(format_args!(" {} {} {}\r\n", flags, data.len(), cas));
                q.push_bytes(data.clone());
                q.put_scratch(wire::CRLF);
            }
            Reply::End => q.put_scratch(wire::END),
            Reply::Stored => q.put_scratch(wire::STORED),
            Reply::NotStored => q.put_scratch(wire::NOT_STORED),
            Reply::Exists => q.put_scratch(wire::EXISTS),
            Reply::Touched => q.put_scratch(wire::TOUCHED),
            Reply::Deleted => q.put_scratch(wire::DELETED),
            Reply::NotFound => q.put_scratch(wire::NOT_FOUND),
            Reply::Number(n) => q.put_fmt(format_args!("{n}\r\n")),
            Reply::Stat(k, v) => q.put_fmt(format_args!("STAT {k} {v}\r\n")),
            Reply::Version(v) => q.put_fmt(format_args!("VERSION {v}\r\n")),
            Reply::Error => q.put_scratch(wire::ERROR),
            Reply::ClientError(msg) => q.put_fmt(format_args!("CLIENT_ERROR {msg}\r\n")),
            Reply::ServerError(msg) => q.put_fmt(format_args!("SERVER_ERROR {msg}\r\n")),
        }
    }

    /// True when this reply *completes* a command's response: everything
    /// except the streamed prefixes — `VALUE`/`STAT` lines, which are
    /// closed by a later `END`. A `VERSION` line closes: it is the whole
    /// one-line response to `version`, never a prefix of anything. The
    /// shared rule the client and the router both count pipelined
    /// responses by — a non-closing classification here would leave a
    /// forwarding router waiting forever for a terminator that never
    /// comes.
    pub fn closes_command(&self) -> bool {
        !matches!(
            self,
            Reply::Value { .. } | Reply::ValueCas { .. } | Reply::Stat(..)
        )
    }
}

/// One segment of a pending vectored reply.
#[derive(Debug)]
enum Seg {
    /// A `(start, end)` range of the queue's scratch region.
    Scratch { start: usize, end: usize },
    /// An owned refcounted window (a stored value, aliased zero-copy).
    Owned(Bytes),
}

/// A per-session reply accumulator feeding the gather-write path.
///
/// Replies for a whole pipelined batch are encoded into it back to back:
/// line text goes into one pooled scratch buffer (adjacent text fragments
/// coalesce into a single segment), while `VALUE` payloads are queued as
/// refcounted [`Bytes`] windows of the stored entries — never copied.
/// [`ReplyQueue::finish`] freezes the scratch once and hands back the
/// segment list for one vectored send ([`Conn::sendv`]).
///
/// [`Conn::sendv`]: eveth_core::net::Conn::sendv
///
/// # Examples
///
/// ```
/// use bytes::Bytes;
/// use eveth_kv::protocol::{Reply, ReplyQueue};
///
/// let mut q = ReplyQueue::new();
/// Reply::Value {
///     key: Bytes::from_static(b"k"),
///     flags: 0,
///     data: Bytes::from_static(b"hello"),
/// }
/// .encode_gather(&mut q);
/// Reply::End.encode_gather(&mut q);
/// let segs = q.finish();
/// let wire: Vec<u8> = segs.iter().flat_map(|s| s.iter().copied()).collect();
/// assert_eq!(&wire[..], b"VALUE k 0 5\r\nhello\r\nEND\r\n");
/// // The payload segment aliases the stored value (segment 1 here).
/// assert_eq!(&segs[1][..], b"hello");
/// ```
#[derive(Debug, Default)]
pub struct ReplyQueue {
    /// Pooled staging region for reply line text; acquired lazily on the
    /// first write, frozen (and recycled through the pool) per batch.
    scratch: BytesMut,
    segs: Vec<Seg>,
    total: usize,
}

impl ReplyQueue {
    /// An empty queue; allocates nothing until a reply is encoded.
    pub fn new() -> Self {
        ReplyQueue::default()
    }

    /// Total queued bytes across all segments.
    pub fn len(&self) -> usize {
        self.total
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Appends raw text to the scratch region, coalescing with an
    /// immediately preceding scratch segment.
    pub fn put_scratch(&mut self, src: &[u8]) {
        self.ensure_scratch();
        let start = self.scratch.len();
        self.scratch.extend_from_slice(src);
        self.commit_scratch(start);
    }

    /// Formats directly into the scratch region (no intermediate
    /// `String`), coalescing like [`ReplyQueue::put_scratch`].
    pub fn put_fmt(&mut self, args: fmt::Arguments<'_>) {
        use fmt::Write as _;
        self.ensure_scratch();
        let start = self.scratch.len();
        // Infallible: BytesMut's fmt::Write never errors.
        let _ = self.scratch.write_fmt(args);
        self.commit_scratch(start);
    }

    /// Queues an owned window as its own segment — the zero-copy path for
    /// value payloads.
    pub fn push_bytes(&mut self, data: Bytes) {
        if data.is_empty() {
            return;
        }
        self.total += data.len();
        self.segs.push(Seg::Owned(data));
    }

    fn ensure_scratch(&mut self) {
        if self.scratch.capacity() == 0 {
            self.scratch = BufferPool::global().acquire();
        }
    }

    fn commit_scratch(&mut self, start: usize) {
        let end = self.scratch.len();
        if end == start {
            return;
        }
        self.total += end - start;
        if let Some(Seg::Scratch { end: prev_end, .. }) = self.segs.last_mut() {
            if *prev_end == start {
                *prev_end = end;
                return;
            }
        }
        self.segs.push(Seg::Scratch { start, end });
    }

    /// Drains the queue into one segment list for a vectored send: the
    /// scratch region is frozen once and text segments become O(1)
    /// windows of it. The queue is left empty and reusable.
    pub fn finish(&mut self) -> Vec<Bytes> {
        let segs = mem::take(&mut self.segs);
        self.total = 0;
        if segs.is_empty() {
            self.scratch.clear();
            return Vec::new();
        }
        let frozen = mem::take(&mut self.scratch).freeze();
        segs.into_iter()
            .map(|seg| match seg {
                Seg::Scratch { start, end } => frozen.slice(start..end),
                Seg::Owned(b) => b,
            })
            .collect()
    }
}

/// Client-side incremental reply parser (used by the load generator).
///
/// Feed response bytes; it yields [`Reply`]s one at a time, reassembling
/// `VALUE` data blocks across chunk boundaries.
#[derive(Debug, Default)]
pub struct ReplyParser {
    /// Refcounted window over the bytes being parsed; chunks fed via
    /// [`ReplyParser::feed_bytes`] land here aliased, and `VALUE`
    /// keys/payloads come out as O(1) windows of the same region.
    frozen: Bytes,
    /// Copy-staged bytes for replies straddling input boundaries (and for
    /// slice-based [`ReplyParser::feed`]); pooled, promoted to `frozen`
    /// once a complete reply is buffered.
    staging: BytesMut,
}

impl ReplyParser {
    /// A fresh parser.
    pub fn new() -> Self {
        ReplyParser::default()
    }

    /// Bytes buffered but not yet consumed.
    pub fn buffered(&self) -> usize {
        self.staging.len() + self.frozen.len()
    }

    /// Feeds bytes; returns the next reply when complete. Call with an
    /// empty slice to drain further buffered replies. This entry point
    /// copies; [`ReplyParser::feed_bytes`] is the zero-copy path.
    ///
    /// # Errors
    ///
    /// [`ProtoError::Malformed`] on an unrecognized reply line.
    pub fn feed(&mut self, data: &[u8]) -> Result<Option<Reply>, ProtoError> {
        if !data.is_empty() {
            self.stage(data);
        }
        self.try_next()
    }

    /// Feeds an owned chunk, aliasing it zero-copy when nothing is
    /// buffered — the mirror of [`CommandParser::feed_bytes`] for the
    /// client side.
    ///
    /// # Errors
    ///
    /// [`ProtoError::Malformed`] on an unrecognized reply line.
    pub fn feed_bytes(&mut self, chunk: Bytes) -> Result<Option<Reply>, ProtoError> {
        if !chunk.is_empty() {
            if self.staging.is_empty() && self.frozen.is_empty() {
                self.frozen = chunk;
            } else {
                self.stage(&chunk);
            }
        }
        self.try_next()
    }

    fn stage(&mut self, data: &[u8]) {
        if self.staging.is_empty() {
            let mut staging = BufferPool::global().acquire();
            if !self.frozen.is_empty() {
                staging.extend_from_slice(&self.frozen);
                self.frozen = Bytes::new();
            }
            self.staging = staging;
        }
        self.staging.extend_from_slice(data);
    }

    /// Extracts the next complete reply from the buffered bytes without
    /// feeding anything — the drain step for pipelined response bursts.
    pub fn try_next(&mut self) -> Result<Option<Reply>, ProtoError> {
        if !self.staging.is_empty() {
            match scan_reply(&self.staging)? {
                ReplyScan::Incomplete => return Ok(None),
                ReplyScan::Complete { .. } => {
                    self.frozen = mem::take(&mut self.staging).freeze();
                }
            }
        }
        if self.frozen.is_empty() {
            return Ok(None);
        }
        match scan_reply(&self.frozen)? {
            ReplyScan::Incomplete => Ok(None),
            ReplyScan::Complete { head, total } => {
                let raw = self.frozen.split_to(total);
                if self.frozen.is_empty() {
                    self.frozen = Bytes::new();
                }
                Ok(Some(match head {
                    ReplyHead::Plain(reply) => reply,
                    ReplyHead::Value {
                        key: (ks, ke),
                        flags,
                        len,
                        cas,
                        data_start,
                    } => {
                        let key = raw.slice(ks..ke);
                        let data = raw.slice(data_start..data_start + len);
                        match cas {
                            Some(cas) => Reply::ValueCas {
                                key,
                                flags,
                                data,
                                cas,
                            },
                            None => Reply::Value { key, flags, data },
                        }
                    }
                }))
            }
        }
    }
}

/// A scanned reply head; `Value` field windows are resolved against the
/// frozen buffer only after the whole reply is known complete.
enum ReplyHead {
    Plain(Reply),
    Value {
        key: (usize, usize),
        flags: u32,
        len: usize,
        cas: Option<u64>,
        data_start: usize,
    },
}

enum ReplyScan {
    Incomplete,
    Complete { head: ReplyHead, total: usize },
}

fn scan_reply(buf: &[u8]) -> Result<ReplyScan, ProtoError> {
    let Some(line_end) = find_crlf(buf) else {
        return Ok(ReplyScan::Incomplete);
    };
    let line = &buf[..line_end];
    if let Some(rest) = line.strip_prefix(wire::VALUE_PREFIX) {
        let text =
            std::str::from_utf8(rest).map_err(|_| ProtoError::Malformed("non-UTF-8 VALUE line"))?;
        let mut parts = text.split(' ');
        let key = parts.next().ok_or(ProtoError::Malformed("VALUE key"))?;
        let flags: u32 = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or(ProtoError::Malformed("VALUE flags"))?;
        let len: usize = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or(ProtoError::Malformed("VALUE length"))?;
        // A fourth field is the `cas unique` of a `gets` response.
        let cas: Option<u64> = match parts.next() {
            Some(s) => Some(
                s.parse()
                    .map_err(|_| ProtoError::Malformed("VALUE cas unique"))?,
            ),
            None => None,
        };
        let need = line_end + 2 + len + 2;
        if buf.len() < need {
            return Ok(ReplyScan::Incomplete);
        }
        if &buf[line_end + 2 + len..need] != b"\r\n" {
            return Err(ProtoError::Malformed("VALUE block not CRLF-terminated"));
        }
        let key_start = wire::VALUE_PREFIX.len();
        return Ok(ReplyScan::Complete {
            head: ReplyHead::Value {
                key: (key_start, key_start + key.len()),
                flags,
                len,
                cas,
                data_start: line_end + 2,
            },
            total: need,
        });
    }
    let reply = match line {
        b"END" => Reply::End,
        b"STORED" => Reply::Stored,
        b"NOT_STORED" => Reply::NotStored,
        b"EXISTS" => Reply::Exists,
        b"TOUCHED" => Reply::Touched,
        b"DELETED" => Reply::Deleted,
        b"NOT_FOUND" => Reply::NotFound,
        b"ERROR" => Reply::Error,
        _ => {
            if let Some(rest) = line.strip_prefix(b"STAT ".as_slice()) {
                let text = std::str::from_utf8(rest)
                    .map_err(|_| ProtoError::Malformed("non-UTF-8 STAT line"))?;
                match text.split_once(' ') {
                    Some((k, v)) => Reply::Stat(k.to_string(), v.to_string()),
                    None => return Err(ProtoError::Malformed("STAT without value")),
                }
            } else if line.starts_with(b"VERSION ") {
                Reply::Version("")
            } else if line.starts_with(b"CLIENT_ERROR ") {
                Reply::ClientError("")
            } else if line.starts_with(b"SERVER_ERROR ") {
                Reply::ServerError("")
            } else if let Some(n) = parse_u64(line) {
                Reply::Number(n)
            } else {
                return Err(ProtoError::Malformed("unrecognized reply"));
            }
        }
    };
    Ok(ReplyScan::Complete {
        head: ReplyHead::Plain(reply),
        total: line_end + 2,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_one(raw: &[u8]) -> Command {
        CommandParser::new().feed(raw).unwrap().unwrap()
    }

    #[test]
    fn parses_multi_key_get() {
        let cmd = parse_one(b"get alpha beta gamma\r\n");
        match cmd {
            Command::Get { keys } => {
                let keys: Vec<_> = keys.iter().map(|k| k.to_vec()).collect();
                assert_eq!(
                    keys,
                    vec![b"alpha".to_vec(), b"beta".to_vec(), b"gamma".to_vec()]
                );
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn set_value_is_slice_of_one_buffer() {
        let cmd = parse_one(b"set k 1 60 5\r\nhello\r\n");
        match cmd {
            Command::Set {
                key,
                flags,
                exptime,
                value,
                noreply,
            } => {
                assert_eq!(&key[..], b"k");
                assert_eq!(flags, 1);
                assert_eq!(exptime, 60);
                assert_eq!(&value[..], b"hello");
                assert!(!noreply);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn binary_safe_values() {
        let mut raw = b"set bin 0 0 4\r\n".to_vec();
        raw.extend_from_slice(&[0x00, 0xFF, b'\r', b'\n']);
        raw.extend_from_slice(b"\r\n");
        let cmd = CommandParser::new().feed(&raw).unwrap().unwrap();
        match cmd {
            Command::Set { value, .. } => assert_eq!(&value[..], &[0x00, 0xFF, b'\r', b'\n']),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn byte_at_a_time_feeding() {
        let raw = b"set k 0 0 3\r\nxyz\r\ndelete k noreply\r\n";
        let mut p = CommandParser::new();
        let mut got = Vec::new();
        for b in raw.iter() {
            if let Some(c) = p.feed(std::slice::from_ref(b)).unwrap() {
                got.push(c);
            }
        }
        while let Some(c) = p.feed(b"").unwrap() {
            got.push(c);
        }
        assert_eq!(got.len(), 2);
        assert!(matches!(got[0], Command::Set { .. }));
        assert!(matches!(got[1], Command::Delete { noreply: true, .. }));
        assert_eq!(p.buffered(), 0);
    }

    #[test]
    fn pipelined_commands_keep_remainder() {
        let mut p = CommandParser::new();
        let first = p
            .feed(b"incr n 5\r\ndecr n 2\r\nstats\r\n")
            .unwrap()
            .unwrap();
        assert!(matches!(first, Command::Incr { delta: 5, .. }));
        assert!(matches!(
            p.feed(b"").unwrap().unwrap(),
            Command::Decr { delta: 2, .. }
        ));
        assert_eq!(p.feed(b"").unwrap().unwrap(), Command::Stats);
        assert!(p.feed(b"").unwrap().is_none());
    }

    #[test]
    fn parses_add_replace_cas_gets() {
        match parse_one(b"add k 3 60 2\r\nab\r\n") {
            Command::Add {
                key, flags, value, ..
            } => {
                assert_eq!(&key[..], b"k");
                assert_eq!(flags, 3);
                assert_eq!(&value[..], b"ab");
            }
            other => panic!("unexpected {other:?}"),
        }
        match parse_one(b"replace k 0 0 1 noreply\r\nx\r\n") {
            Command::Replace { noreply, .. } => assert!(noreply),
            other => panic!("unexpected {other:?}"),
        }
        match parse_one(b"cas k 1 0 3 99\r\nxyz\r\n") {
            Command::Cas {
                key,
                cas_unique,
                value,
                noreply,
                ..
            } => {
                assert_eq!(&key[..], b"k");
                assert_eq!(cas_unique, 99);
                assert_eq!(&value[..], b"xyz");
                assert!(!noreply);
            }
            other => panic!("unexpected {other:?}"),
        }
        match parse_one(b"cas k 1 0 0 7 noreply\r\n\r\n") {
            Command::Cas {
                cas_unique,
                noreply,
                ..
            } => {
                assert_eq!(cas_unique, 7);
                assert!(noreply);
            }
            other => panic!("unexpected {other:?}"),
        }
        match parse_one(b"gets a b\r\n") {
            Command::Gets { keys } => assert_eq!(keys.len(), 2),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_append_prepend_touch() {
        match parse_one(b"append k 9 60 3\r\nxyz\r\n") {
            Command::Append {
                key,
                flags,
                exptime,
                value,
                noreply,
            } => {
                assert_eq!(&key[..], b"k");
                assert_eq!((flags, exptime), (9, 60));
                assert_eq!(&value[..], b"xyz");
                assert!(!noreply);
            }
            other => panic!("unexpected {other:?}"),
        }
        match parse_one(b"prepend k 0 0 2 noreply\r\nab\r\n") {
            Command::Prepend { value, noreply, .. } => {
                assert_eq!(&value[..], b"ab");
                assert!(noreply);
            }
            other => panic!("unexpected {other:?}"),
        }
        match parse_one(b"touch k 120\r\n") {
            Command::Touch {
                key,
                exptime,
                noreply,
            } => {
                assert_eq!(&key[..], b"k");
                assert_eq!(exptime, 120);
                assert!(!noreply);
            }
            other => panic!("unexpected {other:?}"),
        }
        match parse_one(b"touch k 0 noreply\r\n") {
            Command::Touch { noreply, .. } => assert!(noreply),
            other => panic!("unexpected {other:?}"),
        }
        for bad in [
            &b"append k 0 0\r\n"[..],
            &b"prepend k 0 0 x\r\na\r\n"[..],
            &b"touch k\r\n"[..],
            &b"touch k notanumber\r\n"[..],
            &b"touch k 0 extra stuff\r\n"[..],
        ] {
            assert!(
                CommandParser::new().feed(bad).is_err(),
                "should reject {:?}",
                String::from_utf8_lossy(bad)
            );
        }
    }

    #[test]
    fn touched_reply_roundtrips() {
        let mut wire = Vec::new();
        Reply::Touched.encode_into(&mut wire);
        assert_eq!(&wire[..], b"TOUCHED\r\n");
        let got = ReplyParser::new().feed(&wire).unwrap().unwrap();
        assert_eq!(got, Reply::Touched);
    }

    #[test]
    fn value_cas_reply_roundtrips_with_stamp() {
        let replies = vec![
            Reply::ValueCas {
                key: Bytes::from_static(b"k"),
                flags: 2,
                data: Bytes::from_static(b"payload"),
                cas: 12345,
            },
            Reply::End,
            Reply::NotStored,
            Reply::Exists,
        ];
        let mut wire = Vec::new();
        for r in &replies {
            r.encode_into(&mut wire);
        }
        assert!(wire.starts_with(b"VALUE k 2 7 12345\r\n"));
        let mut p = ReplyParser::new();
        let mut got = Vec::new();
        for chunk in wire.chunks(4) {
            if let Some(r) = p.feed(chunk).unwrap() {
                got.push(r);
                while let Some(r) = p.feed(b"").unwrap() {
                    got.push(r);
                }
            }
        }
        assert_eq!(got, replies);
    }

    #[test]
    fn encode_into_roundtrips_through_the_parser() {
        let raws: &[&[u8]] = &[
            b"get alpha\r\n",
            b"get alpha beta\r\n",
            b"gets k\r\n",
            b"set k 7 60 5\r\nhello\r\n",
            b"set k 0 0 2 noreply\r\nhi\r\n",
            b"add k 1 2 1\r\nx\r\n",
            b"replace k 0 0 1\r\ny\r\n",
            b"cas k 1 0 3 99\r\nxyz\r\n",
            b"cas k 1 0 1 7 noreply\r\nz\r\n",
            b"append k 0 0 2\r\nab\r\n",
            b"prepend k 0 0 2 noreply\r\ncd\r\n",
            b"touch k 120\r\n",
            b"touch k 0 noreply\r\n",
            b"delete k\r\n",
            b"delete k noreply\r\n",
            b"incr n 5\r\n",
            b"decr n 2 noreply\r\n",
            b"stats\r\n",
            b"version\r\n",
            b"quit\r\n",
        ];
        for raw in raws {
            let cmd = parse_one(raw);
            let mut wire = Vec::new();
            cmd.encode_into(&mut wire);
            // Canonical form is byte-identical to canonical input...
            assert_eq!(
                wire.as_slice(),
                *raw,
                "encode({:?})",
                String::from_utf8_lossy(raw)
            );
            // ...and reparses to the same command.
            assert_eq!(parse_one(&wire), cmd);
        }
    }

    #[test]
    fn key_and_is_write_classify_commands() {
        assert_eq!(parse_one(b"get a b\r\n").key().unwrap().as_ref(), b"a");
        assert_eq!(parse_one(b"incr n 1\r\n").key().unwrap().as_ref(), b"n");
        assert_eq!(parse_one(b"stats\r\n").key(), None);
        assert!(!parse_one(b"get a\r\n").is_write());
        assert!(!parse_one(b"gets a\r\n").is_write());
        assert!(parse_one(b"set k 0 0 1\r\nx\r\n").is_write());
        assert!(parse_one(b"delete k\r\n").is_write());
        assert!(parse_one(b"touch k 0\r\n").is_write());
        assert!(!parse_one(b"quit\r\n").is_write());
    }

    #[test]
    fn server_error_roundtrips_and_closes() {
        let mut wire = Vec::new();
        Reply::ServerError("no live replica").encode_into(&mut wire);
        assert_eq!(&wire[..], b"SERVER_ERROR no live replica\r\n");
        let got = ReplyParser::new().feed(&wire).unwrap().unwrap();
        // The parser keeps the shape, not the text (same as CLIENT_ERROR).
        assert_eq!(got, Reply::ServerError(""));
        assert!(got.closes_command());
        // VERSION is a complete single-line response, not a streamed
        // prefix — it must close, or a router framing backend replies
        // would wait forever for a terminator.
        assert!(Reply::Version("").closes_command());
        assert!(!Reply::Value {
            key: Bytes::from_static(b"k"),
            flags: 0,
            data: Bytes::new(),
        }
        .closes_command());
        assert!(Reply::End.closes_command());
    }

    #[test]
    fn rejects_malformed() {
        for bad in [
            &b"frobnicate\r\n"[..],
            &b"get\r\n"[..],
            &b"gets\r\n"[..],
            &b"add k 0 0\r\n"[..],
            &b"replace k 0 0\r\n"[..],
            &b"cas k 0 0 1\r\nx\r\n"[..],
            &b"cas k 0 0 1 notanumber\r\nx\r\n"[..],
            &b"set k 0 0\r\n"[..],
            &b"set k 0 0 abc\r\n"[..],
            &b"set k x 0 1\r\na\r\n"[..],
            &b"set k 0 x 1\r\na\r\n"[..],
            &b"set k 4294967296 0 1\r\na\r\n"[..],
            &b"incr k notanumber\r\n"[..],
            &b"set \x01 0 0 1\r\nx\r\n"[..],
            &b"stats extra\r\n"[..],
        ] {
            assert!(
                CommandParser::new().feed(bad).is_err(),
                "should reject {:?}",
                String::from_utf8_lossy(bad)
            );
        }
    }

    #[test]
    fn oversized_line_rejected() {
        let mut p = CommandParser::with_limit(32);
        let mut big = b"get ".to_vec();
        big.extend(std::iter::repeat_n(b'a', 64));
        assert_eq!(p.feed(&big).unwrap_err(), ProtoError::TooLarge);
    }

    #[test]
    fn oversized_declared_payload_rejected_before_buffering() {
        let mut p = CommandParser::with_limits(8 * 1024, 64);
        // The line alone declares 65 bytes: rejected with no payload fed.
        assert_eq!(
            p.feed(b"set k 0 0 65\r\n").unwrap_err(),
            ProtoError::Malformed("value too large")
        );
        // At the cap exactly, the set goes through.
        let mut p = CommandParser::with_limits(8 * 1024, 64);
        let mut raw = b"set k 0 0 64\r\n".to_vec();
        raw.extend(std::iter::repeat_n(b'v', 64));
        raw.extend_from_slice(b"\r\n");
        assert!(matches!(
            p.feed(&raw).unwrap().unwrap(),
            Command::Set { .. }
        ));
    }

    #[test]
    fn key_length_boundary() {
        let ok = format!("delete {}\r\n", "k".repeat(MAX_KEY_LEN));
        assert!(CommandParser::new().feed(ok.as_bytes()).unwrap().is_some());
        let bad = format!("delete {}\r\n", "k".repeat(MAX_KEY_LEN + 1));
        assert!(CommandParser::new().feed(bad.as_bytes()).is_err());
    }

    #[test]
    fn feed_bytes_aliases_chunk_zero_copy() {
        let chunk = Bytes::from(b"set k 0 0 5\r\nhello\r\nget k\r\n".to_vec());
        let chunk_ptr = chunk.as_ref().as_ptr();
        let mut p = CommandParser::new();
        match p.feed_bytes(chunk).unwrap().unwrap() {
            Command::Set { value, .. } => {
                // The value is a window of the original chunk region.
                assert!(std::ptr::eq(value.as_ref().as_ptr(), unsafe {
                    chunk_ptr.add(13)
                }));
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(matches!(p.feed(b"").unwrap().unwrap(), Command::Get { .. }));
        assert_eq!(p.buffered(), 0);
    }

    #[test]
    fn feed_bytes_merges_straddling_command() {
        let mut p = CommandParser::new();
        assert!(p
            .feed_bytes(Bytes::from(b"set k 0 0 6\r\nabc".to_vec()))
            .unwrap()
            .is_none());
        assert_eq!(p.buffered(), 16);
        match p
            .feed_bytes(Bytes::from(b"def\r\nstats\r\n".to_vec()))
            .unwrap()
            .unwrap()
        {
            Command::Set { value, .. } => assert_eq!(&value[..], b"abcdef"),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(p.feed(b"").unwrap().unwrap(), Command::Stats);
        assert_eq!(p.buffered(), 0);
    }

    #[test]
    fn reply_queue_gathers_byte_identical_to_encode_into() {
        let replies = vec![
            Reply::Value {
                key: Bytes::from_static(b"alpha"),
                flags: 7,
                data: Bytes::from_static(b"payload-bytes"),
            },
            Reply::Stored,
            Reply::ValueCas {
                key: Bytes::from_static(b"beta"),
                flags: 0,
                data: Bytes::from_static(b"x"),
                cas: 99,
            },
            Reply::End,
            Reply::Number(17),
            Reply::ClientError("bad delta"),
        ];
        let mut flat = Vec::new();
        let mut q = ReplyQueue::new();
        for r in &replies {
            r.encode_into(&mut flat);
            r.encode_gather(&mut q);
        }
        assert_eq!(q.len(), flat.len());
        let segs = q.finish();
        let gathered: Vec<u8> = segs.iter().flat_map(|s| s.iter().copied()).collect();
        assert_eq!(gathered, flat);
        assert!(q.is_empty());
        // Adjacent text coalesces: STORED rides in the same segment as the
        // preceding CRLF rather than its own.
        assert!(segs.len() < replies.len() * 2);
    }

    #[test]
    fn reply_queue_value_segment_aliases_store_entry() {
        let value = Bytes::from(b"the stored value".to_vec());
        let mut q = ReplyQueue::new();
        Reply::Value {
            key: Bytes::from_static(b"k"),
            flags: 0,
            data: value.clone(),
        }
        .encode_gather(&mut q);
        let segs = q.finish();
        let payload = segs
            .iter()
            .find(|s| &s[..] == b"the stored value")
            .expect("payload segment");
        assert!(
            std::ptr::eq(payload.as_ref().as_ptr(), value.as_ref().as_ptr()),
            "payload segment must alias the stored value, not copy it"
        );
    }

    #[test]
    fn reply_parser_feed_bytes_yields_windowed_values() {
        let mut wire = Vec::new();
        Reply::Value {
            key: Bytes::from_static(b"k"),
            flags: 3,
            data: Bytes::from_static(b"abcde"),
        }
        .encode_into(&mut wire);
        Reply::End.encode_into(&mut wire);
        let chunk = Bytes::from(wire);
        let chunk_ptr = chunk.as_ref().as_ptr();
        let mut p = ReplyParser::new();
        match p.feed_bytes(chunk).unwrap().unwrap() {
            Reply::Value { key, flags, data } => {
                assert_eq!(&key[..], b"k");
                assert_eq!(flags, 3);
                assert_eq!(&data[..], b"abcde");
                // Both key and payload are windows of the chunk region.
                assert!(std::ptr::eq(key.as_ref().as_ptr(), unsafe {
                    chunk_ptr.add(6)
                }));
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(p.feed(b"").unwrap().unwrap(), Reply::End);
        assert_eq!(p.buffered(), 0);
    }

    #[test]
    fn reply_roundtrip_through_client_parser() {
        let replies = vec![
            Reply::Value {
                key: Bytes::from_static(b"k"),
                flags: 9,
                data: Bytes::from_static(b"\x00binary\r\ndata"),
            },
            Reply::End,
            Reply::Stored,
            Reply::Deleted,
            Reply::NotFound,
            Reply::Number(1234),
            Reply::Stat("hits".into(), "42".into()),
            Reply::Error,
        ];
        let mut wire = Vec::new();
        for r in &replies {
            r.encode_into(&mut wire);
        }
        let mut p = ReplyParser::new();
        let mut got = Vec::new();
        // Feed in awkward 3-byte chunks to exercise reassembly.
        for chunk in wire.chunks(3) {
            if let Some(r) = p.feed(chunk).unwrap() {
                got.push(r);
                while let Some(r) = p.feed(b"").unwrap() {
                    got.push(r);
                }
            }
        }
        assert_eq!(got, replies);
        assert_eq!(p.buffered(), 0);
    }
}
