//! Incremental parsing of the memcached-style text protocol.
//!
//! Mirrors the idiom of `eveth_http::parser`: the parser accumulates bytes
//! fed from the socket, yields one [`Command`] as soon as it is complete,
//! and keeps any excess bytes for the next command on the connection —
//! which is exactly what makes pipelining free. Payload-carrying commands
//! are materialized zero-copy: the buffered bytes for a completed command
//! are frozen into one [`Bytes`] allocation and the key/value are O(1)
//! slices into it.
//!
//! The grammar is the classic memcached text protocol subset:
//!
//! ```text
//! get <key>+\r\n
//! gets <key>+\r\n
//! set <key> <flags> <exptime> <bytes> [noreply]\r\n<data>\r\n
//! add <key> <flags> <exptime> <bytes> [noreply]\r\n<data>\r\n
//! replace <key> <flags> <exptime> <bytes> [noreply]\r\n<data>\r\n
//! cas <key> <flags> <exptime> <bytes> <cas unique> [noreply]\r\n<data>\r\n
//! append <key> <flags> <exptime> <bytes> [noreply]\r\n<data>\r\n
//! prepend <key> <flags> <exptime> <bytes> [noreply]\r\n<data>\r\n
//! touch <key> <exptime> [noreply]\r\n
//! delete <key> [noreply]\r\n
//! incr <key> <delta> [noreply]\r\n
//! decr <key> <delta> [noreply]\r\n
//! stats\r\n
//! version\r\n
//! quit\r\n
//! ```
//!
//! `gets` is `get` plus the per-entry version stamp (`cas unique`) in each
//! `VALUE` line; `cas` stores only if the stamp is unchanged.

use std::fmt;

use bytes::Bytes;

/// Maximum key length, per the memcached protocol.
pub const MAX_KEY_LEN: usize = 250;

/// One parsed client command.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Command {
    /// `get` with one or more keys.
    Get {
        /// Keys to look up, in request order.
        keys: Vec<Bytes>,
    },
    /// `gets`: like `get`, but each `VALUE` line carries the entry's
    /// version stamp (`cas unique`) for a later `cas`.
    Gets {
        /// Keys to look up, in request order.
        keys: Vec<Bytes>,
    },
    /// `set`: store a value unconditionally.
    Set {
        /// The key.
        key: Bytes,
        /// Opaque client flags, echoed back on `get`.
        flags: u32,
        /// Expiry in seconds relative to receipt; `0` = never.
        exptime: u64,
        /// The value payload.
        value: Bytes,
        /// Suppress the reply.
        noreply: bool,
    },
    /// `add`: store only if the key is absent (or expired).
    Add {
        /// The key.
        key: Bytes,
        /// Opaque client flags, echoed back on `get`.
        flags: u32,
        /// Expiry in seconds relative to receipt; `0` = never.
        exptime: u64,
        /// The value payload.
        value: Bytes,
        /// Suppress the reply.
        noreply: bool,
    },
    /// `replace`: store only if a live entry already exists.
    Replace {
        /// The key.
        key: Bytes,
        /// Opaque client flags, echoed back on `get`.
        flags: u32,
        /// Expiry in seconds relative to receipt; `0` = never.
        exptime: u64,
        /// The value payload.
        value: Bytes,
        /// Suppress the reply.
        noreply: bool,
    },
    /// `cas`: store only if the entry's version stamp is unchanged since
    /// the client's `gets`.
    Cas {
        /// The key.
        key: Bytes,
        /// Opaque client flags, echoed back on `get`.
        flags: u32,
        /// Expiry in seconds relative to receipt; `0` = never.
        exptime: u64,
        /// The value payload.
        value: Bytes,
        /// The version stamp the client observed via `gets`.
        cas_unique: u64,
        /// Suppress the reply.
        noreply: bool,
    },
    /// `append`: concatenate onto the tail of an existing live value
    /// (`NOT_STORED` on a miss). Per memcached, the `flags`/`exptime`
    /// fields are required on the wire but ignored — the stored entry
    /// keeps its own.
    Append {
        /// The key.
        key: Bytes,
        /// Wire-required, ignored (the entry keeps its flags).
        flags: u32,
        /// Wire-required, ignored (the entry keeps its deadline).
        exptime: u64,
        /// Bytes concatenated after the existing value.
        value: Bytes,
        /// Suppress the reply.
        noreply: bool,
    },
    /// `prepend`: concatenate onto the head of an existing live value
    /// (`NOT_STORED` on a miss); `flags`/`exptime` ignored like `append`.
    Prepend {
        /// The key.
        key: Bytes,
        /// Wire-required, ignored (the entry keeps its flags).
        flags: u32,
        /// Wire-required, ignored (the entry keeps its deadline).
        exptime: u64,
        /// Bytes concatenated before the existing value.
        value: Bytes,
        /// Suppress the reply.
        noreply: bool,
    },
    /// `touch`: update a live entry's expiry without sending or returning
    /// its value (`TOUCHED` / `NOT_FOUND`).
    Touch {
        /// The key.
        key: Bytes,
        /// New expiry in seconds relative to receipt; `0` = never.
        exptime: u64,
        /// Suppress the reply.
        noreply: bool,
    },
    /// `delete` a key.
    Delete {
        /// The key.
        key: Bytes,
        /// Suppress the reply.
        noreply: bool,
    },
    /// `incr`: add to a decimal-numeric value.
    Incr {
        /// The key.
        key: Bytes,
        /// Amount to add.
        delta: u64,
        /// Suppress the reply.
        noreply: bool,
    },
    /// `decr`: subtract from a decimal-numeric value (floored at 0).
    Decr {
        /// The key.
        key: Bytes,
        /// Amount to subtract.
        delta: u64,
        /// Suppress the reply.
        noreply: bool,
    },
    /// `stats`: dump server counters.
    Stats,
    /// `version`.
    Version,
    /// `quit`: close the connection.
    Quit,
}

impl Command {
    /// True when the client asked for no reply.
    pub fn noreply(&self) -> bool {
        match self {
            Command::Set { noreply, .. }
            | Command::Add { noreply, .. }
            | Command::Replace { noreply, .. }
            | Command::Cas { noreply, .. }
            | Command::Append { noreply, .. }
            | Command::Prepend { noreply, .. }
            | Command::Touch { noreply, .. }
            | Command::Delete { noreply, .. }
            | Command::Incr { noreply, .. }
            | Command::Decr { noreply, .. } => *noreply,
            _ => false,
        }
    }
}

/// Why parsing failed; the server answers `CLIENT_ERROR` and closes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtoError {
    /// A line exceeded the configured limit.
    TooLarge,
    /// Structurally invalid input, with a short reason.
    Malformed(&'static str),
}

impl ProtoError {
    /// The human-readable reason.
    pub fn reason(&self) -> &'static str {
        match self {
            ProtoError::TooLarge => "line too long",
            ProtoError::Malformed(why) => why,
        }
    }
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "protocol error: {}", self.reason())
    }
}

impl std::error::Error for ProtoError {}

/// Incremental command parser; one per connection.
///
/// # Examples
///
/// ```
/// use eveth_kv::protocol::{Command, CommandParser};
///
/// let mut p = CommandParser::new();
/// assert!(p.feed(b"set k 7 0 3\r\nab").unwrap().is_none());
/// let cmd = p.feed(b"c\r\nget k\r\n").unwrap().unwrap();
/// match cmd {
///     Command::Set { key, flags, value, .. } => {
///         assert_eq!(&key[..], b"k");
///         assert_eq!(flags, 7);
///         assert_eq!(&value[..], b"abc");
///     }
///     other => panic!("unexpected {other:?}"),
/// }
/// // The pipelined `get` is already buffered:
/// let next = p.feed(b"").unwrap().unwrap();
/// assert_eq!(next, Command::Get { keys: vec![bytes::Bytes::from_static(b"k")] });
/// ```
#[derive(Debug)]
pub struct CommandParser {
    buf: Vec<u8>,
    limit: usize,
    value_limit: usize,
}

impl CommandParser {
    /// A parser with an 8 KB command-line limit and a 1 MiB value limit.
    pub fn new() -> Self {
        Self::with_limit(8 * 1024)
    }

    /// A parser with an explicit command-line limit and the default 1 MiB
    /// value limit.
    pub fn with_limit(limit: usize) -> Self {
        Self::with_limits(limit, 1024 * 1024)
    }

    /// A parser with explicit command-line and value-payload limits. The
    /// value limit is enforced on the *declared* byte count, before any
    /// payload is buffered — a client announcing a huge `set` is rejected
    /// immediately instead of ballooning server memory.
    pub fn with_limits(limit: usize, value_limit: usize) -> Self {
        CommandParser {
            buf: Vec::new(),
            limit,
            value_limit,
        }
    }

    /// Bytes buffered but not yet consumed by a complete command.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Feeds bytes; returns a command once one is complete. Call again
    /// with an empty slice to drain pipelined commands already buffered.
    ///
    /// # Errors
    ///
    /// [`ProtoError`] on oversized or malformed input; the connection
    /// should be closed afterwards.
    pub fn feed(&mut self, data: &[u8]) -> Result<Option<Command>, ProtoError> {
        self.buf.extend_from_slice(data);
        let Some(line_end) = find_crlf(&self.buf) else {
            if self.buf.len() > self.limit {
                return Err(ProtoError::TooLarge);
            }
            return Ok(None);
        };
        if line_end > self.limit {
            return Err(ProtoError::TooLarge);
        }
        // `set` carries a data block: wait until line + payload + CRLF are
        // all buffered before consuming anything.
        let head = ParsedLine::parse(&self.buf[..line_end])?;
        let total = match head.payload_len {
            Some(n) => {
                if n > self.value_limit {
                    return Err(ProtoError::Malformed("value too large"));
                }
                let need = line_end + 2 + n + 2;
                if self.buf.len() < need {
                    return Ok(None);
                }
                if &self.buf[line_end + 2 + n..need] != b"\r\n" {
                    return Err(ProtoError::Malformed("data block not CRLF-terminated"));
                }
                need
            }
            None => line_end + 2,
        };
        // Freeze exactly the consumed bytes; keys and values are O(1)
        // slices into this one allocation.
        let frozen: Bytes = Bytes::from(self.buf.drain(..total).collect::<Vec<u8>>());
        head.into_command(frozen, line_end)
    }
}

impl Default for CommandParser {
    fn default() -> Self {
        Self::new()
    }
}

/// Field offsets of a command line, resolved into `Bytes` slices only once
/// the whole command is buffered.
struct ParsedLine {
    verb: Verb,
    /// (start, end) offsets of each argument within the line.
    args: Vec<(usize, usize)>,
    noreply: bool,
    /// `Some(n)` when a data block of `n` bytes follows the line.
    payload_len: Option<usize>,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Verb {
    Get,
    Gets,
    Set,
    Add,
    Replace,
    Cas,
    Append,
    Prepend,
    Touch,
    Delete,
    Incr,
    Decr,
    Stats,
    Version,
    Quit,
}

impl Verb {
    /// Verbs carrying a `<flags> <exptime> <bytes>` header + data block.
    fn is_storage(self) -> bool {
        matches!(
            self,
            Verb::Set | Verb::Add | Verb::Replace | Verb::Cas | Verb::Append | Verb::Prepend
        )
    }
}

impl ParsedLine {
    fn parse(line: &[u8]) -> Result<ParsedLine, ProtoError> {
        let mut fields = split_fields(line);
        let (vs, ve) = *fields
            .first()
            .ok_or(ProtoError::Malformed("empty command"))?;
        let verb = match &line[vs..ve] {
            b"get" => Verb::Get,
            b"gets" => Verb::Gets,
            b"set" => Verb::Set,
            b"add" => Verb::Add,
            b"replace" => Verb::Replace,
            b"cas" => Verb::Cas,
            b"append" => Verb::Append,
            b"prepend" => Verb::Prepend,
            b"touch" => Verb::Touch,
            b"delete" => Verb::Delete,
            b"incr" => Verb::Incr,
            b"decr" => Verb::Decr,
            b"stats" => Verb::Stats,
            b"version" => Verb::Version,
            b"quit" => Verb::Quit,
            _ => return Err(ProtoError::Malformed("unknown command")),
        };
        fields.remove(0);
        let mut noreply = false;
        if verb.is_storage() || matches!(verb, Verb::Touch | Verb::Delete | Verb::Incr | Verb::Decr)
        {
            if let Some(&(s, e)) = fields.last() {
                if &line[s..e] == b"noreply" {
                    noreply = true;
                    fields.pop();
                }
            }
        }
        let expect = |n: usize, what: &'static str| {
            if fields.len() == n {
                Ok(())
            } else {
                Err(ProtoError::Malformed(what))
            }
        };
        let payload_len = match verb {
            Verb::Get | Verb::Gets => {
                if fields.is_empty() {
                    return Err(ProtoError::Malformed("get needs at least one key"));
                }
                None
            }
            Verb::Set | Verb::Add | Verb::Replace | Verb::Cas | Verb::Append | Verb::Prepend => {
                if verb == Verb::Cas {
                    expect(5, "cas needs <key> <flags> <exptime> <bytes> <cas unique>")?;
                    parse_u64(&line[fields[4].0..fields[4].1])
                        .ok_or(ProtoError::Malformed("bad cas unique"))?;
                } else {
                    expect(4, "set needs <key> <flags> <exptime> <bytes>")?;
                }
                let flags = parse_u64(&line[fields[1].0..fields[1].1])
                    .ok_or(ProtoError::Malformed("bad flags"))?;
                if flags > u32::MAX as u64 {
                    return Err(ProtoError::Malformed("flags out of range"));
                }
                parse_u64(&line[fields[2].0..fields[2].1])
                    .ok_or(ProtoError::Malformed("bad exptime"))?;
                let n = parse_u64(&line[fields[3].0..fields[3].1])
                    .ok_or(ProtoError::Malformed("bad byte count"))?
                    as usize;
                Some(n)
            }
            Verb::Touch => {
                expect(2, "touch needs <key> <exptime>")?;
                parse_u64(&line[fields[1].0..fields[1].1])
                    .ok_or(ProtoError::Malformed("bad exptime"))?;
                None
            }
            Verb::Delete => {
                expect(1, "delete needs <key>")?;
                None
            }
            Verb::Incr | Verb::Decr => {
                expect(2, "incr/decr need <key> <delta>")?;
                parse_u64(&line[fields[1].0..fields[1].1])
                    .ok_or(ProtoError::Malformed("bad delta"))?;
                None
            }
            Verb::Stats | Verb::Version | Verb::Quit => {
                expect(0, "unexpected arguments")?;
                None
            }
        };
        for &(s, e) in key_fields(verb, &fields) {
            validate_key(&line[s..e])?;
        }
        Ok(ParsedLine {
            verb,
            args: fields,
            noreply,
            payload_len,
        })
    }

    /// Builds the final command from the frozen buffer (`line_end` is the
    /// offset of the line's CR within it).
    fn into_command(self, frozen: Bytes, line_end: usize) -> Result<Option<Command>, ProtoError> {
        let arg = |i: usize| -> Bytes {
            let (s, e) = self.args[i];
            frozen.slice(s..e)
        };
        let num = |i: usize| -> u64 {
            let (s, e) = self.args[i];
            parse_u64(&frozen[s..e]).expect("validated by ParsedLine::parse")
        };
        let cmd = match self.verb {
            Verb::Get => Command::Get {
                keys: (0..self.args.len()).map(arg).collect(),
            },
            Verb::Gets => Command::Gets {
                keys: (0..self.args.len()).map(arg).collect(),
            },
            Verb::Set | Verb::Add | Verb::Replace | Verb::Cas | Verb::Append | Verb::Prepend => {
                let n = self.payload_len.expect("storage verbs have a payload");
                let key = arg(0);
                let flags = num(1) as u32;
                let exptime = num(2);
                let value = frozen.slice(line_end + 2..line_end + 2 + n);
                let noreply = self.noreply;
                match self.verb {
                    Verb::Set => Command::Set {
                        key,
                        flags,
                        exptime,
                        value,
                        noreply,
                    },
                    Verb::Add => Command::Add {
                        key,
                        flags,
                        exptime,
                        value,
                        noreply,
                    },
                    Verb::Replace => Command::Replace {
                        key,
                        flags,
                        exptime,
                        value,
                        noreply,
                    },
                    Verb::Append => Command::Append {
                        key,
                        flags,
                        exptime,
                        value,
                        noreply,
                    },
                    Verb::Prepend => Command::Prepend {
                        key,
                        flags,
                        exptime,
                        value,
                        noreply,
                    },
                    _ => Command::Cas {
                        key,
                        flags,
                        exptime,
                        value,
                        cas_unique: num(4),
                        noreply,
                    },
                }
            }
            Verb::Touch => Command::Touch {
                key: arg(0),
                exptime: num(1),
                noreply: self.noreply,
            },
            Verb::Delete => Command::Delete {
                key: arg(0),
                noreply: self.noreply,
            },
            Verb::Incr => Command::Incr {
                key: arg(0),
                delta: num(1),
                noreply: self.noreply,
            },
            Verb::Decr => Command::Decr {
                key: arg(0),
                delta: num(1),
                noreply: self.noreply,
            },
            Verb::Stats => Command::Stats,
            Verb::Version => Command::Version,
            Verb::Quit => Command::Quit,
        };
        Ok(Some(cmd))
    }
}

fn key_fields(verb: Verb, fields: &[(usize, usize)]) -> &[(usize, usize)] {
    match verb {
        Verb::Get | Verb::Gets => fields,
        Verb::Set
        | Verb::Add
        | Verb::Replace
        | Verb::Cas
        | Verb::Append
        | Verb::Prepend
        | Verb::Touch
        | Verb::Delete
        | Verb::Incr
        | Verb::Decr => &fields[..1],
        _ => &[],
    }
}

fn validate_key(key: &[u8]) -> Result<(), ProtoError> {
    if key.is_empty() {
        return Err(ProtoError::Malformed("empty key"));
    }
    if key.len() > MAX_KEY_LEN {
        return Err(ProtoError::Malformed("key too long"));
    }
    if key.iter().any(|&b| b <= b' ' || b == 0x7F) {
        return Err(ProtoError::Malformed(
            "key contains whitespace or control bytes",
        ));
    }
    Ok(())
}

fn find_crlf(buf: &[u8]) -> Option<usize> {
    buf.windows(2).position(|w| w == b"\r\n")
}

fn split_fields(line: &[u8]) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < line.len() {
        if line[i] == b' ' {
            i += 1;
            continue;
        }
        let start = i;
        while i < line.len() && line[i] != b' ' {
            i += 1;
        }
        out.push((start, i));
    }
    out
}

fn parse_u64(field: &[u8]) -> Option<u64> {
    if field.is_empty() || field.len() > 20 {
        return None;
    }
    let mut v: u64 = 0;
    for &b in field {
        if !b.is_ascii_digit() {
            return None;
        }
        v = v.checked_mul(10)?.checked_add((b - b'0') as u64)?;
    }
    Some(v)
}

// ---------------------------------------------------------------------------
// Server replies.
// ---------------------------------------------------------------------------

/// A server reply, encodable to wire bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Reply {
    /// One `VALUE` line + data block (part of a `get` response).
    Value {
        /// The key.
        key: Bytes,
        /// Client flags stored with the value.
        flags: u32,
        /// The value payload.
        data: Bytes,
    },
    /// One `VALUE` line with a trailing `cas unique` (part of a `gets`
    /// response).
    ValueCas {
        /// The key.
        key: Bytes,
        /// Client flags stored with the value.
        flags: u32,
        /// The value payload.
        data: Bytes,
        /// The entry's version stamp.
        cas: u64,
    },
    /// `END` terminating a `get` or `stats` response.
    End,
    /// `STORED`.
    Stored,
    /// `NOT_STORED` (failed `add`/`replace` precondition).
    NotStored,
    /// `EXISTS` (a `cas` found the entry modified).
    Exists,
    /// `TOUCHED` (a `touch` found and re-deadlined a live entry).
    Touched,
    /// `DELETED`.
    Deleted,
    /// `NOT_FOUND`.
    NotFound,
    /// Numeric result of `incr`/`decr`.
    Number(u64),
    /// One `STAT <name> <value>` line.
    Stat(String, String),
    /// `VERSION <v>`.
    Version(&'static str),
    /// `ERROR` (unknown command).
    Error,
    /// `CLIENT_ERROR <msg>`.
    ClientError(&'static str),
}

impl Reply {
    /// Appends the wire encoding to `out`.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            Reply::Value { key, flags, data } => {
                out.extend_from_slice(b"VALUE ");
                out.extend_from_slice(key);
                out.extend_from_slice(format!(" {} {}\r\n", flags, data.len()).as_bytes());
                out.extend_from_slice(data);
                out.extend_from_slice(b"\r\n");
            }
            Reply::ValueCas {
                key,
                flags,
                data,
                cas,
            } => {
                out.extend_from_slice(b"VALUE ");
                out.extend_from_slice(key);
                out.extend_from_slice(format!(" {} {} {}\r\n", flags, data.len(), cas).as_bytes());
                out.extend_from_slice(data);
                out.extend_from_slice(b"\r\n");
            }
            Reply::End => out.extend_from_slice(b"END\r\n"),
            Reply::Stored => out.extend_from_slice(b"STORED\r\n"),
            Reply::NotStored => out.extend_from_slice(b"NOT_STORED\r\n"),
            Reply::Exists => out.extend_from_slice(b"EXISTS\r\n"),
            Reply::Touched => out.extend_from_slice(b"TOUCHED\r\n"),
            Reply::Deleted => out.extend_from_slice(b"DELETED\r\n"),
            Reply::NotFound => out.extend_from_slice(b"NOT_FOUND\r\n"),
            Reply::Number(n) => out.extend_from_slice(format!("{n}\r\n").as_bytes()),
            Reply::Stat(k, v) => out.extend_from_slice(format!("STAT {k} {v}\r\n").as_bytes()),
            Reply::Version(v) => out.extend_from_slice(format!("VERSION {v}\r\n").as_bytes()),
            Reply::Error => out.extend_from_slice(b"ERROR\r\n"),
            Reply::ClientError(msg) => {
                out.extend_from_slice(format!("CLIENT_ERROR {msg}\r\n").as_bytes())
            }
        }
    }
}

/// Client-side incremental reply parser (used by the load generator).
///
/// Feed response bytes; it yields [`Reply`]s one at a time, reassembling
/// `VALUE` data blocks across chunk boundaries.
#[derive(Debug, Default)]
pub struct ReplyParser {
    buf: Vec<u8>,
}

impl ReplyParser {
    /// A fresh parser.
    pub fn new() -> Self {
        ReplyParser::default()
    }

    /// Bytes buffered but not yet consumed.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Feeds bytes; returns the next reply when complete. Call with an
    /// empty slice to drain further buffered replies.
    ///
    /// # Errors
    ///
    /// [`ProtoError::Malformed`] on an unrecognized reply line.
    pub fn feed(&mut self, data: &[u8]) -> Result<Option<Reply>, ProtoError> {
        self.buf.extend_from_slice(data);
        let Some(line_end) = find_crlf(&self.buf) else {
            return Ok(None);
        };
        let reply = {
            let line = &self.buf[..line_end];
            if let Some(rest) = line.strip_prefix(b"VALUE ".as_slice()) {
                let text = std::str::from_utf8(rest)
                    .map_err(|_| ProtoError::Malformed("non-UTF-8 VALUE line"))?;
                let mut parts = text.split(' ');
                let key = parts.next().ok_or(ProtoError::Malformed("VALUE key"))?;
                let flags: u32 = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or(ProtoError::Malformed("VALUE flags"))?;
                let len: usize = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or(ProtoError::Malformed("VALUE length"))?;
                // A fourth field is the `cas unique` of a `gets` response.
                let cas: Option<u64> = match parts.next() {
                    Some(s) => Some(
                        s.parse()
                            .map_err(|_| ProtoError::Malformed("VALUE cas unique"))?,
                    ),
                    None => None,
                };
                let need = line_end + 2 + len + 2;
                if self.buf.len() < need {
                    return Ok(None);
                }
                if &self.buf[line_end + 2 + len..need] != b"\r\n" {
                    return Err(ProtoError::Malformed("VALUE block not CRLF-terminated"));
                }
                let key = Bytes::from(key.as_bytes().to_vec());
                let data = Bytes::from(self.buf[line_end + 2..line_end + 2 + len].to_vec());
                self.buf.drain(..need);
                return Ok(Some(match cas {
                    Some(cas) => Reply::ValueCas {
                        key,
                        flags,
                        data,
                        cas,
                    },
                    None => Reply::Value { key, flags, data },
                }));
            }
            match line {
                b"END" => Reply::End,
                b"STORED" => Reply::Stored,
                b"NOT_STORED" => Reply::NotStored,
                b"EXISTS" => Reply::Exists,
                b"TOUCHED" => Reply::Touched,
                b"DELETED" => Reply::Deleted,
                b"NOT_FOUND" => Reply::NotFound,
                b"ERROR" => Reply::Error,
                _ => {
                    if let Some(rest) = line.strip_prefix(b"STAT ".as_slice()) {
                        let text = std::str::from_utf8(rest)
                            .map_err(|_| ProtoError::Malformed("non-UTF-8 STAT line"))?;
                        match text.split_once(' ') {
                            Some((k, v)) => Reply::Stat(k.to_string(), v.to_string()),
                            None => return Err(ProtoError::Malformed("STAT without value")),
                        }
                    } else if line.starts_with(b"VERSION ") {
                        Reply::Version("")
                    } else if line.starts_with(b"CLIENT_ERROR ") {
                        Reply::ClientError("")
                    } else if let Some(n) = parse_u64(line) {
                        Reply::Number(n)
                    } else {
                        return Err(ProtoError::Malformed("unrecognized reply"));
                    }
                }
            }
        };
        self.buf.drain(..line_end + 2);
        Ok(Some(reply))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_one(raw: &[u8]) -> Command {
        CommandParser::new().feed(raw).unwrap().unwrap()
    }

    #[test]
    fn parses_multi_key_get() {
        let cmd = parse_one(b"get alpha beta gamma\r\n");
        match cmd {
            Command::Get { keys } => {
                let keys: Vec<_> = keys.iter().map(|k| k.to_vec()).collect();
                assert_eq!(
                    keys,
                    vec![b"alpha".to_vec(), b"beta".to_vec(), b"gamma".to_vec()]
                );
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn set_value_is_slice_of_one_buffer() {
        let cmd = parse_one(b"set k 1 60 5\r\nhello\r\n");
        match cmd {
            Command::Set {
                key,
                flags,
                exptime,
                value,
                noreply,
            } => {
                assert_eq!(&key[..], b"k");
                assert_eq!(flags, 1);
                assert_eq!(exptime, 60);
                assert_eq!(&value[..], b"hello");
                assert!(!noreply);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn binary_safe_values() {
        let mut raw = b"set bin 0 0 4\r\n".to_vec();
        raw.extend_from_slice(&[0x00, 0xFF, b'\r', b'\n']);
        raw.extend_from_slice(b"\r\n");
        let cmd = CommandParser::new().feed(&raw).unwrap().unwrap();
        match cmd {
            Command::Set { value, .. } => assert_eq!(&value[..], &[0x00, 0xFF, b'\r', b'\n']),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn byte_at_a_time_feeding() {
        let raw = b"set k 0 0 3\r\nxyz\r\ndelete k noreply\r\n";
        let mut p = CommandParser::new();
        let mut got = Vec::new();
        for b in raw.iter() {
            if let Some(c) = p.feed(std::slice::from_ref(b)).unwrap() {
                got.push(c);
            }
        }
        while let Some(c) = p.feed(b"").unwrap() {
            got.push(c);
        }
        assert_eq!(got.len(), 2);
        assert!(matches!(got[0], Command::Set { .. }));
        assert!(matches!(got[1], Command::Delete { noreply: true, .. }));
        assert_eq!(p.buffered(), 0);
    }

    #[test]
    fn pipelined_commands_keep_remainder() {
        let mut p = CommandParser::new();
        let first = p
            .feed(b"incr n 5\r\ndecr n 2\r\nstats\r\n")
            .unwrap()
            .unwrap();
        assert!(matches!(first, Command::Incr { delta: 5, .. }));
        assert!(matches!(
            p.feed(b"").unwrap().unwrap(),
            Command::Decr { delta: 2, .. }
        ));
        assert_eq!(p.feed(b"").unwrap().unwrap(), Command::Stats);
        assert!(p.feed(b"").unwrap().is_none());
    }

    #[test]
    fn parses_add_replace_cas_gets() {
        match parse_one(b"add k 3 60 2\r\nab\r\n") {
            Command::Add {
                key, flags, value, ..
            } => {
                assert_eq!(&key[..], b"k");
                assert_eq!(flags, 3);
                assert_eq!(&value[..], b"ab");
            }
            other => panic!("unexpected {other:?}"),
        }
        match parse_one(b"replace k 0 0 1 noreply\r\nx\r\n") {
            Command::Replace { noreply, .. } => assert!(noreply),
            other => panic!("unexpected {other:?}"),
        }
        match parse_one(b"cas k 1 0 3 99\r\nxyz\r\n") {
            Command::Cas {
                key,
                cas_unique,
                value,
                noreply,
                ..
            } => {
                assert_eq!(&key[..], b"k");
                assert_eq!(cas_unique, 99);
                assert_eq!(&value[..], b"xyz");
                assert!(!noreply);
            }
            other => panic!("unexpected {other:?}"),
        }
        match parse_one(b"cas k 1 0 0 7 noreply\r\n\r\n") {
            Command::Cas {
                cas_unique,
                noreply,
                ..
            } => {
                assert_eq!(cas_unique, 7);
                assert!(noreply);
            }
            other => panic!("unexpected {other:?}"),
        }
        match parse_one(b"gets a b\r\n") {
            Command::Gets { keys } => assert_eq!(keys.len(), 2),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_append_prepend_touch() {
        match parse_one(b"append k 9 60 3\r\nxyz\r\n") {
            Command::Append {
                key,
                flags,
                exptime,
                value,
                noreply,
            } => {
                assert_eq!(&key[..], b"k");
                assert_eq!((flags, exptime), (9, 60));
                assert_eq!(&value[..], b"xyz");
                assert!(!noreply);
            }
            other => panic!("unexpected {other:?}"),
        }
        match parse_one(b"prepend k 0 0 2 noreply\r\nab\r\n") {
            Command::Prepend { value, noreply, .. } => {
                assert_eq!(&value[..], b"ab");
                assert!(noreply);
            }
            other => panic!("unexpected {other:?}"),
        }
        match parse_one(b"touch k 120\r\n") {
            Command::Touch {
                key,
                exptime,
                noreply,
            } => {
                assert_eq!(&key[..], b"k");
                assert_eq!(exptime, 120);
                assert!(!noreply);
            }
            other => panic!("unexpected {other:?}"),
        }
        match parse_one(b"touch k 0 noreply\r\n") {
            Command::Touch { noreply, .. } => assert!(noreply),
            other => panic!("unexpected {other:?}"),
        }
        for bad in [
            &b"append k 0 0\r\n"[..],
            &b"prepend k 0 0 x\r\na\r\n"[..],
            &b"touch k\r\n"[..],
            &b"touch k notanumber\r\n"[..],
            &b"touch k 0 extra stuff\r\n"[..],
        ] {
            assert!(
                CommandParser::new().feed(bad).is_err(),
                "should reject {:?}",
                String::from_utf8_lossy(bad)
            );
        }
    }

    #[test]
    fn touched_reply_roundtrips() {
        let mut wire = Vec::new();
        Reply::Touched.encode_into(&mut wire);
        assert_eq!(&wire[..], b"TOUCHED\r\n");
        let got = ReplyParser::new().feed(&wire).unwrap().unwrap();
        assert_eq!(got, Reply::Touched);
    }

    #[test]
    fn value_cas_reply_roundtrips_with_stamp() {
        let replies = vec![
            Reply::ValueCas {
                key: Bytes::from_static(b"k"),
                flags: 2,
                data: Bytes::from_static(b"payload"),
                cas: 12345,
            },
            Reply::End,
            Reply::NotStored,
            Reply::Exists,
        ];
        let mut wire = Vec::new();
        for r in &replies {
            r.encode_into(&mut wire);
        }
        assert!(wire.starts_with(b"VALUE k 2 7 12345\r\n"));
        let mut p = ReplyParser::new();
        let mut got = Vec::new();
        for chunk in wire.chunks(4) {
            if let Some(r) = p.feed(chunk).unwrap() {
                got.push(r);
                while let Some(r) = p.feed(b"").unwrap() {
                    got.push(r);
                }
            }
        }
        assert_eq!(got, replies);
    }

    #[test]
    fn rejects_malformed() {
        for bad in [
            &b"frobnicate\r\n"[..],
            &b"get\r\n"[..],
            &b"gets\r\n"[..],
            &b"add k 0 0\r\n"[..],
            &b"replace k 0 0\r\n"[..],
            &b"cas k 0 0 1\r\nx\r\n"[..],
            &b"cas k 0 0 1 notanumber\r\nx\r\n"[..],
            &b"set k 0 0\r\n"[..],
            &b"set k 0 0 abc\r\n"[..],
            &b"set k x 0 1\r\na\r\n"[..],
            &b"set k 0 x 1\r\na\r\n"[..],
            &b"set k 4294967296 0 1\r\na\r\n"[..],
            &b"incr k notanumber\r\n"[..],
            &b"set \x01 0 0 1\r\nx\r\n"[..],
            &b"stats extra\r\n"[..],
        ] {
            assert!(
                CommandParser::new().feed(bad).is_err(),
                "should reject {:?}",
                String::from_utf8_lossy(bad)
            );
        }
    }

    #[test]
    fn oversized_line_rejected() {
        let mut p = CommandParser::with_limit(32);
        let mut big = b"get ".to_vec();
        big.extend(std::iter::repeat_n(b'a', 64));
        assert_eq!(p.feed(&big).unwrap_err(), ProtoError::TooLarge);
    }

    #[test]
    fn oversized_declared_payload_rejected_before_buffering() {
        let mut p = CommandParser::with_limits(8 * 1024, 64);
        // The line alone declares 65 bytes: rejected with no payload fed.
        assert_eq!(
            p.feed(b"set k 0 0 65\r\n").unwrap_err(),
            ProtoError::Malformed("value too large")
        );
        // At the cap exactly, the set goes through.
        let mut p = CommandParser::with_limits(8 * 1024, 64);
        let mut raw = b"set k 0 0 64\r\n".to_vec();
        raw.extend(std::iter::repeat_n(b'v', 64));
        raw.extend_from_slice(b"\r\n");
        assert!(matches!(
            p.feed(&raw).unwrap().unwrap(),
            Command::Set { .. }
        ));
    }

    #[test]
    fn key_length_boundary() {
        let ok = format!("delete {}\r\n", "k".repeat(MAX_KEY_LEN));
        assert!(CommandParser::new().feed(ok.as_bytes()).unwrap().is_some());
        let bad = format!("delete {}\r\n", "k".repeat(MAX_KEY_LEN + 1));
        assert!(CommandParser::new().feed(bad.as_bytes()).is_err());
    }

    #[test]
    fn reply_roundtrip_through_client_parser() {
        let replies = vec![
            Reply::Value {
                key: Bytes::from_static(b"k"),
                flags: 9,
                data: Bytes::from_static(b"\x00binary\r\ndata"),
            },
            Reply::End,
            Reply::Stored,
            Reply::Deleted,
            Reply::NotFound,
            Reply::Number(1234),
            Reply::Stat("hits".into(), "42".into()),
            Reply::Error,
        ];
        let mut wire = Vec::new();
        for r in &replies {
            r.encode_into(&mut wire);
        }
        let mut p = ReplyParser::new();
        let mut got = Vec::new();
        // Feed in awkward 3-byte chunks to exercise reassembly.
        for chunk in wire.chunks(3) {
            if let Some(r) = p.feed(chunk).unwrap() {
                got.push(r);
                while let Some(r) = p.feed(b"").unwrap() {
                    got.push(r);
                }
            }
        }
        assert_eq!(got, replies);
        assert_eq!(p.buffered(), 0);
    }
}
