//! The reusable KV wire client: connect, ship pipelined command bytes,
//! read replies until the batch is answered.
//!
//! Extracted from the load generator so every consumer of the memcached
//! wire protocol — the loadgen, the cluster router, examples — shares
//! one client instead of each re-implementing the read loop. The shape
//! is the loadgen's original: one [`ReplyParser`] per batch, drain
//! buffered replies before touching the socket, attribute each closed
//! command the virtual time between the batch send and the chunk that
//! answered it. Consumers observe the stream through a [`ReadEvent`]
//! callback (counters, latency histograms) while transport and protocol
//! failures come back as typed [`KvClientError`]s.
//!
//! For consumers that must *forward* response bytes verbatim rather than
//! interpret them — the cluster router — [`ReplyFramer`] splits a raw
//! response stream into per-command byte runs (zero-copy windows of the
//! received chunks) using the same parser for framing only.

use std::collections::VecDeque;
use std::fmt;
use std::sync::Arc;

use bytes::Bytes;
use eveth_core::net::{send_all, Conn, Endpoint, NetError, NetStack};
use eveth_core::syscall::sys_time;
use eveth_core::time::Nanos;
use eveth_core::{loop_m, Loop, ThreadM};

use crate::protocol::{ProtoError, Reply, ReplyParser};

/// Why a pipelined exchange failed.
#[derive(Debug, Clone, PartialEq)]
pub enum KvClientError {
    /// The transport failed (connect, send, recv, or premature EOF).
    Transport(NetError),
    /// The server sent bytes the reply parser rejected.
    Protocol(ProtoError),
}

impl fmt::Display for KvClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KvClientError::Transport(e) => write!(f, "transport error: {e}"),
            KvClientError::Protocol(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for KvClientError {}

/// One observable event while reading a batch's replies; consumers fold
/// these into their own accounting (the loadgen's counters, the router's
/// stats) without owning the read loop.
#[derive(Debug)]
pub enum ReadEvent<'a> {
    /// A chunk of this many bytes arrived from the socket.
    Chunk(usize),
    /// One parsed reply.
    Reply {
        /// The reply itself.
        reply: &'a Reply,
        /// Virtual time between the batch send and the chunk that
        /// carried this reply.
        lat: Nanos,
        /// True when this reply completes a command
        /// ([`Reply::closes_command`]); exactly the replies that advance
        /// the answered count.
        closes: bool,
    },
    /// The transport failed or the server closed mid-batch; the read
    /// returns [`KvClientError::Transport`] right after.
    TransportError,
    /// The response bytes were malformed; the read returns
    /// [`KvClientError::Protocol`] right after.
    ProtocolError,
}

/// Reads from `conn` until `expected` commands are fully answered,
/// folding every event into `observe` (threaded through the loop as
/// `state`). Returns the final state, or the first failure.
///
/// This is the loadgen's original read loop, verbatim: buffered replies
/// drain before each recv, and latency is attributed per *chunk arrival*
/// (`sys_time` once per chunk, not per reply). The observer must be
/// `Clone` because the loop re-enters it each iteration; closures over
/// refcounted stats handles clone for free.
pub fn read_pipelined<S, F>(
    conn: Arc<dyn Conn>,
    expected: usize,
    sent_at: Nanos,
    init: S,
    observe: F,
) -> ThreadM<Result<S, KvClientError>>
where
    S: Send + 'static,
    F: Fn(&mut S, ReadEvent<'_>) + Clone + Send + Sync + 'static,
{
    loop_m(
        (ReplyParser::new(), 0usize, init, sent_at),
        move |(mut parser, mut answered, mut st, arrived_at)| {
            let observe = observe.clone();
            let conn = Arc::clone(&conn);
            // Drain everything already buffered before touching the
            // socket; these replies came in with the previous chunk.
            let lat = arrived_at.saturating_sub(sent_at);
            loop {
                match parser.try_next() {
                    Err(e) => {
                        observe(&mut st, ReadEvent::ProtocolError);
                        return ThreadM::pure(Loop::Break(Err(KvClientError::Protocol(e))));
                    }
                    Ok(None) => break,
                    Ok(Some(reply)) => {
                        let closes = reply.closes_command();
                        observe(
                            &mut st,
                            ReadEvent::Reply {
                                reply: &reply,
                                lat,
                                closes,
                            },
                        );
                        if closes {
                            answered += 1;
                        }
                    }
                }
            }
            if answered >= expected {
                return ThreadM::pure(Loop::Break(Ok(st)));
            }
            conn.recv(64 * 1024).bind(move |chunk| match chunk {
                Err(e) => {
                    observe(&mut st, ReadEvent::TransportError);
                    ThreadM::pure(Loop::Break(Err(KvClientError::Transport(e))))
                }
                Ok(chunk) if chunk.is_empty() => {
                    observe(&mut st, ReadEvent::TransportError);
                    ThreadM::pure(Loop::Break(Err(KvClientError::Transport(NetError::Closed))))
                }
                Ok(chunk) => sys_time().bind(move |now| {
                    observe(&mut st, ReadEvent::Chunk(chunk.len()));
                    match parser.feed_bytes(chunk) {
                        Err(e) => {
                            observe(&mut st, ReadEvent::ProtocolError);
                            ThreadM::pure(Loop::Break(Err(KvClientError::Protocol(e))))
                        }
                        Ok(first) => {
                            if let Some(reply) = first {
                                let closes = reply.closes_command();
                                observe(
                                    &mut st,
                                    ReadEvent::Reply {
                                        reply: &reply,
                                        lat: now.saturating_sub(sent_at),
                                        closes,
                                    },
                                );
                                if closes {
                                    answered += 1;
                                }
                            }
                            ThreadM::pure(Loop::Continue((parser, answered, st, now)))
                        }
                    }
                }),
            })
        },
    )
}

/// A connected KV wire client over any [`Conn`]. Cloning is cheap
/// (refcount bump) and shares the connection.
#[derive(Clone)]
pub struct KvClient {
    conn: Arc<dyn Conn>,
}

impl KvClient {
    /// Connects to `server` over `stack`.
    pub fn connect(
        stack: Arc<dyn NetStack>,
        server: Endpoint,
    ) -> ThreadM<Result<KvClient, NetError>> {
        stack
            .connect(server)
            .map(|connected| connected.map(KvClient::from_conn))
    }

    /// Wraps an already-established connection.
    pub fn from_conn(conn: Arc<dyn Conn>) -> KvClient {
        KvClient { conn }
    }

    /// The underlying connection.
    pub fn conn(&self) -> &Arc<dyn Conn> {
        &self.conn
    }

    /// Ships one batch of pre-encoded command bytes.
    pub fn send(&self, wire: Bytes) -> ThreadM<Result<(), NetError>> {
        send_all(&self.conn, wire)
    }

    /// Reads until `expected` commands are answered — see
    /// [`read_pipelined`].
    pub fn read_pipelined<S, F>(
        &self,
        expected: usize,
        sent_at: Nanos,
        init: S,
        observe: F,
    ) -> ThreadM<Result<S, KvClientError>>
    where
        S: Send + 'static,
        F: Fn(&mut S, ReadEvent<'_>) + Clone + Send + Sync + 'static,
    {
        read_pipelined(Arc::clone(&self.conn), expected, sent_at, init, observe)
    }

    /// One full exchange: timestamp, send, read `expected` replies,
    /// collecting them. The convenience entry point for scripted
    /// clients; the loadgen drives [`KvClient::send`] and
    /// [`KvClient::read_pipelined`] separately to own its accounting.
    pub fn request(
        &self,
        wire: Bytes,
        expected: usize,
    ) -> ThreadM<Result<Vec<Reply>, KvClientError>> {
        let this = self.clone();
        sys_time().bind(move |t_send| {
            this.send(wire).bind(move |sent| match sent {
                Err(e) => ThreadM::pure(Err(KvClientError::Transport(e))),
                Ok(()) => this.read_pipelined(
                    expected,
                    t_send,
                    Vec::with_capacity(expected),
                    |acc: &mut Vec<Reply>, ev| {
                        if let ReadEvent::Reply { reply, .. } = ev {
                            acc.push(reply.clone());
                        }
                    },
                ),
            })
        })
    }

    /// Closes the connection.
    pub fn close(&self) -> ThreadM<()> {
        self.conn.close()
    }
}

impl fmt::Debug for KvClient {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "KvClient(peer={})", self.conn.peer())
    }
}

/// One command's complete response, framed out of the raw stream.
#[derive(Debug)]
pub struct Framed {
    /// The exact response bytes, as zero-copy windows of the received
    /// chunks — forwardable verbatim.
    pub bytes: Vec<Bytes>,
    /// The reply that closed the command (`END`, `STORED`, …).
    pub closing: Reply,
    /// `VALUE` lines inside this response — zero means a clean miss for
    /// a single-key `get`.
    pub values: usize,
    /// The first parsed `VALUE`/`VALUE …cas` reply, kept so a consumer
    /// can act on the payload (the router's read-repair re-`set`s it)
    /// without reparsing the raw bytes.
    pub first_value: Option<Reply>,
}

/// Splits a raw response stream into per-command byte runs without
/// interpreting them: the parser is used for *framing only*, so the
/// bytes forwarded downstream are exactly the bytes the backend sent
/// (including reply payloads the parsed [`Reply`] does not retain, like
/// `VERSION`/`CLIENT_ERROR` text).
#[derive(Debug, Default)]
pub struct ReplyFramer {
    parser: ReplyParser,
    /// Received chunks not yet fully claimed into framed commands.
    chunks: VecDeque<Bytes>,
    /// Bytes of `chunks.front()` already claimed.
    head_consumed: usize,
    /// Total bytes fed / claimed; `fed - parser.buffered()` is the
    /// stream offset just past the last fully parsed reply.
    fed: usize,
    claimed: usize,
    /// `VALUE` lines seen since the last command boundary.
    values_open: usize,
    first_value_open: Option<Reply>,
    ready: VecDeque<Framed>,
}

impl ReplyFramer {
    /// An empty framer.
    pub fn new() -> ReplyFramer {
        ReplyFramer::default()
    }

    /// Completed commands waiting in [`ReplyFramer::pop`] order.
    pub fn ready(&self) -> usize {
        self.ready.len()
    }

    /// Feeds one received chunk; returns how many commands completed.
    ///
    /// # Errors
    ///
    /// [`ProtoError`] if the stream is not a valid reply sequence.
    pub fn feed(&mut self, chunk: Bytes) -> Result<usize, ProtoError> {
        self.fed += chunk.len();
        self.chunks.push_back(chunk.clone());
        let mut completed = 0;
        let mut next = self.parser.feed_bytes(chunk)?;
        while let Some(reply) = next {
            if reply.closes_command() {
                let boundary = self.fed - self.parser.buffered();
                let bytes = self.claim(boundary);
                self.ready.push_back(Framed {
                    bytes,
                    closing: reply,
                    values: self.values_open,
                    first_value: self.first_value_open.take(),
                });
                self.values_open = 0;
                completed += 1;
            } else if matches!(reply, Reply::Value { .. } | Reply::ValueCas { .. }) {
                if self.values_open == 0 {
                    self.first_value_open = Some(reply);
                }
                self.values_open += 1;
            }
            next = self.parser.try_next()?;
        }
        Ok(completed)
    }

    /// Pops the next completed command's response.
    pub fn pop(&mut self) -> Option<Framed> {
        self.ready.pop_front()
    }

    /// Claims stream bytes `[claimed, upto)` as zero-copy windows.
    fn claim(&mut self, upto: usize) -> Vec<Bytes> {
        let mut need = upto - self.claimed;
        let mut segs = Vec::new();
        while need > 0 {
            let front = self.chunks.front().expect("claimed past fed bytes");
            let avail = front.len() - self.head_consumed;
            let take = avail.min(need);
            segs.push(front.slice(self.head_consumed..self.head_consumed + take));
            self.head_consumed += take;
            need -= take;
            if self.head_consumed == front.len() {
                self.chunks.pop_front();
                self.head_consumed = 0;
            }
        }
        self.claimed = upto;
        segs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flat(segs: &[Bytes]) -> Vec<u8> {
        segs.iter().flat_map(|s| s.iter().copied()).collect()
    }

    #[test]
    fn framer_splits_commands_and_preserves_bytes() {
        let wire = b"VALUE k 0 5\r\nhello\r\nEND\r\nSTORED\r\nEND\r\n";
        let mut f = ReplyFramer::new();
        // Feed in awkward splits to exercise chunk-straddling claims.
        let (a, b) = wire.split_at(17);
        assert_eq!(f.feed(Bytes::from(a.to_vec())).unwrap(), 0);
        assert_eq!(f.feed(Bytes::from(b.to_vec())).unwrap(), 3);
        let first = f.pop().unwrap();
        assert_eq!(flat(&first.bytes), b"VALUE k 0 5\r\nhello\r\nEND\r\n");
        assert_eq!(first.closing, Reply::End);
        assert_eq!(first.values, 1);
        match first.first_value {
            Some(Reply::Value { ref data, .. }) => assert_eq!(&data[..], b"hello"),
            other => panic!("expected the parsed VALUE, got {other:?}"),
        }
        let second = f.pop().unwrap();
        assert_eq!(flat(&second.bytes), b"STORED\r\n");
        assert_eq!(second.closing, Reply::Stored);
        let third = f.pop().unwrap();
        assert_eq!(flat(&third.bytes), b"END\r\n");
        assert_eq!(third.values, 0, "a miss has no VALUE lines");
        assert!(f.pop().is_none());
    }

    #[test]
    fn framer_forwards_payloads_the_parser_drops() {
        // VERSION/CLIENT_ERROR text is collapsed by ReplyParser but must
        // survive verbatim through the framer.
        let wire = b"VERSION 1.6.0-sim\r\nCLIENT_ERROR bad delta\r\n";
        let mut f = ReplyFramer::new();
        // Both lines are complete single-line responses, so each closes
        // its own frame — a `version` forwarded by the router frames
        // exactly one reply instead of waiting for a terminator.
        assert_eq!(f.feed(Bytes::from(wire.to_vec())).unwrap(), 2);
        let version = f.pop().unwrap();
        assert_eq!(flat(&version.bytes), b"VERSION 1.6.0-sim\r\n");
        assert_eq!(version.closing, Reply::Version(""));
        let err = f.pop().unwrap();
        assert_eq!(flat(&err.bytes), b"CLIENT_ERROR bad delta\r\n");
        assert_eq!(err.closing, Reply::ClientError(""));
    }

    #[test]
    fn framer_windows_alias_the_chunks() {
        let chunk = Bytes::from(b"STORED\r\n".to_vec());
        let ptr = chunk.as_ref().as_ptr();
        let mut f = ReplyFramer::new();
        f.feed(chunk).unwrap();
        let framed = f.pop().unwrap();
        assert!(std::ptr::eq(framed.bytes[0].as_ref().as_ptr(), ptr));
    }

    #[test]
    fn framer_rejects_garbage() {
        let mut f = ReplyFramer::new();
        assert!(f.feed(Bytes::from_static(b"WHAT\r\n")).is_err());
    }
}
