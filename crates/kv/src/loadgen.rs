//! The KV load generator: monadic client threads issuing pipelined
//! get/set mixes over zipfian keys, modeled on `eveth_http::loadgen`.
//!
//! Each client connects once, then repeatedly ships a *batch* of
//! `pipeline_depth` commands in one send and reads replies until the
//! batch is fully answered — the access pattern memcached deployments
//! actually see, and the knob the `fig_kv` bench sweeps. The wire work
//! (pipelined read loop, latency attribution) lives in
//! [`crate::client`]; this module owns workload generation and the
//! counters.

use std::fmt;
use std::sync::Arc;

use bytes::{BufferPool, Bytes, BytesMut};
use eveth_core::net::{Endpoint, NetStack};
use eveth_core::syscall::{sys_nbio, sys_time};
use eveth_core::time::Nanos;
use eveth_core::{do_m, loop_m, Loop, ThreadM};

use crate::client::{KvClient, KvClientError, ReadEvent};
use crate::protocol::Reply;
use crate::stats::{Counter, LatencyHistogram};

/// Load-generator parameters.
#[derive(Debug, Clone)]
pub struct KvLoadConfig {
    /// Server to hammer.
    pub server: Endpoint,
    /// Command batches each client issues before closing.
    pub batches_per_conn: usize,
    /// Commands per batch (pipeline depth); 1 = strict request/response.
    pub pipeline_depth: usize,
    /// Key-space size; keys are `k000000`…
    pub keys: usize,
    /// Zipf skew (`0.0` = uniform; memcached studies typically ~0.99).
    pub zipf_s: f64,
    /// Sets per 100 commands (the rest are gets).
    pub set_percent: u8,
    /// Value payload size for sets.
    pub value_bytes: usize,
    /// TTL passed on sets (seconds; 0 = never).
    pub ttl_secs: u64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for KvLoadConfig {
    fn default() -> Self {
        KvLoadConfig {
            server: Endpoint::new(eveth_core::net::HostId(1), 11211),
            batches_per_conn: 32,
            pipeline_depth: 8,
            keys: 1024,
            zipf_s: 0.99,
            set_percent: 10,
            value_bytes: 100,
            ttl_secs: 0,
            seed: 1,
        }
    }
}

/// Aggregate client-side counters.
#[derive(Debug, Default)]
pub struct KvLoadStats {
    /// `VALUE` replies received (get hits).
    pub hits: Counter,
    /// `get` commands answered without a value (misses).
    pub misses: Counter,
    /// `STORED` replies.
    pub stored: Counter,
    /// Error replies (`ERROR`/`CLIENT_ERROR`/`SERVER_ERROR`) or reply
    /// parse failures observed.
    pub errors: Counter,
    /// Transport failures (connect/send/recv).
    pub transport_errors: Counter,
    /// Total bytes received.
    pub bytes_in: Counter,
    /// Total bytes sent.
    pub bytes_out: Counter,
    /// Clients that finished their run.
    pub clients_done: Counter,
    /// Per-command virtual-time latency (batch send → reply observed),
    /// with exact p50/p95/p99 — the tail-latency columns of `fig_kv`.
    pub latency: LatencyHistogram,
}

impl KvLoadStats {
    /// Total commands answered (hits + misses + stored).
    pub fn responses(&self) -> u64 {
        self.hits.get() + self.misses.get() + self.stored.get()
    }
}

impl fmt::Display for KvLoadStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "hits={} misses={} stored={} errors={} transport_errors={} bytes_in={} bytes_out={}",
            self.hits.get(),
            self.misses.get(),
            self.stored.get(),
            self.errors.get(),
            self.transport_errors.get(),
            self.bytes_in.get(),
            self.bytes_out.get()
        )
    }
}

/// A zipfian sampler over ranks `0..n` with exponent `s`, via a
/// precomputed CDF (deterministic given the RNG stream).
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Arc<Vec<f64>>,
}

impl Zipf {
    /// Builds the CDF for `n` ranks with skew `s`.
    pub fn new(n: usize, s: f64) -> Zipf {
        assert!(n > 0, "zipf over an empty key space");
        let mut weights: Vec<f64> = (1..=n).map(|k| 1.0 / (k as f64).powf(s)).collect();
        let total: f64 = weights.iter().sum();
        let mut acc = 0.0;
        for w in &mut weights {
            acc += *w / total;
            *w = acc;
        }
        weights[n - 1] = 1.0; // guard against FP undershoot
        Zipf {
            cdf: Arc::new(weights),
        }
    }

    /// Samples a rank from a uniform `u` in `[0, 1)`.
    pub fn sample(&self, u: f64) -> usize {
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

/// The canonical key for a rank.
pub fn key_for(rank: usize) -> String {
    format!("k{rank:06}")
}

/// xorshift64* step shared by the client threads.
fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

fn unit_f64(state: &mut u64) -> f64 {
    (xorshift(state) >> 11) as f64 / (1u64 << 53) as f64
}

/// Appends one `set` command (header, payload, trailing CRLF) for `rank`
/// straight into the wire buffer — no intermediate `String`/`Vec` per
/// command, and the payload is written with [`BytesMut::put_repeat`]
/// rather than materialising a scratch value.
fn push_set(wire: &mut BytesMut, cfg: &KvLoadConfig, rank: usize) {
    use std::fmt::Write as _;
    let key = key_for(rank);
    // Infallible: BytesMut's fmt::Write never errors.
    let _ = write!(wire, "set {key} 0 {} {}\r\n", cfg.ttl_secs, cfg.value_bytes);
    wire.put_repeat(b'a' + (rank % 26) as u8, cfg.value_bytes);
    wire.extend_from_slice(b"\r\n");
}

/// Builds one batch of `depth` pipelined commands in a pooled buffer;
/// returns the frozen wire bytes and how many replies to expect (gets
/// answer with `END`, sets with `STORED`).
fn build_batch(cfg: &KvLoadConfig, zipf: &Zipf, rng: &mut u64) -> (Bytes, usize) {
    use std::fmt::Write as _;
    let mut wire = BufferPool::global().acquire();
    let mut expected = 0usize;
    for _ in 0..cfg.pipeline_depth {
        let rank = zipf.sample(unit_f64(rng));
        if (xorshift(rng) % 100) < cfg.set_percent as u64 {
            push_set(&mut wire, cfg, rank);
        } else {
            let key = key_for(rank);
            let _ = write!(wire, "get {key}\r\n");
        }
        expected += 1;
    }
    (wire.freeze(), expected)
}

/// One load-generator client: connect, ship batches, read replies, close.
pub fn client_thread(
    stack: Arc<dyn NetStack>,
    cfg: Arc<KvLoadConfig>,
    stats: Arc<KvLoadStats>,
    id: u64,
) -> ThreadM<()> {
    let zipf = Zipf::new(cfg.keys, cfg.zipf_s);
    let done_stats = Arc::clone(&stats);
    let body = do_m! {
        let connected <- stack.connect(cfg.server);
        match connected {
            Err(_) => {
                let stats = Arc::clone(&stats);
                sys_nbio(move || stats.transport_errors.incr())
            }
            Ok(conn) => {
                let client = KvClient::from_conn(conn);
                let rng0 = (cfg.seed ^ id.wrapping_mul(0x9E37_79B9_7F4A_7C15)) | 1;
                let cfg = Arc::clone(&cfg);
                let stats = Arc::clone(&stats);
                let zipf = zipf.clone();
                loop_m((rng0, 0usize), move |(mut rng, batch)| {
                    if batch >= cfg.batches_per_conn {
                        return client.close().map(|_| Loop::Break(()));
                    }
                    let (wire, expected) = build_batch(&cfg, &zipf, &mut rng);
                    let stats2 = Arc::clone(&stats);
                    let client2 = client.clone();
                    let n_out = wire.len() as u64;
                    do_m! {
                        let t_send <- sys_time();
                        let sent <- client2.send(wire);
                        match sent {
                            Err(_) => {
                                let stats = Arc::clone(&stats2);
                                let client = client2.clone();
                                do_m! {
                                    sys_nbio(move || stats.transport_errors.incr());
                                    client.close().map(|_| Loop::Break(()))
                                }
                            }
                            Ok(()) => {
                                stats2.bytes_out.add(n_out);
                                read_replies(&client2, Arc::clone(&stats2), expected, t_send)
                                    .map(move |res| {
                                        if res.is_ok() {
                                            Loop::Continue((rng, batch + 1))
                                        } else {
                                            Loop::Break(())
                                        }
                                    })
                            }
                        }
                    }
                })
            }
        }
    };
    body.bind(move |_| sys_nbio(move || done_stats.clients_done.incr()))
}

/// Deterministically fills the whole key space before a measured run:
/// one client that `set`s every key rank exactly once (values match what
/// [`client_thread`]'s sets would store), in pipelined batches of
/// `depth`. Get-heavy cells preload so every measured `get` hits and the
/// reply path actually carries value bytes. Increments
/// `stats.clients_done` when the fill is fully acknowledged.
pub fn preload_thread(
    stack: Arc<dyn NetStack>,
    cfg: Arc<KvLoadConfig>,
    stats: Arc<KvLoadStats>,
) -> ThreadM<()> {
    let done_stats = Arc::clone(&stats);
    let depth = cfg.pipeline_depth.max(1);
    let body = do_m! {
        let connected <- stack.connect(cfg.server);
        match connected {
            Err(_) => {
                let stats = Arc::clone(&stats);
                sys_nbio(move || stats.transport_errors.incr())
            }
            Ok(conn) => {
                let client = KvClient::from_conn(conn);
                let cfg = Arc::clone(&cfg);
                let stats = Arc::clone(&stats);
                loop_m(0usize, move |next_rank| {
                    if next_rank >= cfg.keys {
                        return client.close().map(|_| Loop::Break(()));
                    }
                    let batch_end = (next_rank + depth).min(cfg.keys);
                    let mut wire = BufferPool::global().acquire();
                    for rank in next_rank..batch_end {
                        push_set(&mut wire, &cfg, rank);
                    }
                    let expected = batch_end - next_rank;
                    let stats2 = Arc::clone(&stats);
                    let client2 = client.clone();
                    do_m! {
                        let t_send <- sys_time();
                        let sent <- client2.send(wire.freeze());
                        match sent {
                            Err(_) => {
                                let stats = Arc::clone(&stats2);
                                let client = client2.clone();
                                do_m! {
                                    sys_nbio(move || stats.transport_errors.incr());
                                    client.close().map(|_| Loop::Break(()))
                                }
                            }
                            Ok(()) => read_replies(&client2, Arc::clone(&stats2), expected, t_send)
                                .map(move |res| {
                                    if res.is_ok() {
                                        Loop::Continue(batch_end)
                                    } else {
                                        Loop::Break(())
                                    }
                                }),
                        }
                    }
                })
            }
        }
    };
    body.bind(move |_| sys_nbio(move || done_stats.clients_done.incr()))
}

/// Folds one [`ReadEvent`] from the shared wire client into the load
/// counters. An `END` closes a get (its preceding `VALUE` lines are the
/// hits), `STORED`/`NOT_FOUND`/numbers close their command; each closed
/// command records its latency — the virtual time between the batch send
/// and the chunk that answered it — into the histogram.
fn observe_load(stats: &KvLoadStats, hits_in_get: &mut u64, ev: ReadEvent<'_>) {
    match ev {
        ReadEvent::Chunk(n) => stats.bytes_in.add(n as u64),
        ReadEvent::TransportError => stats.transport_errors.incr(),
        ReadEvent::ProtocolError => stats.errors.incr(),
        ReadEvent::Reply { reply, lat, closes } => {
            match reply {
                Reply::Value { .. } | Reply::ValueCas { .. } => *hits_in_get += 1,
                Reply::End => {
                    stats.hits.add(*hits_in_get);
                    if *hits_in_get == 0 {
                        stats.misses.incr();
                    }
                    *hits_in_get = 0;
                }
                Reply::Stored => stats.stored.incr(),
                Reply::Error | Reply::ClientError(_) | Reply::ServerError(_) => {
                    stats.errors.incr();
                }
                _ => {}
            }
            if closes {
                stats.latency.record(lat);
            }
        }
    }
}

/// Reads until `expected` commands are fully answered, attributing each
/// command a latency of (reply arrival − `sent_at`, virtual time), via
/// the shared [`KvClient`] read loop.
fn read_replies(
    client: &KvClient,
    stats: Arc<KvLoadStats>,
    expected: usize,
    sent_at: Nanos,
) -> ThreadM<Result<u64, KvClientError>> {
    client.read_pipelined(expected, sent_at, 0u64, move |hits_in_get, ev| {
        observe_load(&stats, hits_in_get, ev)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_is_skewed_and_in_range() {
        let z = Zipf::new(100, 1.0);
        let mut rng = 7u64;
        let mut counts = vec![0u32; 100];
        for _ in 0..10_000 {
            let r = z.sample(unit_f64(&mut rng));
            counts[r] += 1;
        }
        assert!(counts[0] > counts[50], "rank 0 must dominate rank 50");
        assert!(counts[0] > 10_000 / 100, "rank 0 above uniform share");
    }

    #[test]
    fn zipf_zero_skew_is_roughly_uniform() {
        let z = Zipf::new(10, 0.0);
        let mut rng = 3u64;
        let mut counts = vec![0u32; 10];
        for _ in 0..10_000 {
            counts[z.sample(unit_f64(&mut rng))] += 1;
        }
        for &c in &counts {
            assert!((500..2000).contains(&c), "uniform-ish share, got {c}");
        }
    }

    #[test]
    fn batches_mix_sets_and_gets_deterministically() {
        let cfg = KvLoadConfig {
            set_percent: 50,
            pipeline_depth: 64,
            ..Default::default()
        };
        let zipf = Zipf::new(cfg.keys, cfg.zipf_s);
        let mut rng = 5u64;
        let (wire, expected) = build_batch(&cfg, &zipf, &mut rng);
        assert_eq!(expected, 64);
        let text = String::from_utf8_lossy(&wire);
        assert!(text.contains("get k"), "has gets");
        assert!(text.contains("set k"), "has sets");
        let mut rng2 = 5u64;
        assert_eq!(wire, build_batch(&cfg, &zipf, &mut rng2).0, "deterministic");
    }

    #[test]
    fn key_for_is_fixed_width() {
        assert_eq!(key_for(7), "k000007");
        assert_eq!(key_for(123456), "k123456");
    }
}
