//! The sharded in-memory store.
//!
//! Keys are hashed (FNV-1a) onto N independent shards so concurrent
//! monadic threads contend only per shard, never on a global lock. Two
//! interchangeable shard guards are provided, selected by
//! [`StoreConfig::backend`]:
//!
//! * [`Backend::Mutex`] — each shard is guarded by an
//!   [`eveth_core::sync::Mutex`], the paper's §4.7 scheduler-extension
//!   lock: waiting blocks the *monadic* thread only, never the OS worker.
//! * [`Backend::Stm`] — each shard lives in an [`eveth_stm::TVar`] and is
//!   updated with `atomically_m` transactions (§4.7's STM), trading
//!   copy-on-write costs for optimistic, lock-free readers.
//!
//! Both expose the same monadic operations, so the server and the
//! property tests are backend-agnostic. Expiry is hybrid: reads treat
//! stale entries as misses immediately (lazy), and the server runs a
//! [`janitor`](crate::expiry::janitor) thread off the runtime timer wheel
//! to reclaim memory for keys that are never touched again (eager).

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use bytes::{BufferPool, Bytes};
use eveth_core::sync::Mutex as MonadicMutex;
use eveth_core::time::{Nanos, SECS};
use eveth_core::{do_m, ThreadM};
use eveth_stm::{atomically_m_with_stats, StmResult, TVar, Txn, TxnStats};
use parking_lot::Mutex as PlMutex;

use crate::stats::ShardStats;

/// Which synchronization primitive guards each shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Monadic mutex per shard (paper §4.7 scheduler extension).
    Mutex,
    /// `TVar` per shard, updated transactionally (paper §4.7 STM).
    Stm,
}

/// Store tunables.
#[derive(Debug, Clone)]
pub struct StoreConfig {
    /// Number of shards (rounded up to at least 1).
    pub shards: usize,
    /// Shard guard selection.
    pub backend: Backend,
    /// Values larger than this are rejected (`CLIENT_ERROR`).
    pub max_value_bytes: usize,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            shards: 16,
            backend: Backend::Mutex,
            max_value_bytes: 1024 * 1024,
        }
    }
}

/// One stored value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Entry {
    /// The payload.
    pub value: Bytes,
    /// Opaque client flags echoed on `get`.
    pub flags: u32,
    /// Absolute expiry deadline (runtime nanoseconds); `None` = never.
    pub expires_at: Option<Nanos>,
    /// Per-entry version stamp — the `cas unique` of the memcached
    /// protocol, returned by `gets` and checked by `cas`. The store
    /// assigns a fresh stamp on every successful write (set/add/replace/
    /// cas/incr/decr); caller-provided values are overwritten.
    pub version: u64,
}

impl Entry {
    fn is_expired(&self, now: Nanos) -> bool {
        self.expires_at.is_some_and(|d| d <= now)
    }
}

/// Outcome of a `cas` (compare-and-swap on the version stamp).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CasOutcome {
    /// The stamp matched; the new value was stored.
    Stored,
    /// The entry exists but was modified since the client's `gets`.
    Exists,
    /// No live entry under the key.
    NotFound,
}

/// Outcome of an `append`/`prepend` (concatenation onto an existing
/// value).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConcatOutcome {
    /// A live entry existed; the bytes were concatenated and the entry
    /// re-stamped.
    Stored,
    /// No live entry under the key (memcached answers `NOT_STORED`).
    Missing,
    /// The combined value would exceed [`StoreConfig::max_value_bytes`].
    TooLarge,
}

/// Outcome of an `incr`/`decr`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CounterResult {
    /// The new value.
    Ok(u64),
    /// No such key (memcached does not auto-vivify counters).
    NotFound,
    /// The stored value is not a decimal integer.
    NotNumeric,
}

type ShardMap = HashMap<Box<[u8]>, Entry>;

/// A shard guarded by the monadic mutex. The inner `parking_lot` lock is
/// only for `Send`/`Sync` soundness of the map itself; cross-thread
/// mutual exclusion is provided by the monadic lock, so the inner lock is
/// never contended.
struct MutexShard {
    gate: MonadicMutex,
    map: Arc<PlMutex<ShardMap>>,
}

/// A shard held in a `TVar`. The map is wrapped in an `Arc` so a
/// transactional read is O(1); writers clone-on-write before committing.
struct StmShard {
    cell: TVar<Arc<ShardMap>>,
}

enum Shards {
    Mutex(Vec<MutexShard>),
    Stm(Vec<StmShard>),
}

/// The sharded store shared by all server threads.
pub struct ShardedStore {
    shards: Shards,
    stats: Arc<Vec<ShardStats>>,
    /// Transaction contention counters, shared by every STM operation on
    /// this store (zero and idle under the mutex backend).
    stm_stats: Arc<TxnStats>,
    /// The version-stamp allocator behind [`Entry::version`]: one stamp is
    /// drawn per mutating operation (applied only if the write commits, so
    /// failed `add`s leave gaps — `cas unique` values are opaque). Under
    /// the serialized simulator the sequence is deterministic.
    next_version: std::sync::atomic::AtomicU64,
    cfg: StoreConfig,
}

impl ShardedStore {
    /// Builds an empty store.
    pub fn new(cfg: StoreConfig) -> Arc<Self> {
        let n = cfg.shards.max(1);
        let shards = match cfg.backend {
            Backend::Mutex => Shards::Mutex(
                (0..n)
                    .map(|_| MutexShard {
                        gate: MonadicMutex::new(),
                        map: Arc::new(PlMutex::new(HashMap::new())),
                    })
                    .collect(),
            ),
            Backend::Stm => Shards::Stm(
                (0..n)
                    .map(|_| StmShard {
                        cell: TVar::new(Arc::new(HashMap::new())),
                    })
                    .collect(),
            ),
        };
        Arc::new(ShardedStore {
            shards,
            stats: Arc::new((0..n).map(|_| ShardStats::default()).collect()),
            stm_stats: TxnStats::new(),
            next_version: std::sync::atomic::AtomicU64::new(1),
            cfg,
        })
    }

    /// Draws the next version stamp (one per mutating operation).
    fn stamp(&self) -> u64 {
        self.next_version
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed)
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.stats.len()
    }

    /// Per-shard counters.
    pub fn shard_stats(&self) -> &Arc<Vec<ShardStats>> {
        &self.stats
    }

    /// The configuration this store was built with.
    pub fn config(&self) -> &StoreConfig {
        &self.cfg
    }

    /// The shard index a key hashes to.
    pub fn shard_of(&self, key: &[u8]) -> usize {
        (fnv1a(key) % self.shard_count() as u64) as usize
    }

    /// Runs a store transaction with this store's shared contention
    /// counters attached — every STM arm goes through here so
    /// [`ShardedStore::stm_retries`] sees all of them.
    fn stm_atomically<A, F>(&self, body: F) -> ThreadM<A>
    where
        A: Send + 'static,
        F: Fn(&mut Txn) -> StmResult<A> + Send + Sync + 'static,
    {
        atomically_m_with_stats(body, Arc::clone(&self.stm_stats))
    }

    /// Total nanoseconds threads spent waiting on shard locks (summed
    /// across shards) — the store-level contention signal `fig_kv`
    /// reports. Always 0 for the STM backend, whose contention shows up
    /// as transaction retries instead of lock waits.
    pub fn lock_wait_ns(&self) -> u64 {
        match &self.shards {
            Shards::Mutex(shards) => shards.iter().map(|s| s.gate.contended_ns()).sum(),
            Shards::Stm(_) => 0,
        }
    }

    /// Per-shard lock-wait nanoseconds, indexed by shard (all zeros for
    /// the STM backend). [`ShardedStore::lock_wait_ns`] is this summed;
    /// the per-shard view is what shows a thundering herd for what it is —
    /// the wait concentrated on the hot key's shard rather than smeared
    /// across the store.
    pub fn shard_lock_waits(&self) -> Vec<u64> {
        match &self.shards {
            Shards::Mutex(shards) => shards.iter().map(|s| s.gate.contended_ns()).collect(),
            Shards::Stm(shards) => vec![0; shards.len()],
        }
    }

    /// Shard-lock acquisitions that had to wait (0 for the STM backend).
    pub fn lock_contentions(&self) -> u64 {
        match &self.shards {
            Shards::Mutex(shards) => shards.iter().map(|s| s.gate.contentions()).sum(),
            Shards::Stm(_) => 0,
        }
    }

    /// Transaction attempts re-executed because of contention (conflict
    /// invalidations + `retry` blocks) — the STM backend's analogue of
    /// [`ShardedStore::lock_contentions`], surfaced as the `stm_retries`
    /// column of `fig_kv`. Always 0 for the mutex backend.
    pub fn stm_retries(&self) -> u64 {
        self.stm_stats.retries()
    }

    /// The shared transaction counters behind [`ShardedStore::stm_retries`].
    pub fn stm_stats(&self) -> &Arc<TxnStats> {
        &self.stm_stats
    }

    /// Converts a protocol `exptime` (relative seconds, 0 = never) into an
    /// absolute deadline.
    pub fn deadline(now: Nanos, exptime_secs: u64) -> Option<Nanos> {
        (exptime_secs != 0).then(|| now.saturating_add(exptime_secs.saturating_mul(SECS)))
    }

    /// Looks up `key` at time `now`. Expired entries are misses.
    pub fn get(self: &Arc<Self>, key: Bytes, now: Nanos) -> ThreadM<Option<Entry>> {
        let this = Arc::clone(self);
        let idx = self.shard_of(&key);
        let found = match &self.shards {
            Shards::Mutex(shards) => {
                let shard = &shards[idx];
                let map = Arc::clone(&shard.map);
                shard
                    .gate
                    .with_nbio(move || map.lock().get(key.as_ref()).cloned())
            }
            Shards::Stm(shards) => {
                let cell = shards[idx].cell.clone();
                self.stm_atomically(move |txn| {
                    let map = txn.read(&cell)?;
                    Ok(map.get(key.as_ref()).cloned())
                })
            }
        };
        found.map(move |entry| {
            let stats = &this.stats[idx];
            match entry {
                Some(e) if e.is_expired(now) => {
                    // Lazy expiry: report a miss; the janitor reclaims.
                    stats.expired_lazy.incr();
                    stats.misses.incr();
                    None
                }
                Some(e) => {
                    stats.hits.incr();
                    Some(e)
                }
                None => {
                    stats.misses.incr();
                    None
                }
            }
        })
    }

    /// Stores `entry` under `key`, unconditionally (stamping a fresh
    /// version).
    pub fn set(self: &Arc<Self>, key: Bytes, entry: Entry) -> ThreadM<()> {
        let this = Arc::clone(self);
        let idx = self.shard_of(&key);
        let mut entry = entry;
        entry.version = self.stamp();
        let stored = match &self.shards {
            Shards::Mutex(shards) => {
                let shard = &shards[idx];
                let map = Arc::clone(&shard.map);
                shard.gate.with_nbio(move || {
                    map.lock().insert(key.to_vec().into_boxed_slice(), entry);
                })
            }
            Shards::Stm(shards) => {
                let cell = shards[idx].cell.clone();
                self.stm_atomically(move |txn| {
                    let mut map = (*txn.read(&cell)?).clone();
                    map.insert(key.to_vec().into_boxed_slice(), entry.clone());
                    txn.write(&cell, Arc::new(map));
                    Ok(())
                })
            }
        };
        stored.map(move |()| this.stats[idx].sets.incr())
    }

    /// Removes `key`; true when something (even an expired entry) was
    /// removed.
    pub fn delete(self: &Arc<Self>, key: Bytes, now: Nanos) -> ThreadM<bool> {
        let this = Arc::clone(self);
        let idx = self.shard_of(&key);
        let removed = match &self.shards {
            Shards::Mutex(shards) => {
                let shard = &shards[idx];
                let map = Arc::clone(&shard.map);
                shard
                    .gate
                    .with_nbio(move || map.lock().remove(key.as_ref()))
            }
            Shards::Stm(shards) => {
                let cell = shards[idx].cell.clone();
                self.stm_atomically(move |txn| {
                    let map = txn.read(&cell)?;
                    if !map.contains_key(key.as_ref()) {
                        return Ok(None);
                    }
                    let mut map = (*map).clone();
                    let old = map.remove(key.as_ref());
                    txn.write(&cell, Arc::new(map));
                    Ok(old)
                })
            }
        };
        removed.map(move |old| match old {
            // Deleting an already-expired entry is a miss from the
            // client's point of view.
            Some(e) if e.is_expired(now) => {
                this.stats[idx].expired_lazy.incr();
                false
            }
            Some(_) => {
                this.stats[idx].deletes.incr();
                true
            }
            None => false,
        })
    }

    /// Stores `entry` only if no live (unexpired) entry exists under
    /// `key` — the `add` command. Returns `true` if stored.
    pub fn add(self: &Arc<Self>, key: Bytes, entry: Entry, now: Nanos) -> ThreadM<bool> {
        self.guarded_insert(key, entry, now, false)
    }

    /// Stores `entry` only if a live (unexpired) entry already exists
    /// under `key` — the `replace` command. Returns `true` if stored.
    pub fn replace(self: &Arc<Self>, key: Bytes, entry: Entry, now: Nanos) -> ThreadM<bool> {
        self.guarded_insert(key, entry, now, true)
    }

    /// `add` / `replace` share one occupancy-guarded insert; `want_occupied`
    /// selects which side of the guard stores.
    fn guarded_insert(
        self: &Arc<Self>,
        key: Bytes,
        entry: Entry,
        now: Nanos,
        want_occupied: bool,
    ) -> ThreadM<bool> {
        let this = Arc::clone(self);
        let idx = self.shard_of(&key);
        let mut entry = entry;
        entry.version = self.stamp();
        let stm_key = key.clone();
        let apply = move |map: &mut ShardMap| -> bool {
            let occupied = map.get(key.as_ref()).is_some_and(|e| !e.is_expired(now));
            if occupied != want_occupied {
                return false;
            }
            map.insert(key.to_vec().into_boxed_slice(), entry.clone());
            true
        };
        let stored = match &self.shards {
            Shards::Mutex(shards) => {
                let shard = &shards[idx];
                let map = Arc::clone(&shard.map);
                shard.gate.with_nbio(move || apply(&mut map.lock()))
            }
            Shards::Stm(shards) => {
                let cell = shards[idx].cell.clone();
                self.stm_atomically(move |txn| {
                    let snapshot = txn.read(&cell)?;
                    let occupied = snapshot
                        .get(stm_key.as_ref())
                        .is_some_and(|e| !e.is_expired(now));
                    if occupied != want_occupied {
                        return Ok(false); // read-only fast path: no COW
                    }
                    let mut map = (*snapshot).clone();
                    let stored = apply(&mut map);
                    txn.write(&cell, Arc::new(map));
                    Ok(stored)
                })
            }
        };
        stored.map(move |stored| {
            if stored {
                this.stats[idx].sets.incr();
            }
            stored
        })
    }

    /// Compare-and-swap: stores `entry` only if the live entry under `key`
    /// still carries version stamp `expected` (obtained via `gets`).
    pub fn cas(
        self: &Arc<Self>,
        key: Bytes,
        entry: Entry,
        expected: u64,
        now: Nanos,
    ) -> ThreadM<CasOutcome> {
        let this = Arc::clone(self);
        let idx = self.shard_of(&key);
        let mut entry = entry;
        entry.version = self.stamp();
        let stm_key = key.clone();
        let probe = move |map: &ShardMap| -> CasOutcome {
            match map.get(stm_key.as_ref()) {
                None => CasOutcome::NotFound,
                Some(e) if e.is_expired(now) => CasOutcome::NotFound,
                Some(e) if e.version != expected => CasOutcome::Exists,
                Some(_) => CasOutcome::Stored,
            }
        };
        // The probe captures only cheaply-clonable state, so the STM arm
        // can run it against the snapshot *before* paying the
        // copy-on-write.
        let stm_probe = probe.clone();
        let apply = move |map: &mut ShardMap| -> CasOutcome {
            let outcome = probe(map);
            if outcome == CasOutcome::Stored {
                map.insert(key.to_vec().into_boxed_slice(), entry.clone());
            }
            outcome
        };
        let result = match &self.shards {
            Shards::Mutex(shards) => {
                let shard = &shards[idx];
                let map = Arc::clone(&shard.map);
                shard.gate.with_nbio(move || apply(&mut map.lock()))
            }
            Shards::Stm(shards) => {
                let cell = shards[idx].cell.clone();
                self.stm_atomically(move |txn| {
                    let snapshot = txn.read(&cell)?;
                    // Read-only fast paths: only a matching stamp commits
                    // a write (and pays the copy-on-write); a stale or
                    // missing stamp is answered from the snapshot alone.
                    let outcome = stm_probe(&snapshot);
                    if outcome != CasOutcome::Stored {
                        return Ok(outcome);
                    }
                    let mut map = (*snapshot).clone();
                    let outcome = apply(&mut map);
                    txn.write(&cell, Arc::new(map));
                    Ok(outcome)
                })
            }
        };
        result.map(move |outcome| {
            let st = &this.stats[idx];
            match outcome {
                CasOutcome::Stored => {
                    st.cas_hits.incr();
                    st.sets.incr();
                }
                CasOutcome::Exists => st.cas_badval.incr(),
                CasOutcome::NotFound => st.cas_misses.incr(),
            }
            outcome
        })
    }

    /// Concatenates `data` onto the live entry at `key` — after it when
    /// `prepend` is false (`append`), before it otherwise. Per memcached,
    /// a miss (or expired entry) stores nothing and the surviving entry
    /// keeps its flags and deadline; the value is re-stamped on success.
    /// The combined length is capped at
    /// [`StoreConfig::max_value_bytes`].
    pub fn concat(
        self: &Arc<Self>,
        key: Bytes,
        data: Bytes,
        prepend: bool,
        now: Nanos,
    ) -> ThreadM<ConcatOutcome> {
        let this = Arc::clone(self);
        let idx = self.shard_of(&key);
        let version = self.stamp();
        let cap = self.cfg.max_value_bytes;
        let stm_key = key.clone();
        let stm_data = data.clone();
        let probe = move |map: &ShardMap| -> ConcatOutcome {
            match map.get(stm_key.as_ref()) {
                None => ConcatOutcome::Missing,
                Some(e) if e.is_expired(now) => ConcatOutcome::Missing,
                Some(e) if e.value.len() + stm_data.len() > cap => ConcatOutcome::TooLarge,
                Some(_) => ConcatOutcome::Stored,
            }
        };
        let stm_probe = probe.clone();
        let apply = move |map: &mut ShardMap| -> ConcatOutcome {
            let outcome = probe(map);
            if outcome == ConcatOutcome::Stored {
                let e = map.get_mut(key.as_ref()).expect("probed live");
                // Build the joined value exactly once, in a pooled
                // region: each input byte is copied a single time and
                // `freeze` hands the result over without another pass
                // (the old path built a `Vec` and then copied it whole
                // into a fresh `Bytes` allocation).
                let mut joined = BufferPool::global().acquire();
                joined.reserve(e.value.len() + data.len());
                if prepend {
                    joined.extend_from_slice(&data);
                    joined.extend_from_slice(&e.value);
                } else {
                    joined.extend_from_slice(&e.value);
                    joined.extend_from_slice(&data);
                }
                e.value = joined.freeze();
                e.version = version;
            }
            outcome
        };
        let result = match &self.shards {
            Shards::Mutex(shards) => {
                let shard = &shards[idx];
                let map = Arc::clone(&shard.map);
                shard.gate.with_nbio(move || apply(&mut map.lock()))
            }
            Shards::Stm(shards) => {
                let cell = shards[idx].cell.clone();
                self.stm_atomically(move |txn| {
                    let snapshot = txn.read(&cell)?;
                    // Read-only fast paths: only a live, in-cap entry pays
                    // the copy-on-write.
                    let outcome = stm_probe(&snapshot);
                    if outcome != ConcatOutcome::Stored {
                        return Ok(outcome);
                    }
                    let mut map = (*snapshot).clone();
                    let outcome = apply(&mut map);
                    txn.write(&cell, Arc::new(map));
                    Ok(outcome)
                })
            }
        };
        result.map(move |outcome| {
            if outcome == ConcatOutcome::Stored {
                if prepend {
                    this.stats[idx].prepends.incr();
                } else {
                    this.stats[idx].appends.incr();
                }
            }
            outcome
        })
    }

    /// Re-deadlines the live entry at `key` to `expires_at` without
    /// touching its value or flags — the `touch` command. The entry is
    /// re-stamped (one version per mutating op, the store-wide rule).
    /// Returns `true` when a live entry was touched.
    pub fn touch(
        self: &Arc<Self>,
        key: Bytes,
        expires_at: Option<Nanos>,
        now: Nanos,
    ) -> ThreadM<bool> {
        let this = Arc::clone(self);
        let idx = self.shard_of(&key);
        let version = self.stamp();
        let stm_key = key.clone();
        let apply = move |map: &mut ShardMap| -> bool {
            match map.get_mut(key.as_ref()) {
                Some(e) if !e.is_expired(now) => {
                    e.expires_at = expires_at;
                    e.version = version;
                    true
                }
                _ => false,
            }
        };
        let touched = match &self.shards {
            Shards::Mutex(shards) => {
                let shard = &shards[idx];
                let map = Arc::clone(&shard.map);
                shard.gate.with_nbio(move || apply(&mut map.lock()))
            }
            Shards::Stm(shards) => {
                let cell = shards[idx].cell.clone();
                self.stm_atomically(move |txn| {
                    let snapshot = txn.read(&cell)?;
                    let live = snapshot
                        .get(stm_key.as_ref())
                        .is_some_and(|e| !e.is_expired(now));
                    if !live {
                        return Ok(false); // read-only fast path: no COW
                    }
                    let mut map = (*snapshot).clone();
                    let touched = apply(&mut map);
                    txn.write(&cell, Arc::new(map));
                    Ok(touched)
                })
            }
        };
        touched.map(move |touched| {
            if touched {
                this.stats[idx].touches.incr();
            }
            touched
        })
    }

    /// Adds `delta` (or subtracts, saturating at zero, when `negative`) to
    /// the decimal integer stored at `key`.
    pub fn counter_op(
        self: &Arc<Self>,
        key: Bytes,
        delta: u64,
        negative: bool,
        now: Nanos,
    ) -> ThreadM<CounterResult> {
        let this = Arc::clone(self);
        let idx = self.shard_of(&key);
        let version = self.stamp();
        let stm_key = key.clone();
        let apply = move |map: &mut ShardMap| -> CounterResult {
            let Some(e) = map.get_mut(key.as_ref()) else {
                return CounterResult::NotFound;
            };
            if e.is_expired(now) {
                map.remove(key.as_ref());
                return CounterResult::NotFound;
            }
            let Some(cur) = std::str::from_utf8(&e.value)
                .ok()
                .and_then(|s| s.parse::<u64>().ok())
            else {
                return CounterResult::NotNumeric;
            };
            let next = if negative {
                cur.saturating_sub(delta)
            } else {
                cur.wrapping_add(delta)
            };
            e.value = Bytes::from(next.to_string());
            e.version = version;
            CounterResult::Ok(next)
        };
        let result = match &self.shards {
            Shards::Mutex(shards) => {
                let shard = &shards[idx];
                let map = Arc::clone(&shard.map);
                shard.gate.with_nbio(move || apply(&mut map.lock()))
            }
            Shards::Stm(shards) => {
                let cell = shards[idx].cell.clone();
                self.stm_atomically(move |txn| {
                    // Read-only fast paths: don't copy-on-write the
                    // whole shard when the outcome cannot be a
                    // committed write.
                    let snapshot = txn.read(&cell)?;
                    match snapshot.get(stm_key.as_ref()) {
                        None => return Ok(CounterResult::NotFound),
                        Some(e) if !e.is_expired(now) => {
                            let numeric = std::str::from_utf8(&e.value)
                                .ok()
                                .and_then(|s| s.parse::<u64>().ok())
                                .is_some();
                            if !numeric {
                                return Ok(CounterResult::NotNumeric);
                            }
                        }
                        // Expired: fall through to the write path so
                        // the removal commits.
                        Some(_) => {}
                    }
                    let mut map = (*snapshot).clone();
                    let res = apply(&mut map);
                    txn.write(&cell, Arc::new(map));
                    Ok(res)
                })
            }
        };
        result.map(move |res| {
            if matches!(res, CounterResult::Ok(_)) {
                this.stats[idx].counter_ops.incr();
            }
            res
        })
    }

    /// Drops every entry whose deadline is at or before `now` from shard
    /// `idx`; returns how many were reclaimed. One shard per call so the
    /// janitor yields between shards instead of stalling the scheduler.
    pub fn purge_shard(self: &Arc<Self>, idx: usize, now: Nanos) -> ThreadM<usize> {
        let this = Arc::clone(self);
        let purge = move |map: &mut ShardMap| {
            let before = map.len();
            map.retain(|_, e| !e.is_expired(now));
            before - map.len()
        };
        let purged = match &self.shards {
            Shards::Mutex(shards) => {
                let shard = &shards[idx];
                let map = Arc::clone(&shard.map);
                shard.gate.with_nbio(move || purge(&mut map.lock()))
            }
            Shards::Stm(shards) => {
                let cell = shards[idx].cell.clone();
                self.stm_atomically(move |txn| {
                    let snapshot = txn.read(&cell)?;
                    if !snapshot.values().any(|e| e.is_expired(now)) {
                        return Ok(0); // read-only fast path
                    }
                    let mut map = (*snapshot).clone();
                    let n = purge(&mut map);
                    txn.write(&cell, Arc::new(map));
                    Ok(n)
                })
            }
        };
        purged.map(move |n| {
            this.stats[idx].expired_purged.add(n as u64);
            n
        })
    }

    /// Total live entries (includes not-yet-purged expired entries).
    pub fn len_now(&self) -> usize {
        match &self.shards {
            Shards::Mutex(shards) => shards.iter().map(|s| s.map.lock().len()).sum(),
            Shards::Stm(shards) => shards.iter().map(|s| s.cell.read_now().len()).sum(),
        }
    }

    /// Convenience: monadic multi-step `set` from protocol fields.
    pub fn set_from_protocol(
        self: &Arc<Self>,
        key: Bytes,
        flags: u32,
        exptime: u64,
        value: Bytes,
    ) -> ThreadM<()> {
        let this = Arc::clone(self);
        do_m! {
            let now <- eveth_core::syscall::sys_time();
            this.set(
                key,
                Entry {
                    value,
                    flags,
                    expires_at: ShardedStore::deadline(now, exptime),
                    version: 0,
                },
            )
        }
    }
}

impl fmt::Debug for ShardedStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ShardedStore(backend={:?}, shards={}, entries={})",
            self.cfg.backend,
            self.shard_count(),
            self.len_now()
        )
    }
}

/// FNV-1a, the shard hash (stable across runs for determinism).
pub fn fnv1a(data: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use eveth_core::runtime::Runtime;

    fn store(backend: Backend) -> Arc<ShardedStore> {
        ShardedStore::new(StoreConfig {
            shards: 4,
            backend,
            ..Default::default()
        })
    }

    fn entry(v: &str) -> Entry {
        Entry {
            value: Bytes::from(v.to_string()),
            flags: 0,
            expires_at: None,
            version: 0,
        }
    }

    #[test]
    fn set_get_delete_roundtrip_both_backends() {
        for backend in [Backend::Mutex, Backend::Stm] {
            let rt = Runtime::builder().workers(2).build();
            let s = store(backend);
            let k = Bytes::from_static(b"alpha");
            let s2 = Arc::clone(&s);
            let k2 = k.clone();
            let got = rt.block_on(do_m! {
                s2.set(k2.clone(), entry("v1"));
                s2.get(k2, 0)
            });
            assert_eq!(got.unwrap().value, Bytes::from_static(b"v1"), "{backend:?}");

            let s3 = Arc::clone(&s);
            let deleted = rt.block_on(s3.delete(k.clone(), 0));
            assert!(deleted, "{backend:?}");
            let s4 = Arc::clone(&s);
            assert!(rt.block_on(s4.get(k, 0)).is_none(), "{backend:?}");
            rt.shutdown();
        }
    }

    #[test]
    fn expiry_is_lazy_on_get_and_eager_on_purge() {
        for backend in [Backend::Mutex, Backend::Stm] {
            let rt = Runtime::builder().workers(1).build();
            let s = store(backend);
            let k = Bytes::from_static(b"ttl");
            let e = Entry {
                expires_at: Some(100),
                ..entry("soon")
            };
            let s2 = Arc::clone(&s);
            let k2 = k.clone();
            rt.block_on(s2.set(k2, e));
            let s3 = Arc::clone(&s);
            assert!(rt.block_on(s3.get(k.clone(), 50)).is_some(), "{backend:?}");
            let s4 = Arc::clone(&s);
            assert!(rt.block_on(s4.get(k.clone(), 100)).is_none(), "{backend:?}");
            // Entry still occupies memory until purged.
            assert_eq!(s.len_now(), 1, "{backend:?}");
            let idx = s.shard_of(&k);
            let s5 = Arc::clone(&s);
            let purged = rt.block_on(s5.purge_shard(idx, 100));
            assert_eq!(purged, 1, "{backend:?}");
            assert_eq!(s.len_now(), 0, "{backend:?}");
            rt.shutdown();
        }
    }

    #[test]
    fn counters_increment_decrement_and_reject_non_numeric() {
        for backend in [Backend::Mutex, Backend::Stm] {
            let rt = Runtime::builder().workers(1).build();
            let s = store(backend);
            let k = Bytes::from_static(b"n");
            let s2 = Arc::clone(&s);
            let k2 = k.clone();
            rt.block_on(s2.set(k2, entry("10")));
            let s3 = Arc::clone(&s);
            let k3 = k.clone();
            assert_eq!(
                rt.block_on(s3.counter_op(k3, 5, false, 0)),
                CounterResult::Ok(15)
            );
            let s4 = Arc::clone(&s);
            let k4 = k.clone();
            assert_eq!(
                rt.block_on(s4.counter_op(k4, 100, true, 0)),
                CounterResult::Ok(0),
                "decr floors at zero"
            );
            let s5 = Arc::clone(&s);
            assert_eq!(
                rt.block_on(s5.counter_op(Bytes::from_static(b"absent"), 1, false, 0)),
                CounterResult::NotFound
            );
            let s6 = Arc::clone(&s);
            let k6 = k.clone();
            rt.block_on(s6.set(k6, entry("pear")));
            let s7 = Arc::clone(&s);
            assert_eq!(
                rt.block_on(s7.counter_op(k, 1, false, 0)),
                CounterResult::NotNumeric
            );
            rt.shutdown();
        }
    }

    #[test]
    fn add_replace_respect_occupancy_both_backends() {
        for backend in [Backend::Mutex, Backend::Stm] {
            let rt = Runtime::builder().workers(1).build();
            let s = store(backend);
            let k = Bytes::from_static(b"g");
            // replace on a missing key fails; add succeeds.
            let s1 = Arc::clone(&s);
            assert!(
                !rt.block_on(s1.replace(k.clone(), entry("r"), 0)),
                "{backend:?}"
            );
            let s2 = Arc::clone(&s);
            assert!(rt.block_on(s2.add(k.clone(), entry("a"), 0)), "{backend:?}");
            // add on a live key fails; replace succeeds.
            let s3 = Arc::clone(&s);
            assert!(
                !rt.block_on(s3.add(k.clone(), entry("a2"), 0)),
                "{backend:?}"
            );
            let s4 = Arc::clone(&s);
            assert!(
                rt.block_on(s4.replace(k.clone(), entry("r2"), 0)),
                "{backend:?}"
            );
            let s5 = Arc::clone(&s);
            let got = rt.block_on(s5.get(k.clone(), 0)).unwrap();
            assert_eq!(got.value, Bytes::from_static(b"r2"), "{backend:?}");
            // An expired entry counts as absent: add over it succeeds.
            let s6 = Arc::clone(&s);
            let e = Entry {
                expires_at: Some(10),
                ..entry("ttl")
            };
            rt.block_on(s6.set(k.clone(), e));
            let s7 = Arc::clone(&s);
            assert!(
                rt.block_on(s7.add(k.clone(), entry("fresh"), 10)),
                "{backend:?}"
            );
            rt.shutdown();
        }
    }

    #[test]
    fn cas_stores_only_on_matching_stamp() {
        for backend in [Backend::Mutex, Backend::Stm] {
            let rt = Runtime::builder().workers(1).build();
            let s = store(backend);
            let k = Bytes::from_static(b"c");
            let s1 = Arc::clone(&s);
            assert_eq!(
                rt.block_on(s1.cas(k.clone(), entry("x"), 1, 0)),
                CasOutcome::NotFound,
                "{backend:?}"
            );
            let s2 = Arc::clone(&s);
            rt.block_on(s2.set(k.clone(), entry("v1")));
            let s3 = Arc::clone(&s);
            let stamp = rt.block_on(s3.get(k.clone(), 0)).unwrap().version;
            // Matching stamp stores and re-stamps...
            let s4 = Arc::clone(&s);
            assert_eq!(
                rt.block_on(s4.cas(k.clone(), entry("v2"), stamp, 0)),
                CasOutcome::Stored,
                "{backend:?}"
            );
            // ...so the old stamp is now stale.
            let s5 = Arc::clone(&s);
            assert_eq!(
                rt.block_on(s5.cas(k.clone(), entry("v3"), stamp, 0)),
                CasOutcome::Exists,
                "{backend:?}"
            );
            let s6 = Arc::clone(&s);
            let e = rt.block_on(s6.get(k.clone(), 0)).unwrap();
            assert_eq!(e.value, Bytes::from_static(b"v2"), "{backend:?}");
            assert_ne!(e.version, stamp, "{backend:?}: version must advance");
            let snap = crate::stats::StatsSnapshot::gather(s.shard_stats());
            assert_eq!(
                (snap.cas_hits, snap.cas_badval, snap.cas_misses),
                (1, 1, 1),
                "{backend:?}"
            );
            rt.shutdown();
        }
    }

    #[test]
    fn keys_spread_across_shards() {
        let s = store(Backend::Mutex);
        let mut seen = std::collections::HashSet::new();
        for i in 0..64 {
            seen.insert(s.shard_of(format!("key{i}").as_bytes()));
        }
        assert!(seen.len() > 1, "64 keys must hit more than one of 4 shards");
    }

    #[test]
    fn deadline_zero_means_never() {
        assert_eq!(ShardedStore::deadline(5, 0), None);
        assert_eq!(ShardedStore::deadline(5, 2), Some(5 + 2 * SECS));
    }
}
