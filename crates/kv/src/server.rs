//! The KV server: one monadic thread per connection over an injected
//! [`NetStack`].
//!
//! Mirrors the shape of `eveth_http::server::WebServer` — the paper's
//! architecture applied to a second protocol: per-client code is written
//! as a straight-line monadic thread (read → parse → execute → respond,
//! looping), the application as a whole is event-driven underneath, and
//! the socket layer is the paper's one-line [`NetStack`] switch, so the
//! same server runs over simulated kernel sockets or the application-level
//! TCP stack without any code change.
//!
//! Pipelining falls out of the incremental parser: every complete command
//! already buffered is executed and its replies are coalesced into a
//! single `send`, so a client that ships N commands per round trip gets N
//! replies per round trip.

use std::fmt;
use std::sync::Arc;

use bytes::Bytes;
use eveth_core::event::Signal;
use eveth_core::net::{send_all, session_input, Conn, Listener, NetStack, SessionInput};
use eveth_core::syscall::{sys_catch, sys_fork, sys_nbio, sys_throw, sys_time};
use eveth_core::time::{Nanos, MILLIS};
use eveth_core::{do_m, loop_m, Exception, Loop, ThreadM};

use crate::expiry::janitor;
use crate::protocol::{Command, CommandParser, ProtoError, Reply};
use crate::stats::{ServerStats, StatsSnapshot};
use crate::store::{CasOutcome, CounterResult, Entry, ShardedStore, StoreConfig};

/// KV server tunables.
#[derive(Debug, Clone)]
pub struct KvConfig {
    /// Listening port.
    pub port: u16,
    /// Store layout and backend.
    pub store: StoreConfig,
    /// Socket receive granularity.
    pub recv_chunk: usize,
    /// Janitor wake interval (one shard swept per wake); `0` disables the
    /// janitor (lazy expiry still applies).
    pub janitor_interval: Nanos,
    /// Reap a connection that stays silent this long between requests
    /// (virtual nanoseconds); `0` disables idle reaping. Implemented as a
    /// `timeout_evt` branch of the per-session `choose` — no helper
    /// thread, no polling.
    pub idle_timeout: Nanos,
}

impl Default for KvConfig {
    fn default() -> Self {
        KvConfig {
            port: 11211,
            store: StoreConfig::default(),
            recv_chunk: 16 * 1024,
            janitor_interval: 100 * MILLIS,
            idle_timeout: 0,
        }
    }
}

/// The KV server: all state shared by its monadic threads.
pub struct KvServer {
    stack: Arc<dyn NetStack>,
    store: Arc<ShardedStore>,
    cfg: KvConfig,
    stats: Arc<ServerStats>,
    shutdown: Signal,
}

impl KvServer {
    /// Builds a server on a socket stack.
    pub fn new(stack: Arc<dyn NetStack>, cfg: KvConfig) -> Arc<Self> {
        Arc::new(KvServer {
            stack,
            store: ShardedStore::new(cfg.store.clone()),
            cfg,
            stats: Arc::new(ServerStats::default()),
            shutdown: Signal::new(),
        })
    }

    /// Initiates graceful shutdown (callable from any context): the
    /// listener stops accepting and every session's `choose` sees the
    /// broadcast on its next wait, closing the connection.
    pub fn shutdown(&self) {
        self.shutdown.fire();
    }

    /// The shutdown broadcast (for composing with other events).
    pub fn shutdown_signal(&self) -> &Signal {
        &self.shutdown
    }

    /// Aggregate server counters.
    pub fn stats(&self) -> &Arc<ServerStats> {
        &self.stats
    }

    /// The underlying store (exposed for tests and benches).
    pub fn store(&self) -> &Arc<ShardedStore> {
        &self.store
    }

    /// A point-in-time aggregate of the per-shard counters.
    pub fn store_snapshot(&self) -> StatsSnapshot {
        StatsSnapshot::gather(self.store.shard_stats())
    }

    /// The main server thread: listen, spawn the janitor, accept, fork one
    /// monadic thread per client session.
    ///
    /// Runs until the listener fails; spawn it with `Runtime::spawn` /
    /// `SimRuntime::spawn`.
    pub fn run(self: &Arc<Self>) -> ThreadM<()> {
        let srv = Arc::clone(self);
        do_m! {
            let listener <- srv.stack.listen(srv.cfg.port);
            let listener = match listener {
                Ok(l) => l,
                Err(e) => return sys_throw(Exception::with_payload("kv listen failed", e)),
            };
            let sig = srv.shutdown.clone();
            let gate = Arc::clone(&listener);
            // Shutdown supervisor: an ordinary monadic thread syncs on the
            // broadcast, then closes the listener so the accept loop
            // drains out; sessions observe the same broadcast in their own
            // `choose` and close themselves.
            sys_fork(do_m! {
                sig.wait();
                sys_nbio(move || gate.shutdown())
            });
            let _ = if srv.cfg.janitor_interval > 0 {
                // The janitor is an ordinary monadic thread on the same
                // scheduler, woken by the timer wheel.
                return do_m! {
                    sys_fork(janitor(
                        Arc::clone(&srv.store),
                        srv.cfg.janitor_interval,
                        Some(Arc::clone(&srv.stats.janitor_sweeps)),
                    ));
                    accept_loop(srv, listener)
                };
            };
            accept_loop(srv, listener)
        }
    }
}

impl fmt::Debug for KvServer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "KvServer(port={}, store={:?})",
            self.cfg.port, self.store
        )
    }
}

fn accept_loop(srv: Arc<KvServer>, listener: Arc<dyn Listener>) -> ThreadM<()> {
    loop_m((), move |()| {
        let srv = Arc::clone(&srv);
        listener.accept().bind(move |accepted| match accepted {
            Err(_) => ThreadM::pure(Loop::Break(())),
            Ok(conn) => {
                srv.stats.connections.incr();
                let session = client_session(Arc::clone(&srv), Arc::clone(&conn));
                // An exception ends the session, never the server.
                let guarded = sys_catch(session, move |_e| {
                    srv.stats.session_errors.incr();
                    conn.close()
                });
                sys_fork(guarded).map(|_| Loop::Continue(()))
            }
        })
    })
}

/// Everything one execution batch produced: coalesced reply bytes and
/// whether the client asked to quit.
struct BatchOutcome {
    replies: Vec<u8>,
    quit: bool,
}

/// One client session: receive, drain every buffered command, reply once.
///
/// The wait point is [`session_input`] — one `choose` over socket
/// readiness, the idle-connection deadline and the shutdown broadcast.
fn client_session(srv: Arc<KvServer>, conn: Arc<dyn Conn>) -> ThreadM<()> {
    // The parser rejects a declared `set` payload over the store's cap
    // before buffering it, so a hostile byte count cannot balloon memory.
    let parser = CommandParser::with_limits(8 * 1024, srv.cfg.store.max_value_bytes);
    loop_m(parser, move |parser| {
        let srv = Arc::clone(&srv);
        let conn = Arc::clone(&conn);
        session_input(
            &conn,
            srv.cfg.recv_chunk,
            srv.cfg.idle_timeout,
            &srv.shutdown,
        )
        .bind(move |input| {
            let chunk = match input {
                SessionInput::Data(Ok(c)) => c,
                SessionInput::Data(Err(_)) => return ThreadM::pure(Loop::Break(())),
                SessionInput::IdleTimeout => {
                    // The stalled connection is reaped; live sessions are
                    // untouched (each races its own deadline).
                    srv.stats.idle_reaped.incr();
                    return conn.close().map(|_| Loop::Break(()));
                }
                SessionInput::Shutdown => {
                    return conn.close().map(|_| Loop::Break(()));
                }
            };
            if chunk.is_empty() {
                return conn.close().map(|_| Loop::Break(()));
            }
            srv.stats.bytes_in.add(chunk.len() as u64);
            let conn2 = Arc::clone(&conn);
            let srv2 = Arc::clone(&srv);
            do_m! {
                let outcome <- run_batch(Arc::clone(&srv), parser, chunk);
                let (parser, outcome) = match outcome {
                    Ok(v) => v,
                    Err(flush) => {
                        // Protocol error: flush what we have + the error
                        // line, then close.
                        return do_m! {
                            send_all(&conn2, Bytes::from(flush));
                            conn2.close();
                            ThreadM::pure(Loop::Break(()))
                        };
                    }
                };
                let n = outcome.replies.len() as u64;
                let sent <- if outcome.replies.is_empty() {
                    ThreadM::pure(Ok(()))
                } else {
                    send_all(&conn2, Bytes::from(outcome.replies))
                };
                match sent {
                    Err(_) => ThreadM::pure(Loop::Break(())),
                    Ok(()) => {
                        srv2.stats.bytes_out.add(n);
                        if outcome.quit {
                            conn2.close().map(|_| Loop::Break(()))
                        } else {
                            ThreadM::pure(Loop::Continue(parser))
                        }
                    }
                }
            }
        })
    })
}

/// Feeds `chunk`, executes every command that completes, and coalesces
/// replies. `Err` carries bytes to flush before closing on a protocol
/// error.
fn run_batch(
    srv: Arc<KvServer>,
    mut parser: CommandParser,
    chunk: Bytes,
) -> ThreadM<Result<(CommandParser, BatchOutcome), Vec<u8>>> {
    // First drain on the fed chunk, then on the remainder, monadically so
    // each command's store access can block (shard mutex / STM retry)
    // without holding anything else up.
    let first = parser.feed(&chunk);
    step_batch(
        srv,
        parser,
        first,
        BatchOutcome {
            replies: Vec::new(),
            quit: false,
        },
    )
}

fn step_batch(
    srv: Arc<KvServer>,
    parser: CommandParser,
    parsed: Result<Option<Command>, ProtoError>,
    mut acc: BatchOutcome,
) -> ThreadM<Result<(CommandParser, BatchOutcome), Vec<u8>>> {
    match parsed {
        Err(e) => {
            srv.stats.protocol_errors.incr();
            let reply = if matches!(e, ProtoError::Malformed("unknown command")) {
                Reply::Error
            } else {
                Reply::ClientError(e.reason())
            };
            reply.encode_into(&mut acc.replies);
            ThreadM::pure(Err(acc.replies))
        }
        Ok(None) => ThreadM::pure(Ok((parser, acc))),
        Ok(Some(cmd)) => {
            srv.stats.commands.incr();
            if cmd == Command::Quit {
                acc.quit = true;
                return ThreadM::pure(Ok((parser, acc)));
            }
            let suppress = cmd.noreply();
            let srv2 = Arc::clone(&srv);
            execute(Arc::clone(&srv), cmd).bind(move |replies| {
                let mut parser = parser;
                if !suppress {
                    for r in &replies {
                        r.encode_into(&mut acc.replies);
                    }
                }
                let next = parser.feed(&[]);
                step_batch(srv2, parser, next, acc)
            })
        }
    }
}

/// Multi-key lookup shared by `get` (plain `VALUE` lines) and `gets`
/// (`VALUE` lines carrying the cas-unique version stamp).
fn lookup_reply(srv: Arc<KvServer>, keys: Vec<Bytes>, with_cas: bool) -> ThreadM<Vec<Reply>> {
    let store = Arc::clone(&srv.store);
    let keys = Arc::new(keys);
    do_m! {
        let now <- sys_time();
        eveth_core::map_m(keys.len(), move |i| {
            let store = Arc::clone(&store);
            let key = keys[i].clone();
            let key2 = key.clone();
            store.get(key, now).map(move |found| {
                found.map(|e| {
                    if with_cas {
                        Reply::ValueCas {
                            key: key2,
                            flags: e.flags,
                            data: e.value,
                            cas: e.version,
                        }
                    } else {
                        Reply::Value {
                            key: key2,
                            flags: e.flags,
                            data: e.value,
                        }
                    }
                })
            })
        })
        .map(|found: Vec<Option<Reply>>| {
            let mut replies: Vec<Reply> = found.into_iter().flatten().collect();
            replies.push(Reply::End);
            replies
        })
    }
}

/// Builds the store entry for a storage command's fields at time `now`.
fn proto_entry(now: Nanos, flags: u32, exptime: u64, value: Bytes) -> Entry {
    Entry {
        value,
        flags,
        expires_at: ShardedStore::deadline(now, exptime),
        version: 0, // stamped by the store
    }
}

/// Executes one command against the store.
fn execute(srv: Arc<KvServer>, cmd: Command) -> ThreadM<Vec<Reply>> {
    match cmd {
        Command::Get { keys } => lookup_reply(srv, keys, false),
        Command::Gets { keys } => lookup_reply(srv, keys, true),
        Command::Set {
            key,
            flags,
            exptime,
            value,
            ..
        } => {
            if value.len() > srv.store.config().max_value_bytes {
                return ThreadM::pure(vec![Reply::ClientError("value too large")]);
            }
            srv.store
                .set_from_protocol(key, flags, exptime, value)
                .map(|()| vec![Reply::Stored])
        }
        Command::Add {
            key,
            flags,
            exptime,
            value,
            ..
        } => guarded_store_reply(srv, key, flags, exptime, value, false),
        Command::Replace {
            key,
            flags,
            exptime,
            value,
            ..
        } => guarded_store_reply(srv, key, flags, exptime, value, true),
        Command::Cas {
            key,
            flags,
            exptime,
            value,
            cas_unique,
            ..
        } => {
            if value.len() > srv.store.config().max_value_bytes {
                return ThreadM::pure(vec![Reply::ClientError("value too large")]);
            }
            let store = Arc::clone(&srv.store);
            do_m! {
                let now <- sys_time();
                store
                    .cas(key, proto_entry(now, flags, exptime, value), cas_unique, now)
                    .map(|outcome| {
                        vec![match outcome {
                            CasOutcome::Stored => Reply::Stored,
                            CasOutcome::Exists => Reply::Exists,
                            CasOutcome::NotFound => Reply::NotFound,
                        }]
                    })
            }
        }
        Command::Delete { key, .. } => {
            let store = Arc::clone(&srv.store);
            do_m! {
                let now <- sys_time();
                store.delete(key, now).map(|removed| {
                    vec![if removed { Reply::Deleted } else { Reply::NotFound }]
                })
            }
        }
        Command::Incr { key, delta, .. } => counter_reply(srv, key, delta, false),
        Command::Decr { key, delta, .. } => counter_reply(srv, key, delta, true),
        Command::Stats => {
            let snap = srv.store_snapshot();
            let mut replies = vec![
                Reply::Stat(
                    "connections".into(),
                    srv.stats.connections.get().to_string(),
                ),
                Reply::Stat("commands".into(), srv.stats.commands.get().to_string()),
                Reply::Stat("bytes_in".into(), srv.stats.bytes_in.get().to_string()),
                Reply::Stat("bytes_out".into(), srv.stats.bytes_out.get().to_string()),
                Reply::Stat("get_hits".into(), snap.hits.to_string()),
                Reply::Stat("get_misses".into(), snap.misses.to_string()),
                Reply::Stat("sets".into(), snap.sets.to_string()),
                Reply::Stat("deletes".into(), snap.deletes.to_string()),
                Reply::Stat("cas_hits".into(), snap.cas_hits.to_string()),
                Reply::Stat("cas_badval".into(), snap.cas_badval.to_string()),
                Reply::Stat("cas_misses".into(), snap.cas_misses.to_string()),
                Reply::Stat("expired_lazy".into(), snap.expired_lazy.to_string()),
                Reply::Stat("expired_purged".into(), snap.expired_purged.to_string()),
                Reply::Stat(
                    "janitor_sweeps".into(),
                    srv.stats.janitor_sweeps.get().to_string(),
                ),
                Reply::Stat(
                    "idle_reaped".into(),
                    srv.stats.idle_reaped.get().to_string(),
                ),
                Reply::Stat("curr_items".into(), srv.store.len_now().to_string()),
                Reply::Stat("shards".into(), srv.store.shard_count().to_string()),
            ];
            for (i, sh) in srv.store.shard_stats().iter().enumerate() {
                replies.push(Reply::Stat(
                    format!("shard{i}_hits"),
                    sh.hits.get().to_string(),
                ));
                replies.push(Reply::Stat(
                    format!("shard{i}_misses"),
                    sh.misses.get().to_string(),
                ));
            }
            replies.push(Reply::End);
            ThreadM::pure(replies)
        }
        Command::Version => ThreadM::pure(vec![Reply::Version(env!("CARGO_PKG_VERSION"))]),
        Command::Quit => ThreadM::pure(Vec::new()),
    }
}

/// `add` / `replace`: the occupancy-guarded stores.
fn guarded_store_reply(
    srv: Arc<KvServer>,
    key: Bytes,
    flags: u32,
    exptime: u64,
    value: Bytes,
    want_occupied: bool,
) -> ThreadM<Vec<Reply>> {
    if value.len() > srv.store.config().max_value_bytes {
        return ThreadM::pure(vec![Reply::ClientError("value too large")]);
    }
    let store = Arc::clone(&srv.store);
    do_m! {
        let now <- sys_time();
        let entry = proto_entry(now, flags, exptime, value);
        let stored <- if want_occupied {
            store.replace(key, entry, now)
        } else {
            store.add(key, entry, now)
        };
        ThreadM::pure(vec![if stored { Reply::Stored } else { Reply::NotStored }])
    }
}

fn counter_reply(
    srv: Arc<KvServer>,
    key: Bytes,
    delta: u64,
    negative: bool,
) -> ThreadM<Vec<Reply>> {
    let store = Arc::clone(&srv.store);
    do_m! {
        let now <- sys_time();
        store.counter_op(key, delta, negative, now).map(|res| {
            vec![match res {
                CounterResult::Ok(v) => Reply::Number(v),
                CounterResult::NotFound => Reply::NotFound,
                CounterResult::NotNumeric => {
                    Reply::ClientError("cannot increment or decrement non-numeric value")
                }
            }]
        })
    }
}
