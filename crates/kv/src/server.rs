//! The KV server: a thin [`Service`] implementation over the generic
//! event-native [`Server`] of `eveth_core::service`.
//!
//! Mirrors the shape of `eveth_http::server::WebServer` — the paper's
//! architecture applied to a second protocol. The framework owns the
//! lifecycle (listening, the accept/shutdown `choose`, the per-session
//! readiness/idle/shutdown `choose`, connection tracking and graceful
//! drain); this module owns only what is KV-specific: the incremental
//! command parser as per-session state, batch execution against the
//! sharded store, and the janitor thread. The socket layer is the paper's
//! one-line [`NetStack`] switch, so the same server runs over simulated
//! kernel sockets or the application-level TCP stack without any code
//! change.
//!
//! Pipelining falls out of the incremental parser: every complete command
//! already buffered is executed and its replies are coalesced into a
//! single `send`, so a client that ships N commands per round trip gets N
//! replies per round trip.

use std::fmt;
use std::sync::Arc;

use bytes::Bytes;
use eveth_core::event::Signal;
use eveth_core::net::{
    send_all_vectored, send_all_within_vectored, Conn, NetError, NetStack, SendInput,
};
use eveth_core::service::{
    Server, ServerConfig, ServerStats as FrameworkStats, Service, SessionEnd, Step,
};
use eveth_core::syscall::{sys_fork, sys_time};
use eveth_core::telemetry::Telemetry;
use eveth_core::time::{Nanos, MILLIS};
use eveth_core::{do_m, Exception, ThreadM};

use crate::expiry::janitor_until;
use crate::protocol::{Command, CommandParser, ProtoError, Reply, ReplyQueue};
use crate::stats::{ServerStats, StatsSnapshot};
use crate::store::{CasOutcome, ConcatOutcome, CounterResult, Entry, ShardedStore, StoreConfig};

/// KV server tunables.
#[derive(Debug, Clone)]
pub struct KvConfig {
    /// Listening port.
    pub port: u16,
    /// Store layout and backend.
    pub store: StoreConfig,
    /// Socket receive granularity.
    pub recv_chunk: usize,
    /// Janitor wake interval (one shard swept per wake); `0` disables the
    /// janitor (lazy expiry still applies).
    pub janitor_interval: Nanos,
    /// Reap a connection that stays silent this long between requests
    /// (virtual nanoseconds); `0` disables idle reaping. Implemented as a
    /// `timeout_evt` branch of the per-session `choose` — no helper
    /// thread, no polling.
    pub idle_timeout: Nanos,
    /// Abandon a reply send that cannot complete within this long
    /// (virtual nanoseconds); `0` keeps plain unbounded sends. Bounded
    /// sends go through `send_all_within`, racing the transfer against
    /// the deadline and the shutdown broadcast; occurrences are counted
    /// in the framework's `send_timeouts` and the session closes.
    pub send_timeout: Nanos,
}

impl Default for KvConfig {
    fn default() -> Self {
        KvConfig {
            port: 11211,
            store: StoreConfig::default(),
            recv_chunk: 16 * 1024,
            janitor_interval: 100 * MILLIS,
            idle_timeout: 0,
            send_timeout: 0,
        }
    }
}

/// Lifecycle pieces the framework hands down once via
/// [`Service::attach_lifecycle`], kept for the reply paths: a bounded
/// send needs the shutdown broadcast to race against, and counts its
/// timeouts into the framework's stats.
struct Lifecycle {
    shutdown: Signal,
    send_timeout: Nanos,
    framework: Arc<FrameworkStats>,
}

/// The KV-specific state shared by every session thread (the store, the
/// protocol counters, the configuration). Split out of [`KvServer`] so the
/// [`Service`] implementation and the batch-execution free functions can
/// hold it without the server wrapper.
struct KvShared {
    store: Arc<ShardedStore>,
    cfg: KvConfig,
    stats: Arc<ServerStats>,
    lifecycle: std::sync::OnceLock<Lifecycle>,
}

impl KvShared {
    fn store_snapshot(&self) -> StatsSnapshot {
        StatsSnapshot::gather(self.store.shard_stats())
    }

    /// Sends a batch's reply segments with one vectored gather-write,
    /// bounded by [`KvConfig::send_timeout`] when one is configured: a
    /// transfer that cannot complete in time (a zero-window peer) or that
    /// straddles shutdown is abandoned and surfaced as a transport
    /// error — the session closes instead of wedging its thread on an
    /// unbounded send.
    fn send_reply_v(
        &self,
        conn: &Arc<dyn Conn>,
        bufs: Vec<Bytes>,
    ) -> ThreadM<Result<(), NetError>> {
        match self.lifecycle.get() {
            Some(lc) if lc.send_timeout > 0 => {
                let framework = Arc::clone(&lc.framework);
                send_all_within_vectored(conn, bufs, lc.send_timeout, &lc.shutdown).map(
                    move |out| match out {
                        SendInput::Done(r) => r,
                        SendInput::Timeout => {
                            framework.send_timeouts.incr();
                            Err(NetError::Timeout)
                        }
                        SendInput::Shutdown => Err(NetError::Closed),
                    },
                )
            }
            _ => send_all_vectored(conn, bufs),
        }
    }
}

/// The memcached-protocol [`Service`]: per-session state is the
/// incremental [`CommandParser`]; each chunk is parsed, executed as a
/// batch against the sharded store, and answered with one coalesced send.
/// Everything else — accepting, idle reaping, shutdown, draining — is the
/// framework's ([`Server`]).
pub struct KvService {
    shared: Arc<KvShared>,
}

impl Service for KvService {
    type Session = CommandParser;

    fn open(&self, _conn: &Arc<dyn Conn>) -> CommandParser {
        self.shared.stats.connections.incr();
        // The parser rejects a declared `set` payload over the store's cap
        // before buffering it, so a hostile byte count cannot balloon
        // memory.
        CommandParser::with_limits(8 * 1024, self.shared.cfg.store.max_value_bytes)
    }

    fn on_chunk(
        &self,
        conn: Arc<dyn Conn>,
        parser: CommandParser,
        chunk: Bytes,
    ) -> ThreadM<Step<CommandParser>> {
        let shared = Arc::clone(&self.shared);
        shared.stats.bytes_in.add(chunk.len() as u64);
        let out_stats = Arc::clone(&shared.stats);
        let replier = Arc::clone(&self.shared);
        do_m! {
            let outcome <- run_batch(shared, parser, chunk);
            let (parser, outcome) = match outcome {
                Ok(v) => v,
                Err(flush) => {
                    // Protocol error: flush what we have + the error line,
                    // then end the session (the server closes the conn).
                    return replier.send_reply_v(&conn, flush).map(|_| Step::Close);
                }
            };
            let mut outcome = outcome;
            let n = outcome.queue.len() as u64;
            let segs = outcome.queue.finish();
            let sent <- if segs.is_empty() {
                ThreadM::pure(Ok(()))
            } else {
                replier.send_reply_v(&conn, segs)
            };
            match sent {
                Err(_) => ThreadM::pure(Step::Close),
                Ok(()) => {
                    out_stats.bytes_out.add(n);
                    if outcome.quit {
                        ThreadM::pure(Step::Close)
                    } else {
                        ThreadM::pure(Step::Continue(parser))
                    }
                }
            }
        }
    }

    fn on_end(&self, end: &SessionEnd) {
        if matches!(end, SessionEnd::Idle) {
            // The stalled connection was reaped; live sessions are
            // untouched (each races its own deadline).
            self.shared.stats.idle_reaped.incr();
        }
    }

    fn on_exception(&self, conn: Arc<dyn Conn>, _error: &Exception) -> ThreadM<()> {
        self.shared.stats.session_errors.incr();
        conn.close()
    }

    fn attach_lifecycle(&self, shutdown: &Signal, cfg: &ServerConfig, stats: &Arc<FrameworkStats>) {
        let _ = self.shared.lifecycle.set(Lifecycle {
            shutdown: shutdown.clone(),
            send_timeout: cfg.send_timeout,
            framework: Arc::clone(stats),
        });
    }
}

impl fmt::Debug for KvService {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "KvService(store={:?})", self.shared.store)
    }
}

/// The KV server: [`KvService`] hosted on the generic event-native
/// [`Server`], plus the janitor thread.
pub struct KvServer {
    server: Arc<Server<KvService>>,
    shared: Arc<KvShared>,
}

impl KvServer {
    /// Builds a server on a socket stack.
    pub fn new(stack: Arc<dyn NetStack>, cfg: KvConfig) -> Arc<Self> {
        let shared = Arc::new(KvShared {
            store: ShardedStore::new(cfg.store.clone()),
            stats: Arc::new(ServerStats::default()),
            cfg: cfg.clone(),
            lifecycle: std::sync::OnceLock::new(),
        });
        let server = Server::new(
            stack,
            KvService {
                shared: Arc::clone(&shared),
            },
            ServerConfig {
                port: cfg.port,
                recv_chunk: cfg.recv_chunk,
                idle_timeout: cfg.idle_timeout,
                send_timeout: cfg.send_timeout,
            },
        );
        Arc::new(KvServer { server, shared })
    }

    /// Attaches a telemetry hub: session threads are annotated with the
    /// span name `"kv"` (so their I/O and lock waits roll up into the
    /// framework's `session_*_wait_ns` counters at exit), the framework's
    /// lifecycle counters register as `eveth_server_*{service="kv"}`, and
    /// the KV protocol, per-shard and store contention counters register
    /// as `eveth_kv_*` / `eveth_stm_*`. Call before spawning
    /// [`KvServer::run`].
    pub fn attach_telemetry(&self, telemetry: &Arc<Telemetry>) {
        self.server.attach_telemetry(telemetry, "kv");
        let reg = telemetry.registry();
        let s = &self.shared.stats;
        reg.register_counter("eveth_kv_connections_total", &[], &s.connections);
        reg.register_counter("eveth_kv_commands_total", &[], &s.commands);
        reg.register_counter("eveth_kv_bytes_in_total", &[], &s.bytes_in);
        reg.register_counter("eveth_kv_bytes_out_total", &[], &s.bytes_out);
        reg.register_counter("eveth_kv_protocol_errors_total", &[], &s.protocol_errors);
        reg.register_counter("eveth_kv_janitor_sweeps_total", &[], &s.janitor_sweeps);
        for (i, sh) in self.shared.store.shard_stats().iter().enumerate() {
            let shard = i.to_string();
            let labels: &[(&str, &str)] = &[("shard", shard.as_str())];
            reg.register_counter("eveth_kv_shard_hits_total", labels, &sh.hits);
            reg.register_counter("eveth_kv_shard_misses_total", labels, &sh.misses);
            reg.register_counter("eveth_kv_shard_sets_total", labels, &sh.sets);
        }
        // Foreign counters (the store's lock gates, the STM transaction
        // stats) are polled at exposition time rather than rewritten onto
        // registry handles.
        let store = Arc::clone(&self.shared.store);
        reg.register_counter_fn("eveth_kv_store_lock_wait_ns_total", &[], move || {
            store.lock_wait_ns()
        });
        let store = Arc::clone(&self.shared.store);
        reg.register_counter_fn("eveth_kv_store_lock_contentions_total", &[], move || {
            store.lock_contentions()
        });
        self.shared
            .store
            .stm_stats()
            .register_into(reg, &[("store", "kv")]);
    }

    /// Initiates graceful shutdown (callable from any context): the
    /// acceptor's `choose` closes the listener — no supervisor thread —
    /// and every session's `choose` sees the broadcast on its next wait,
    /// closing the connection.
    pub fn shutdown(&self) {
        self.server.shutdown();
    }

    /// The shutdown broadcast (for composing with other events).
    pub fn shutdown_signal(&self) -> &Signal {
        self.server.shutdown_signal()
    }

    /// Fires once shutdown has been requested and the last session ended
    /// (the framework's graceful-drain barrier).
    pub fn drained_signal(&self) -> &Signal {
        self.server.drained_signal()
    }

    /// The generic server hosting this service (lifecycle counters,
    /// active-session count).
    pub fn server(&self) -> &Arc<Server<KvService>> {
        &self.server
    }

    /// Aggregate server counters.
    pub fn stats(&self) -> &Arc<ServerStats> {
        &self.shared.stats
    }

    /// The underlying store (exposed for tests and benches).
    pub fn store(&self) -> &Arc<ShardedStore> {
        &self.shared.store
    }

    /// A point-in-time aggregate of the per-shard counters.
    pub fn store_snapshot(&self) -> StatsSnapshot {
        self.shared.store_snapshot()
    }

    /// The main server thread: spawn the janitor, then run the framework
    /// server (listen + accept fan-out + session lifecycle).
    ///
    /// Runs until the listener closes; spawn it with `Runtime::spawn` /
    /// `SimRuntime::spawn`.
    pub fn run(self: &Arc<Self>) -> ThreadM<()> {
        if self.shared.cfg.janitor_interval > 0 {
            // The janitor is an ordinary monadic thread on the same
            // scheduler, woken by the timer wheel. It watches the
            // server's shutdown broadcast, so it also exits if `listen`
            // fails (the framework fires the broadcast on that path) or
            // after a graceful drain — no immortal timer client is left
            // behind.
            let sweep = janitor_until(
                Arc::clone(&self.shared.store),
                self.shared.cfg.janitor_interval,
                Some(Arc::clone(&self.shared.stats.janitor_sweeps)),
                self.server.shutdown_signal().clone(),
            );
            let server = Arc::clone(&self.server);
            do_m! {
                sys_fork(sweep);
                server.run()
            }
        } else {
            self.server.run()
        }
    }
}

impl fmt::Debug for KvServer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "KvServer(port={}, store={:?})",
            self.shared.cfg.port, self.shared.store
        )
    }
}

/// Everything one execution batch produced: the gathered reply segments
/// (value payloads alias store entries; everything else lives in one
/// pooled scratch region) and whether the client asked to quit.
struct BatchOutcome {
    queue: ReplyQueue,
    quit: bool,
}

/// Feeds `chunk`, executes every command that completes, and coalesces
/// replies into one gather list for a single vectored send. `Err`
/// carries segments to flush before closing on a protocol error.
///
/// The chunk is handed to the parser by ownership ([`CommandParser::
/// feed_bytes`]) so commands that arrive whole are parsed in place —
/// zero copies between the socket recv and the store. One timestamp is
/// taken for the whole batch: every command in a pipelined burst shares
/// the instant the bytes were drained, which is both cheaper (no
/// per-command `sys_time` continuation) and a more honest arrival time.
fn run_batch(
    srv: Arc<KvShared>,
    mut parser: CommandParser,
    chunk: Bytes,
) -> ThreadM<Result<(CommandParser, BatchOutcome), Vec<Bytes>>> {
    sys_time().bind(move |now| {
        // First drain on the fed chunk, then on the remainder,
        // monadically so each command's store access can block (shard
        // mutex / STM retry) without holding anything else up.
        let first = parser.feed_bytes(chunk);
        step_batch(
            srv,
            parser,
            now,
            first,
            BatchOutcome {
                queue: ReplyQueue::new(),
                quit: false,
            },
        )
    })
}

fn step_batch(
    srv: Arc<KvShared>,
    parser: CommandParser,
    now: Nanos,
    parsed: Result<Option<Command>, ProtoError>,
    mut acc: BatchOutcome,
) -> ThreadM<Result<(CommandParser, BatchOutcome), Vec<Bytes>>> {
    match parsed {
        Err(e) => {
            srv.stats.protocol_errors.incr();
            let reply = if matches!(e, ProtoError::Malformed("unknown command")) {
                Reply::Error
            } else {
                Reply::ClientError(e.reason())
            };
            reply.encode_gather(&mut acc.queue);
            ThreadM::pure(Err(acc.queue.finish()))
        }
        Ok(None) => ThreadM::pure(Ok((parser, acc))),
        Ok(Some(cmd)) => {
            srv.stats.commands.incr();
            if cmd == Command::Quit {
                acc.quit = true;
                return ThreadM::pure(Ok((parser, acc)));
            }
            let suppress = cmd.noreply();
            let srv2 = Arc::clone(&srv);
            execute(Arc::clone(&srv), cmd, now).bind(move |replies| {
                let mut parser = parser;
                if !suppress {
                    for r in &replies {
                        r.encode_gather(&mut acc.queue);
                    }
                }
                let next = parser.try_next();
                step_batch(srv2, parser, now, next, acc)
            })
        }
    }
}

/// Builds a `VALUE` reply whose data segment is the store entry's own
/// refcounted window — no byte of the value is copied between the store
/// and the socket's gather list.
fn value_reply(key: Bytes, e: Entry, with_cas: bool) -> Reply {
    if with_cas {
        Reply::ValueCas {
            key,
            flags: e.flags,
            data: e.value,
            cas: e.version,
        }
    } else {
        Reply::Value {
            key,
            flags: e.flags,
            data: e.value,
        }
    }
}

/// Multi-key lookup shared by `get` (plain `VALUE` lines) and `gets`
/// (`VALUE` lines carrying the cas-unique version stamp).
fn lookup_reply(
    srv: Arc<KvShared>,
    keys: Vec<Bytes>,
    with_cas: bool,
    now: Nanos,
) -> ThreadM<Vec<Reply>> {
    let store = Arc::clone(&srv.store);
    // Single-key gets dominate real traffic; skip the shared key list
    // and `map_m`'s per-element continuation plumbing for that shape.
    if keys.len() == 1 {
        let key = keys.into_iter().next().expect("one key");
        let key2 = key.clone();
        return store.get(key, now).map(move |found| {
            let mut replies = Vec::with_capacity(2);
            if let Some(e) = found {
                replies.push(value_reply(key2, e, with_cas));
            }
            replies.push(Reply::End);
            replies
        });
    }
    let keys = Arc::new(keys);
    eveth_core::map_m(keys.len(), move |i| {
        let store = Arc::clone(&store);
        let key = keys[i].clone();
        let key2 = key.clone();
        store
            .get(key, now)
            .map(move |found| found.map(|e| value_reply(key2, e, with_cas)))
    })
    .map(|found: Vec<Option<Reply>>| {
        let mut replies: Vec<Reply> = found.into_iter().flatten().collect();
        replies.push(Reply::End);
        replies
    })
}

/// Builds the store entry for a storage command's fields at time `now`.
///
/// The payload is [`Bytes::compact`]ed on the way in: a value parsed out
/// of a recv chunk is a window into that chunk, and storing the window
/// as-is would pin the whole chunk (and its slab region) for the
/// entry's lifetime. Compaction copies exactly the value bytes once —
/// the single copy a set fundamentally requires — and releases the
/// chunk as soon as the batch drains.
fn proto_entry(now: Nanos, flags: u32, exptime: u64, value: Bytes) -> Entry {
    Entry {
        value: value.compact(),
        flags,
        expires_at: ShardedStore::deadline(now, exptime),
        version: 0, // stamped by the store
    }
}

/// Executes one command against the store at batch timestamp `now`.
fn execute(srv: Arc<KvShared>, cmd: Command, now: Nanos) -> ThreadM<Vec<Reply>> {
    match cmd {
        Command::Get { keys } => lookup_reply(srv, keys, false, now),
        Command::Gets { keys } => lookup_reply(srv, keys, true, now),
        Command::Set {
            key,
            flags,
            exptime,
            value,
            ..
        } => {
            if value.len() > srv.store.config().max_value_bytes {
                return ThreadM::pure(vec![Reply::ClientError("value too large")]);
            }
            srv.store
                .set(key, proto_entry(now, flags, exptime, value))
                .map(|()| vec![Reply::Stored])
        }
        Command::Add {
            key,
            flags,
            exptime,
            value,
            ..
        } => guarded_store_reply(srv, key, flags, exptime, value, false, now),
        Command::Replace {
            key,
            flags,
            exptime,
            value,
            ..
        } => guarded_store_reply(srv, key, flags, exptime, value, true, now),
        Command::Cas {
            key,
            flags,
            exptime,
            value,
            cas_unique,
            ..
        } => {
            if value.len() > srv.store.config().max_value_bytes {
                return ThreadM::pure(vec![Reply::ClientError("value too large")]);
            }
            srv.store
                .cas(
                    key,
                    proto_entry(now, flags, exptime, value),
                    cas_unique,
                    now,
                )
                .map(|outcome| {
                    vec![match outcome {
                        CasOutcome::Stored => Reply::Stored,
                        CasOutcome::Exists => Reply::Exists,
                        CasOutcome::NotFound => Reply::NotFound,
                    }]
                })
        }
        Command::Append { key, value, .. } => concat_reply(srv, key, value, false, now),
        Command::Prepend { key, value, .. } => concat_reply(srv, key, value, true, now),
        Command::Touch { key, exptime, .. } => srv
            .store
            .touch(key, ShardedStore::deadline(now, exptime), now)
            .map(|touched| {
                vec![if touched {
                    Reply::Touched
                } else {
                    Reply::NotFound
                }]
            }),
        Command::Delete { key, .. } => srv.store.delete(key, now).map(|removed| {
            vec![if removed {
                Reply::Deleted
            } else {
                Reply::NotFound
            }]
        }),
        Command::Incr { key, delta, .. } => counter_reply(srv, key, delta, false, now),
        Command::Decr { key, delta, .. } => counter_reply(srv, key, delta, true, now),
        Command::Stats => {
            let snap = srv.store_snapshot();
            let mut replies = vec![
                Reply::Stat(
                    "connections".into(),
                    srv.stats.connections.get().to_string(),
                ),
                Reply::Stat("commands".into(), srv.stats.commands.get().to_string()),
                Reply::Stat("bytes_in".into(), srv.stats.bytes_in.get().to_string()),
                Reply::Stat("bytes_out".into(), srv.stats.bytes_out.get().to_string()),
                Reply::Stat("get_hits".into(), snap.hits.to_string()),
                Reply::Stat("get_misses".into(), snap.misses.to_string()),
                Reply::Stat("sets".into(), snap.sets.to_string()),
                Reply::Stat("deletes".into(), snap.deletes.to_string()),
                Reply::Stat("appends".into(), snap.appends.to_string()),
                Reply::Stat("prepends".into(), snap.prepends.to_string()),
                Reply::Stat("touches".into(), snap.touches.to_string()),
                Reply::Stat("cas_hits".into(), snap.cas_hits.to_string()),
                Reply::Stat("cas_badval".into(), snap.cas_badval.to_string()),
                Reply::Stat("cas_misses".into(), snap.cas_misses.to_string()),
                Reply::Stat("expired_lazy".into(), snap.expired_lazy.to_string()),
                Reply::Stat("expired_purged".into(), snap.expired_purged.to_string()),
                Reply::Stat(
                    "janitor_sweeps".into(),
                    srv.stats.janitor_sweeps.get().to_string(),
                ),
                Reply::Stat(
                    "idle_reaped".into(),
                    srv.stats.idle_reaped.get().to_string(),
                ),
                Reply::Stat("curr_items".into(), srv.store.len_now().to_string()),
                Reply::Stat("shards".into(), srv.store.shard_count().to_string()),
                Reply::Stat("lock_wait_ns".into(), srv.store.lock_wait_ns().to_string()),
                Reply::Stat("stm_retries".into(), srv.store.stm_retries().to_string()),
            ];
            // Wait attribution rolled up from session spans by the
            // framework (zero until a telemetry hub is attached — the
            // per-span data comes from the runtime's park/wake hooks).
            if let Some(lc) = srv.lifecycle.get() {
                replies.push(Reply::Stat(
                    "session_io_wait_ns".into(),
                    lc.framework.session_io_wait_ns.get().to_string(),
                ));
                replies.push(Reply::Stat(
                    "session_lock_wait_ns".into(),
                    lc.framework.session_lock_wait_ns.get().to_string(),
                ));
                replies.push(Reply::Stat(
                    "send_timeouts".into(),
                    lc.framework.send_timeouts.get().to_string(),
                ));
            }
            for (i, sh) in srv.store.shard_stats().iter().enumerate() {
                replies.push(Reply::Stat(
                    format!("shard{i}_hits"),
                    sh.hits.get().to_string(),
                ));
                replies.push(Reply::Stat(
                    format!("shard{i}_misses"),
                    sh.misses.get().to_string(),
                ));
            }
            replies.push(Reply::End);
            ThreadM::pure(replies)
        }
        Command::Version => ThreadM::pure(vec![Reply::Version(env!("CARGO_PKG_VERSION"))]),
        Command::Quit => ThreadM::pure(Vec::new()),
    }
}

/// `add` / `replace`: the occupancy-guarded stores.
fn guarded_store_reply(
    srv: Arc<KvShared>,
    key: Bytes,
    flags: u32,
    exptime: u64,
    value: Bytes,
    want_occupied: bool,
    now: Nanos,
) -> ThreadM<Vec<Reply>> {
    if value.len() > srv.store.config().max_value_bytes {
        return ThreadM::pure(vec![Reply::ClientError("value too large")]);
    }
    let store = Arc::clone(&srv.store);
    let entry = proto_entry(now, flags, exptime, value);
    let stored = if want_occupied {
        store.replace(key, entry, now)
    } else {
        store.add(key, entry, now)
    };
    stored.map(|stored| {
        vec![if stored {
            Reply::Stored
        } else {
            Reply::NotStored
        }]
    })
}

/// `append` / `prepend`: concatenation onto an existing live value.
fn concat_reply(
    srv: Arc<KvShared>,
    key: Bytes,
    value: Bytes,
    prepend: bool,
    now: Nanos,
) -> ThreadM<Vec<Reply>> {
    if value.len() > srv.store.config().max_value_bytes {
        return ThreadM::pure(vec![Reply::ClientError("value too large")]);
    }
    srv.store.concat(key, value, prepend, now).map(|outcome| {
        vec![match outcome {
            ConcatOutcome::Stored => Reply::Stored,
            ConcatOutcome::Missing => Reply::NotStored,
            ConcatOutcome::TooLarge => Reply::ClientError("value too large"),
        }]
    })
}

fn counter_reply(
    srv: Arc<KvShared>,
    key: Bytes,
    delta: u64,
    negative: bool,
    now: Nanos,
) -> ThreadM<Vec<Reply>> {
    srv.store.counter_op(key, delta, negative, now).map(|res| {
        vec![match res {
            CounterResult::Ok(v) => Reply::Number(v),
            CounterResult::NotFound => Reply::NotFound,
            CounterResult::NotNumeric => {
                Reply::ClientError("cannot increment or decrement non-numeric value")
            }
        }]
    })
}
