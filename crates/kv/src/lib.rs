//! # eveth-kv — a sharded, memcached-style key-value service
//!
//! The repository's second network service over the hybrid
//! events-and-threads runtime, demonstrating that the paper's model
//! generalizes beyond the §5.2 web server: per-client code is a
//! straight-line monadic thread, the application is event-driven
//! underneath, and the socket layer is injected through
//! [`NetStack`](eveth_core::net::NetStack) — the paper's one-line switch
//! between simulated kernel sockets and the application-level TCP stack.
//!
//! * [`protocol`] — incremental, pipelining-friendly parser for the
//!   memcached text protocol (`get`/`set`/`delete`/`incr`/`decr`/`stats`,
//!   `noreply`), with zero-copy payload slicing, plus reply encoding and a
//!   client-side reply parser;
//! * [`store`] — the sharded store: keys hash onto N shards, each guarded
//!   by a monadic [`Mutex`](eveth_core::sync::Mutex) *or* an
//!   [`eveth_stm::TVar`] transaction, selected by
//!   [`StoreConfig::backend`](store::StoreConfig);
//! * [`expiry`] — TTL reclamation: lazy on reads, plus a janitor thread
//!   woken by the runtime timer wheel;
//! * [`stats`] — per-shard and aggregate counters (the `stats` command);
//! * [`server`] — the server itself: a thin `Service` on the generic
//!   event-native `Server<S>` of `eveth_core::service`, one monadic thread per
//!   connection, pipelined execution with coalesced replies;
//! * [`client`] — the reusable wire client (connect, pipelined
//!   request/response, typed errors) shared by the loadgen and the
//!   cluster router, plus [`client::ReplyFramer`] for
//!   byte-exact forwarding;
//! * [`loadgen`] — monadic client threads issuing pipelined get/set mixes
//!   over zipfian keys.
//!
//! ## Quickstart
//!
//! ```
//! use eveth_core::net::{Endpoint, HostId, NetStack};
//! use eveth_kv::loadgen::{client_thread, KvLoadConfig, KvLoadStats};
//! use eveth_kv::server::{KvConfig, KvServer};
//! use eveth_simos::sockets::{FabricParams, SocketFabric};
//! use eveth_simos::SimRuntime;
//! use std::sync::Arc;
//!
//! let sim = SimRuntime::new_default();
//! let fabric = SocketFabric::new(sim.clock(), FabricParams::default());
//!
//! let server = KvServer::new(fabric.stack(HostId(1)), KvConfig::default());
//! sim.spawn(server.run());
//!
//! let cfg = Arc::new(KvLoadConfig {
//!     server: Endpoint::new(HostId(1), 11211),
//!     batches_per_conn: 4,
//!     pipeline_depth: 4,
//!     set_percent: 50,
//!     ..Default::default()
//! });
//! let stats = Arc::new(KvLoadStats::default());
//! // `block_on` (not `run`): the server's janitor re-arms the timer wheel
//! // forever, so the simulation never goes quiescent on its own.
//! sim.block_on(client_thread(
//!     fabric.stack(HostId(2)),
//!     Arc::clone(&cfg),
//!     Arc::clone(&stats),
//!     0,
//! ))
//! .unwrap();
//! assert_eq!(stats.clients_done.get(), 1);
//! assert_eq!(stats.responses(), 16, "4 batches x 4 pipelined commands");
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod client;
pub mod expiry;
pub mod loadgen;
pub mod protocol;
pub mod server;
pub mod stats;
pub mod store;

pub use client::{KvClient, KvClientError, ReplyFramer};
pub use protocol::{Command, CommandParser, ProtoError, Reply, ReplyParser};
pub use server::{KvConfig, KvServer};
pub use stats::{ServerStats, StatsSnapshot};
pub use store::{Backend, Entry, ShardedStore, StoreConfig};
