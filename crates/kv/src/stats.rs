//! Per-shard and aggregate server counters, surfaced by the `stats`
//! command and by the benchmarks.
//!
//! The counter and latency-recorder types live in
//! `eveth_core::telemetry::metrics` since the telemetry fabric landed —
//! the same handles a [`Registry`](eveth_core::telemetry::metrics::Registry)
//! exposes over `/metrics` — and are re-exported here so every existing
//! `crate::stats::Counter` user (shards, the janitor, the load
//! generator) keeps compiling unchanged.

use std::fmt;

pub use eveth_core::telemetry::metrics::{Counter, LatencyHistogram};

/// Counters kept independently per shard (no cross-shard contention).
#[derive(Debug, Default)]
pub struct ShardStats {
    /// `get` lookups that found a live entry.
    pub hits: Counter,
    /// `get` lookups that found nothing (or an expired entry).
    pub misses: Counter,
    /// Successful `set`s.
    pub sets: Counter,
    /// Successful `delete`s.
    pub deletes: Counter,
    /// Successful `incr`/`decr`s.
    pub counter_ops: Counter,
    /// `append`s that concatenated onto a live entry.
    pub appends: Counter,
    /// `prepend`s that concatenated onto a live entry.
    pub prepends: Counter,
    /// `touch`es that re-deadlined a live entry.
    pub touches: Counter,
    /// `cas` operations that stored (stamp matched).
    pub cas_hits: Counter,
    /// `cas` operations rejected because the entry changed (`EXISTS`).
    pub cas_badval: Counter,
    /// `cas` operations on a missing/expired key (`NOT_FOUND`).
    pub cas_misses: Counter,
    /// Expired entries detected lazily by reads.
    pub expired_lazy: Counter,
    /// Expired entries reclaimed by the janitor.
    pub expired_purged: Counter,
}

/// Aggregate, server-wide counters.
#[derive(Debug, Default)]
pub struct ServerStats {
    /// Connections accepted.
    pub connections: Counter,
    /// Commands executed (all kinds).
    pub commands: Counter,
    /// Request bytes received.
    pub bytes_in: Counter,
    /// Response bytes written.
    pub bytes_out: Counter,
    /// Protocol errors answered with `CLIENT_ERROR`/`ERROR`.
    pub protocol_errors: Counter,
    /// Sessions terminated by an exception.
    pub session_errors: Counter,
    /// Connections reaped by the per-session idle deadline (the
    /// `timeout_evt` branch of the session's `choose` won).
    pub idle_reaped: Counter,
    /// Janitor sweeps completed (whole-store passes; shared with the
    /// janitor thread, which increments it).
    pub janitor_sweeps: std::sync::Arc<Counter>,
}

/// A point-in-time aggregate view across shards, for `stats` output and
/// benchmark tables.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Sum of shard hits.
    pub hits: u64,
    /// Sum of shard misses.
    pub misses: u64,
    /// Sum of shard sets.
    pub sets: u64,
    /// Sum of shard deletes.
    pub deletes: u64,
    /// Sum of shard counter ops.
    pub counter_ops: u64,
    /// Sum of shard appends.
    pub appends: u64,
    /// Sum of shard prepends.
    pub prepends: u64,
    /// Sum of shard touches.
    pub touches: u64,
    /// Sum of stored `cas` ops.
    pub cas_hits: u64,
    /// Sum of `cas` ops rejected with `EXISTS`.
    pub cas_badval: u64,
    /// Sum of `cas` ops on missing keys.
    pub cas_misses: u64,
    /// Sum of lazily-detected expiries.
    pub expired_lazy: u64,
    /// Sum of janitor-reclaimed expiries.
    pub expired_purged: u64,
}

impl StatsSnapshot {
    /// Aggregates shard counters.
    pub fn gather(shards: &[ShardStats]) -> StatsSnapshot {
        let mut s = StatsSnapshot::default();
        for sh in shards {
            s.hits += sh.hits.get();
            s.misses += sh.misses.get();
            s.sets += sh.sets.get();
            s.deletes += sh.deletes.get();
            s.counter_ops += sh.counter_ops.get();
            s.appends += sh.appends.get();
            s.prepends += sh.prepends.get();
            s.touches += sh.touches.get();
            s.cas_hits += sh.cas_hits.get();
            s.cas_badval += sh.cas_badval.get();
            s.cas_misses += sh.cas_misses.get();
            s.expired_lazy += sh.expired_lazy.get();
            s.expired_purged += sh.expired_purged.get();
        }
        s
    }

    /// Hit ratio over all `get`s (1.0 when there were none).
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            1.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

impl fmt::Display for StatsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "hits={} misses={} sets={} deletes={} counter_ops={} expired={}+{}",
            self.hits,
            self.misses,
            self.sets,
            self.deletes,
            self.counter_ops,
            self.expired_lazy,
            self.expired_purged
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gather_sums_across_shards() {
        let shards: Vec<ShardStats> = (0..3).map(|_| ShardStats::default()).collect();
        shards[0].hits.add(2);
        shards[1].hits.incr();
        shards[2].misses.incr();
        shards[1].sets.add(7);
        let s = StatsSnapshot::gather(&shards);
        assert_eq!(s.hits, 3);
        assert_eq!(s.misses, 1);
        assert_eq!(s.sets, 7);
        assert!((s.hit_ratio() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn hit_ratio_of_idle_store_is_one() {
        assert_eq!(StatsSnapshot::default().hit_ratio(), 1.0);
    }

    #[test]
    fn latency_percentiles_are_exact_nearest_rank() {
        // 100 known samples 1..=100 ns: nearest-rank percentiles are the
        // sample at the ceil(p * n / 100)th position.
        let h = LatencyHistogram::new();
        for v in (1..=100u64).rev() {
            h.record(v);
        }
        assert_eq!(h.len(), 100);
        assert_eq!(h.p50(), 50);
        assert_eq!(h.p95(), 95);
        assert_eq!(h.p99(), 99);
        assert_eq!(h.percentile(100.0), 100);
        assert_eq!(h.percentile(1.0), 1);
        assert_eq!(h.max(), 100);
    }

    #[test]
    fn latency_percentiles_on_small_sets_and_empty() {
        let h = LatencyHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.p50(), 0);
        for v in [10u64, 20, 30] {
            h.record(v);
        }
        // n = 3: p50 → rank ceil(1.5) = 2 → 20; p95/p99 → rank 3 → 30.
        assert_eq!(h.p50(), 20);
        assert_eq!(h.p95(), 30);
        assert_eq!(h.p99(), 30);
        assert!(h.p99() >= h.p50());
    }
}
