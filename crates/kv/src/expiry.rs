//! TTL reclamation driven off the runtime timer wheel.
//!
//! Reads already treat stale entries as misses ([lazy expiry], see
//! `store`); the janitor is the eager half: a plain monadic thread that
//! sleeps on the runtime's timer (`sys_sleep`, backed by the timer wheel
//! on the real runtime and the event heap under simulation) and sweeps
//! one shard per wakeup, so a large store never stalls the scheduler for
//! a full pass.
//!
//! [lazy expiry]: crate::store::ShardedStore::get

use std::sync::Arc;

use eveth_core::event::{choose, sync, timeout_evt, Signal};
use eveth_core::syscall::sys_time;
use eveth_core::time::Nanos;
use eveth_core::{do_m, loop_m, Loop, ThreadM};

use crate::stats::Counter;
use crate::store::ShardedStore;

/// Runs forever: every `interval` nanoseconds, purge the next shard
/// (round-robin). Spawn with `Runtime::spawn` / `SimRuntime::spawn`;
/// `sweeps` (when provided) counts completed whole-store passes.
///
/// [`janitor_until`] is the stoppable form; this one never returns.
pub fn janitor(
    store: Arc<ShardedStore>,
    interval: Nanos,
    sweeps: Option<Arc<Counter>>,
) -> ThreadM<()> {
    janitor_until(store, interval, sweeps, Signal::new())
}

/// Like [`janitor`], but each wake is a `choose` between the sweep timer
/// and `stop` — the thread exits as soon as the signal fires, so a
/// drained server does not leave an immortal timer-wheel client behind.
/// The server wires its shutdown broadcast in here.
pub fn janitor_until(
    store: Arc<ShardedStore>,
    interval: Nanos,
    sweeps: Option<Arc<Counter>>,
    stop: Signal,
) -> ThreadM<()> {
    let shards = store.shard_count();
    loop_m(0usize, move |idx| {
        let store = Arc::clone(&store);
        let sweeps = sweeps.clone();
        let stop = stop.clone();
        do_m! {
            let stopped <- sync(choose(vec![
                stop.wait_evt().wrap(|()| true),
                timeout_evt(interval).wrap(|()| false),
            ]));
            let _ = if stopped {
                return ThreadM::pure(Loop::Break(()));
            };
            let now <- sys_time();
            store.purge_shard(idx, now);
            let _ = if idx + 1 == shards {
                if let Some(s) = &sweeps {
                    s.incr();
                }
            };
            ThreadM::pure(Loop::Continue((idx + 1) % shards))
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::{Backend, Entry, StoreConfig};
    use bytes::Bytes;
    use eveth_core::time::MILLIS;

    #[test]
    fn janitor_reclaims_expired_entries_in_virtual_time() {
        for backend in [Backend::Mutex, Backend::Stm] {
            let sim = eveth_simos::SimRuntime::new_default();
            let store = ShardedStore::new(StoreConfig {
                shards: 4,
                backend,
                ..Default::default()
            });
            // 32 entries expiring at t=1ms, none ever read again.
            let st = Arc::clone(&store);
            sim.block_on(eveth_core::for_each_m(0..32u32, move |i| {
                let st = Arc::clone(&st);
                st.set(
                    Bytes::from(format!("k{i}")),
                    Entry {
                        value: Bytes::from_static(b"v"),
                        flags: 0,
                        expires_at: Some(MILLIS),
                        version: 0,
                    },
                )
            }))
            .unwrap();
            assert_eq!(store.len_now(), 32, "{backend:?}");

            let sweeps = Arc::new(Counter::default());
            sim.spawn(janitor(
                Arc::clone(&store),
                MILLIS,
                Some(Arc::clone(&sweeps)),
            ));
            // Run the simulation long enough for a full round-robin pass
            // after the deadline.
            sim.run_until(Some(10 * MILLIS));
            assert_eq!(store.len_now(), 0, "{backend:?}: janitor must reclaim");
            assert!(sweeps.get() >= 1, "{backend:?}: at least one full sweep");
            let purged: u64 = store
                .shard_stats()
                .iter()
                .map(|s| s.expired_purged.get())
                .sum();
            assert_eq!(purged, 32, "{backend:?}");
        }
    }
}
