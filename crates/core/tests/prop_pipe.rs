//! Property tests: the FIFO pipe preserves the byte stream under arbitrary
//! interleavings of partial reads and writes — the invariant the Figure 18
//! benchmark rests on.

use bytes::Bytes;
use eveth_core::io::pipe::{pipe, PipeError};
use eveth_core::runtime::Runtime;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Model-based: a sequence of try_write/try_read ops matches a plain
    /// VecDeque reference model byte-for-byte.
    #[test]
    fn nonblocking_ops_match_reference_model(
        cap in 1usize..64,
        ops in proptest::collection::vec(
            prop_oneof![
                (1usize..100).prop_map(|n| (true, n)),   // write n bytes
                (1usize..100).prop_map(|n| (false, n)),  // read up to n
            ],
            1..200
        )
    ) {
        let (w, r) = pipe(cap);
        let mut model: std::collections::VecDeque<u8> = Default::default();
        let mut next_byte: u8 = 0;
        for (is_write, n) in ops {
            if is_write {
                let data: Vec<u8> = (0..n).map(|i| next_byte.wrapping_add(i as u8)).collect();
                match w.try_write(&data) {
                    Ok(accepted) => {
                        prop_assert!(accepted <= data.len());
                        prop_assert_eq!(accepted, data.len().min(cap - model.len()),
                            "must accept exactly the free space");
                        model.extend(&data[..accepted]);
                        next_byte = next_byte.wrapping_add(accepted as u8);
                    }
                    Err(PipeError::WouldBlock) => prop_assert_eq!(model.len(), cap),
                    Err(e) => prop_assert!(false, "unexpected {e:?}"),
                }
            } else {
                match r.try_read(n) {
                    Ok(bytes) => {
                        prop_assert!(!bytes.is_empty(), "EOF impossible while writer lives");
                        let expect: Vec<u8> = model.drain(..bytes.len()).collect();
                        prop_assert_eq!(&bytes[..], &expect[..], "FIFO order violated");
                    }
                    Err(PipeError::WouldBlock) => prop_assert!(model.is_empty()),
                    Err(e) => prop_assert!(false, "unexpected {e:?}"),
                }
            }
        }
    }

    /// End-to-end through the real runtime: whatever chunk sizes the
    /// writer and reader use, the reader sees exactly the written stream.
    #[test]
    fn monadic_transfer_preserves_stream(
        cap in 1usize..32,
        len in 1usize..2048,
        seed in any::<u64>()
    ) {
        let payload: Vec<u8> = (0..len).map(|i| (seed as usize + i) as u8).collect();
        let expected = payload.clone();
        let rt = Runtime::builder().workers(2).build();
        let (w, r) = pipe(cap);
        let data = Bytes::from(payload);
        rt.spawn(eveth_core::do_m! {
            let res <- w.write_all_m(data);
            eveth_core::syscall::sys_nbio(move || res.expect("write side"))
        });
        let got = rt.block_on(eveth_core::do_m! {
            let d <- r.read_exact_m(len);
            eveth_core::ThreadM::pure(d.expect("read side"))
        });
        rt.shutdown();
        prop_assert_eq!(&got[..], &expected[..]);
    }
}
