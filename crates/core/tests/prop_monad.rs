//! Property tests for the CPS monad: observational monad laws and
//! structural invariants over randomly generated programs.

use eveth_core::local::run_local;
use eveth_core::syscall::{sys_catch, sys_nbio, sys_throw, sys_yield};
use eveth_core::{loop_m, Loop, ThreadM};
use proptest::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A small program AST we can both run monadically and interpret
/// directly, to compare results.
#[derive(Debug, Clone)]
enum Prog {
    Pure(i64),
    AddEffect(i64, Box<Prog>),
    Yield(Box<Prog>),
    Throw(String),
    Catch(Box<Prog>, Box<Prog>),
}

fn arb_prog() -> impl Strategy<Value = Prog> {
    let leaf = prop_oneof![
        any::<i64>().prop_map(Prog::Pure),
        "[a-z]{1,8}".prop_map(Prog::Throw),
    ];
    leaf.prop_recursive(6, 64, 4, |inner| {
        prop_oneof![
            (any::<i64>(), inner.clone()).prop_map(|(n, p)| Prog::AddEffect(n, Box::new(p))),
            inner.clone().prop_map(|p| Prog::Yield(Box::new(p))),
            (inner.clone(), inner).prop_map(|(a, b)| Prog::Catch(Box::new(a), Box::new(b))),
        ]
    })
}

/// Reference semantics: (result or error message, sum of effects run).
fn reference(p: &Prog, effects: &mut i64) -> Result<i64, String> {
    match p {
        Prog::Pure(v) => Ok(*v),
        Prog::AddEffect(n, rest) => {
            *effects = effects.wrapping_add(*n);
            reference(rest, effects)
        }
        Prog::Yield(rest) => reference(rest, effects),
        Prog::Throw(msg) => Err(msg.clone()),
        Prog::Catch(body, handler) => match reference(body, effects) {
            Ok(v) => Ok(v),
            Err(_) => reference(handler, effects),
        },
    }
}

/// Monadic compilation of the same AST.
fn compile(p: Prog, effects: Arc<AtomicU64>) -> ThreadM<i64> {
    match p {
        Prog::Pure(v) => ThreadM::pure(v),
        Prog::AddEffect(n, rest) => {
            let e = Arc::clone(&effects);
            sys_nbio(move || {
                e.fetch_add(n as u64, Ordering::SeqCst);
            })
            .bind(move |_| compile(*rest, effects))
        }
        Prog::Yield(rest) => sys_yield().bind(move |_| compile(*rest, effects)),
        Prog::Throw(msg) => sys_throw(msg),
        Prog::Catch(body, handler) => {
            let h_effects = Arc::clone(&effects);
            sys_catch(compile(*body, effects), move |_e| {
                compile(*handler, h_effects)
            })
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Arbitrary programs produce exactly the reference result and run
    /// exactly the reference effects, in spite of CPS, catch frames and
    /// scheduling.
    #[test]
    fn programs_match_reference_semantics(p in arb_prog()) {
        let mut ref_effects = 0i64;
        let ref_result = reference(&p, &mut ref_effects);

        let effects = Arc::new(AtomicU64::new(0));
        let run = run_local(compile(p, Arc::clone(&effects)));
        let got_effects = effects.load(Ordering::SeqCst) as i64;

        match (ref_result, run) {
            (Ok(expect), Ok(got)) => prop_assert_eq!(expect, got),
            (Err(msg), Err(e)) => prop_assert_eq!(msg, e.message()),
            (expect, got) => prop_assert!(false, "mismatch: {expect:?} vs {got:?}"),
        }
        prop_assert_eq!(ref_effects, got_effects, "effect counts diverge");
    }

    /// Left identity: pure(a).bind(f) ≡ f(a), observationally.
    #[test]
    fn law_left_identity(a in any::<i64>(), k in any::<i64>()) {
        let f = move |x: i64| ThreadM::pure(x.wrapping_mul(k));
        let lhs = run_local(ThreadM::pure(a).bind(f)).unwrap();
        let rhs = run_local(f(a)).unwrap();
        prop_assert_eq!(lhs, rhs);
    }

    /// Associativity with effectful steps interleaved.
    #[test]
    fn law_associativity(a in any::<i64>(), b in any::<i64>(), c in any::<i64>()) {
        let m = move || sys_nbio(move || a);
        let f = move |x: i64| sys_nbio(move || x.wrapping_add(b));
        let g = move |x: i64| sys_nbio(move || x.wrapping_mul(c));
        let lhs = run_local(m().bind(f).bind(g)).unwrap();
        let rhs = run_local(m().bind(move |x| f(x).bind(g))).unwrap();
        prop_assert_eq!(lhs, rhs);
    }

    /// Tail-recursive loops neither overflow nor lose iterations,
    /// whatever the iteration count.
    #[test]
    fn loops_count_exactly(n in 0u32..50_000) {
        let out = run_local(loop_m(0u32, move |i| {
            if i == n {
                ThreadM::pure(Loop::Break(i))
            } else {
                sys_yield().map(move |_| Loop::Continue(i + 1))
            }
        })).unwrap();
        prop_assert_eq!(out, n);
    }
}
