//! A minimal inline executor: Claessen's original "poor man's concurrency"
//! scheduler.
//!
//! [`LocalExecutor`] interprets the non-I/O subset of the trace language on
//! the calling thread with a round-robin queue — exactly the paper's
//! Figure 11 scheduler, extended with exceptions. It exists for unit tests,
//! doctests and pedagogy; anything touching devices (epoll, AIO, parking)
//! needs a full runtime and is reported as an exception here.

use std::collections::VecDeque;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::exception::Exception;
use crate::task::{Task, TaskId};
use crate::thread::ThreadM;
use crate::trace::Trace;

/// Outcome of draining a [`LocalExecutor`].
#[derive(Debug)]
pub struct LocalReport {
    /// Trace nodes interpreted.
    pub steps: u64,
    /// Threads that ran to completion.
    pub completed: u64,
    /// Exceptions that escaped their threads, in occurrence order.
    pub uncaught: Vec<(TaskId, Exception)>,
}

/// A deterministic, single-threaded, cooperative scheduler for monadic
/// threads that perform no device I/O.
///
/// # Examples
///
/// ```
/// use eveth_core::{local::LocalExecutor, syscall::*, ThreadM};
///
/// let mut ex = LocalExecutor::new();
/// ex.spawn(sys_fork(sys_nbio(|| println!("child"))).then(ThreadM::pure(())));
/// let report = ex.run();
/// assert_eq!(report.completed, 2);
/// ```
pub struct LocalExecutor {
    queue: VecDeque<Task>,
    next_tid: u64,
    steps: u64,
    completed: u64,
    uncaught: Vec<(TaskId, Exception)>,
    clock: u64,
}

impl LocalExecutor {
    /// Creates an empty executor.
    pub fn new() -> Self {
        LocalExecutor {
            queue: VecDeque::new(),
            next_tid: 1,
            steps: 0,
            completed: 0,
            uncaught: Vec::new(),
            clock: 0,
        }
    }

    /// Enqueues a monadic program as a new thread; returns its id.
    pub fn spawn(&mut self, m: ThreadM<()>) -> TaskId {
        let tid = TaskId(self.next_tid);
        self.next_tid += 1;
        self.queue.push_back(Task::from_thread(tid, m));
        tid
    }

    fn fresh_tid(&mut self) -> TaskId {
        let tid = TaskId(self.next_tid);
        self.next_tid += 1;
        tid
    }

    /// Runs until the ready queue drains or `stop` returns `true` (checked
    /// between scheduling turns).
    pub fn run_until(&mut self, mut stop: impl FnMut() -> bool) -> LocalReport {
        while let Some(mut task) = self.queue.pop_front() {
            let mut node = task.force();
            loop {
                self.steps += 1;
                self.clock += 1;
                match node {
                    Trace::Ret => {
                        self.completed += 1;
                        break;
                    }
                    Trace::Nbio(f) => node = f(),
                    Trace::Fork(child, parent) => {
                        let tid = self.fresh_tid();
                        self.queue.push_back(Task::from_thunk(tid, child));
                        node = parent();
                    }
                    Trace::Yield(k) | Trace::Sleep(_, k) | Trace::Cpu(_, k) => {
                        // Sleeps and modelled CPU are instantaneous here; a
                        // yield keeps round-robin fairness.
                        task.set_next(k);
                        self.queue.push_back(task);
                        break;
                    }
                    Trace::Throw(e) => match task.shell_mut().pop_handler() {
                        Some(h) => node = h(e),
                        None => {
                            self.uncaught.push((task.tid(), e));
                            break;
                        }
                    },
                    Trace::Catch { body, handler } => {
                        task.shell_mut().push_handler(handler);
                        node = body();
                    }
                    Trace::CatchPop(k) => {
                        task.shell_mut().pop_handler();
                        node = k();
                    }
                    Trace::GetTime(f) => node = f(self.clock),
                    // Span names need a telemetry hub; none exists here.
                    Trace::Annotate(_, k) => node = k(),
                    unsupported @ (Trace::EpollWait(_, _, _)
                    | Trace::AioRead(_, _)
                    | Trace::AioWrite(_, _)
                    | Trace::Blio(_)
                    | Trace::Park(_, _)) => {
                        // Device I/O needs a full runtime; surface the
                        // mistake through the thread's own handler stack.
                        let kind = unsupported.kind();
                        node = Trace::Throw(Exception::new(format!(
                            "{kind} requires a full runtime (LocalExecutor is I/O-free)"
                        )));
                    }
                }
            }
            if stop() {
                break;
            }
        }
        LocalReport {
            steps: self.steps,
            completed: self.completed,
            uncaught: std::mem::take(&mut self.uncaught),
        }
    }

    /// Runs until the queue drains.
    pub fn run(&mut self) -> LocalReport {
        self.run_until(|| false)
    }
}

impl Default for LocalExecutor {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for LocalExecutor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LocalExecutor")
            .field("queued", &self.queue.len())
            .field("steps", &self.steps)
            .finish()
    }
}

/// Runs a single monadic computation to completion on the calling thread
/// and returns its result (or the exception that escaped it).
///
/// Threads forked by `m` keep running until `m` itself produces a value;
/// they are abandoned afterwards. See [`LocalExecutor`] for full control.
///
/// # Errors
///
/// Returns the exception if `m` throws without catching, or a synthesized
/// exception if `m` terminates via [`sys_ret`](crate::syscall::sys_ret)
/// without producing a value.
pub fn run_local<T: Send + 'static>(m: ThreadM<T>) -> Result<T, Exception> {
    let slot: Arc<Mutex<Option<T>>> = Arc::new(Mutex::new(None));
    let out = Arc::clone(&slot);
    let program = ThreadM::new(move |c: crate::thread::Cont<()>| {
        m.run_cont(Box::new(move |v| {
            *out.lock() = Some(v);
            Trace::Nbio(Box::new(move || c(())))
        }))
    });

    let mut ex = LocalExecutor::new();
    let main_tid = ex.spawn(program);
    let done = Arc::clone(&slot);
    let report = ex.run_until(move || done.lock().is_some());

    if let Some(v) = slot.lock().take() {
        return Ok(v);
    }
    for (tid, e) in report.uncaught {
        if tid == main_tid {
            return Err(e);
        }
    }
    Err(Exception::new(
        "main thread terminated without producing a value",
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::syscall::*;
    use std::sync::atomic::{AtomicU32, Ordering};

    #[test]
    fn run_local_returns_value() {
        assert_eq!(run_local(ThreadM::pure(3)).unwrap(), 3);
    }

    #[test]
    fn run_local_surfaces_uncaught() {
        let err = run_local(sys_throw::<()>("kaboom")).unwrap_err();
        assert_eq!(err.message(), "kaboom");
    }

    #[test]
    fn run_local_sys_ret_is_error() {
        let err = run_local(sys_ret::<u8>()).unwrap_err();
        assert!(err.message().contains("without producing"));
    }

    #[test]
    fn forked_threads_interleave_round_robin() {
        let log = Arc::new(Mutex::new(Vec::new()));
        let mut ex = LocalExecutor::new();
        for id in 0..3 {
            let log = Arc::clone(&log);
            ex.spawn(crate::do_m! {
                sys_nbio({ let log = log.clone(); move || log.lock().push((id, 'a')) });
                sys_yield();
                sys_nbio(move || log.lock().push((id, 'b')))
            });
        }
        let r = ex.run();
        assert_eq!(r.completed, 3);
        let entries = log.lock().clone();
        // All 'a' phases precede all 'b' phases under round-robin.
        let first_b = entries.iter().position(|e| e.1 == 'b').unwrap();
        assert!(entries[..first_b].iter().all(|e| e.1 == 'a'));
        assert_eq!(entries.len(), 6);
    }

    #[test]
    fn io_syscalls_become_exceptions() {
        let err = run_local(sys_park(|_u| {})).unwrap_err();
        assert!(err.message().contains("SYS_PARK"));
    }

    #[test]
    fn massive_fork_fanout_completes() {
        static N: AtomicU32 = AtomicU32::new(0);
        fn spawn_many(n: u32) -> ThreadM<()> {
            if n == 0 {
                sys_nbio(|| {
                    N.fetch_add(1, Ordering::SeqCst);
                })
            } else {
                crate::do_m! {
                    sys_fork(spawn_many(n - 1));
                    sys_fork(spawn_many(n - 1));
                    ThreadM::pure(())
                }
            }
        }
        let mut ex = LocalExecutor::new();
        ex.spawn(spawn_many(10));
        let r = ex.run();
        assert_eq!(N.load(Ordering::SeqCst), 1024);
        assert_eq!(r.uncaught.len(), 0);
    }

    #[test]
    fn report_debug_nonempty() {
        let mut ex = LocalExecutor::new();
        ex.spawn(ThreadM::pure(()));
        assert!(!format!("{ex:?}").is_empty());
        let r = ex.run();
        assert!(format!("{r:?}").contains("steps"));
    }
}
