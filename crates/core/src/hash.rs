//! Deterministic hashing for runtime-internal tables.
//!
//! `std::collections::HashMap`'s default `RandomState` draws a fresh
//! seed per process. For a map that only grows, the seed is invisible —
//! but any table that interleaves inserts and removes accumulates
//! tombstones whose *placement* depends on the seed, and hashbrown's
//! choice between rehash-in-place and a fresh allocation on the next
//! growth pressure depends on that placement. The result is a heap
//! allocation count that varies across processes, which breaks the
//! byte-identical-rerun contract the bench artifacts are gated on
//! (`allocs_per_op` is measured by a counting global allocator).
//!
//! Tables on the simulated hot path therefore use [`DetHashMap`]: FNV-1a
//! keyed with a fixed basis, so layout — and thus allocation behavior —
//! is a pure function of the key sequence. HashDoS resistance is
//! irrelevant here: the keys are runtime-internal (task ids, endpoints,
//! host pairs), never attacker-chosen.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// FNV-1a 64-bit, fixed offset basis — deterministic across processes.
#[derive(Debug, Default)]
pub struct FnvHasher(u64);

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x100_0000_01b3;

impl Hasher for FnvHasher {
    fn write(&mut self, bytes: &[u8]) {
        let mut h = if self.0 == 0 { FNV_OFFSET } else { self.0 };
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(FNV_PRIME);
        }
        self.0 = h;
    }

    fn finish(&self) -> u64 {
        if self.0 == 0 {
            FNV_OFFSET
        } else {
            self.0
        }
    }
}

/// A `HashMap` whose layout is a pure function of its key sequence.
pub type DetHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FnvHasher>>;

/// A `HashSet` with the same deterministic layout guarantee.
pub type DetHashSet<K> = HashSet<K, BuildHasherDefault<FnvHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_is_stable() {
        let h = |bytes: &[u8]| {
            let mut h = FnvHasher::default();
            h.write(bytes);
            h.finish()
        };
        // Known FNV-1a vectors.
        assert_eq!(h(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(h(b"a"), 0xaf63_dc4c_8601_ec8c);
        // Distinct inputs split.
        assert_ne!(h(b"ab"), h(b"ba"));
    }

    #[test]
    fn det_map_basic() {
        let mut m: DetHashMap<u64, &str> = DetHashMap::default();
        m.insert(1, "one");
        m.insert(2, "two");
        m.remove(&1);
        assert_eq!(m.get(&2), Some(&"two"));
        assert_eq!(m.len(), 1);
    }
}
