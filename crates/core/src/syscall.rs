//! The system calls of the multithreaded programming interface (paper
//! Figures 5, 9, 12 and 15).
//!
//! Each `sys_*` function is a monadic operation that, when executed, emits
//! one trace node carrying the current continuation — the Rust rendering of
//! the paper's Figure 9. Thread code composes these with
//! [`do_m!`](crate::do_m) in an imperative style; the scheduler interprets
//! the resulting trace.

use std::sync::Arc;

use bytes::Bytes;

use crate::aio::{AioFile, AioReadReq, AioResult, AioWriteReq};
use crate::exception::Exception;
use crate::reactor::{Fd, Interest, Unparker};
use crate::thread::{Cont, SharedCont, ThreadM};
use crate::time::Nanos;
use crate::trace::{Thunk, Trace};

/// `sys_nbio` — performs a non-blocking, effectful operation on a scheduler
/// worker and returns its result.
///
/// The closure must not block: blocking here stalls an entire event loop
/// (use [`sys_blio`] for genuinely blocking calls).
///
/// # Examples
///
/// ```
/// use eveth_core::{local::run_local, syscall::sys_nbio};
/// let m = sys_nbio(|| 2 + 2);
/// assert_eq!(run_local(m).unwrap(), 4);
/// ```
pub fn sys_nbio<T, F>(f: F) -> ThreadM<T>
where
    T: Send + 'static,
    F: FnOnce() -> T + Send + 'static,
{
    ThreadM::new(move |c| Trace::Nbio(Box::new(move || c(f()))))
}

/// `sys_fork` — spawns `child` as a new monadic thread and continues.
///
/// The fork trace node carries two sub-traces: the child's and the parent's
/// continuation (paper Figure 5). The child starts with an empty
/// exception-handler stack.
pub fn sys_fork(child: ThreadM<()>) -> ThreadM<()> {
    ThreadM::new(move |c| {
        Trace::Fork(
            Box::new(move || child.into_trace()),
            Box::new(move || c(())),
        )
    })
}

/// `sys_yield` — cooperatively reschedules the current thread at the back
/// of the ready queue.
pub fn sys_yield() -> ThreadM<()> {
    ThreadM::new(|c| Trace::Yield(Box::new(move || c(()))))
}

/// `sys_ret` — terminates the current thread immediately.
///
/// Polymorphic in its (never produced) result so it can end a thread from
/// any context, like Haskell's bottom-typed exits.
pub fn sys_ret<A: Send + 'static>() -> ThreadM<A> {
    ThreadM::new(|_c| Trace::Ret)
}

/// `sys_epoll_wait` — blocks until `interest` is ready on `fd` (paper
/// Figure 15). Used to wrap non-blocking operations into blocking ones, as
/// in the paper's `sock_accept` (Figure 10).
pub fn sys_epoll_wait(fd: &Fd, interest: Interest) -> ThreadM<()> {
    let fd = fd.clone();
    ThreadM::new(move |c| Trace::EpollWait(fd, interest, Box::new(move || c(()))))
}

/// `sys_aio_read` — submits an asynchronous read and blocks until its
/// completion arrives through the AIO event loop.
pub fn sys_aio_read(file: &Arc<dyn AioFile>, offset: u64, len: usize) -> ThreadM<AioResult> {
    let file = Arc::clone(file);
    ThreadM::new(move |c| Trace::AioRead(AioReadReq { file, offset, len }, Box::new(c)))
}

/// `sys_aio_write` — submits an asynchronous write and blocks until it
/// completes. On success the result carries an empty buffer.
pub fn sys_aio_write(file: &Arc<dyn AioFile>, offset: u64, data: Bytes) -> ThreadM<AioResult> {
    let file = Arc::clone(file);
    ThreadM::new(move |c| Trace::AioWrite(AioWriteReq { file, offset, data }, Box::new(c)))
}

/// `sys_blio` — runs a *blocking* operation on the blocking-I/O thread pool
/// (paper §4.6: file opens, address resolution, …), then resumes on a
/// normal worker with the result.
pub fn sys_blio<T, F>(f: F) -> ThreadM<T>
where
    T: Send + 'static,
    F: FnOnce() -> T + Send + 'static,
{
    ThreadM::new(move |c| {
        Trace::Blio(Box::new(move || {
            let v = f();
            Box::new(move || c(v)) as Thunk
        }))
    })
}

/// `sys_throw` — raises an exception to the nearest enclosing
/// [`sys_catch`]; if none exists the thread terminates and the runtime
/// records the exception as uncaught.
pub fn sys_throw<A: Send + 'static>(e: impl Into<Exception>) -> ThreadM<A> {
    let e = e.into();
    ThreadM::new(move |_c| Trace::Throw(e))
}

/// `sys_catch` — runs `body` with `handler` installed (paper Figure 12).
///
/// If `body` completes with a value the handler is discarded; if it throws,
/// the handler runs *with the frame already popped*, so exceptions it
/// rethrows propagate outward — the pattern of the paper's `send_file`
/// (Figure 13).
///
/// # Examples
///
/// ```
/// use eveth_core::{local::run_local, syscall::*, ThreadM};
/// let m = sys_catch(sys_throw::<i32>("bad"), |e| {
///     ThreadM::pure(if e.message() == "bad" { 1 } else { 2 })
/// });
/// assert_eq!(run_local(m).unwrap(), 1);
/// ```
pub fn sys_catch<A, H>(body: ThreadM<A>, handler: H) -> ThreadM<A>
where
    A: Send + 'static,
    H: FnOnce(Exception) -> ThreadM<A> + Send + 'static,
{
    ThreadM::new(move |c: Cont<A>| {
        let shared = SharedCont::new(c);
        let on_ok = shared.clone();
        let on_err = shared;
        Trace::Catch {
            body: Box::new(move || {
                body.run_cont(Box::new(move |a| {
                    // Normal completion: pop the handler frame, then resume.
                    Trace::CatchPop(Box::new(move || on_ok.take()(a)))
                }))
            }),
            handler: Box::new(move |e| {
                // The engine popped the frame before invoking us.
                handler(e).run_cont(Box::new(move |a| on_err.take()(a)))
            }),
        }
    })
}

/// Runs `body` and converts any exception into an `Err` value.
pub fn sys_try<A: Send + 'static>(body: ThreadM<A>) -> ThreadM<Result<A, Exception>> {
    sys_catch(body.map(Ok), |e| ThreadM::pure(Err(e)))
}

/// Runs `body`, then `cleanup()` — whether `body` completed or threw. An
/// exception from `body` is rethrown after the cleanup runs.
pub fn sys_finally<A, F>(body: ThreadM<A>, cleanup: F) -> ThreadM<A>
where
    A: Send + 'static,
    F: Fn() -> ThreadM<()> + Send + Sync + 'static,
{
    let cleanup = Arc::new(cleanup);
    let on_err = Arc::clone(&cleanup);
    sys_catch(body, move |e| on_err().bind(move |_| sys_throw(e)))
        .bind(move |a| cleanup().map(move |_| a))
}

/// `sys_sleep` — blocks the thread for `dur` nanoseconds (virtual time
/// under simulation).
pub fn sys_sleep(dur: Nanos) -> ThreadM<()> {
    ThreadM::new(move |c| Trace::Sleep(dur, Box::new(move || c(()))))
}

/// `sys_time` — reads the scheduler clock (nanoseconds since runtime
/// start; virtual under simulation).
pub fn sys_time() -> ThreadM<Nanos> {
    ThreadM::new(|c| Trace::GetTime(Box::new(c)))
}

/// `sys_cpu` — consumes modelled CPU time: a no-op on the real runtime, a
/// clock advance under simulation. Workload models use this to represent
/// per-request processing cost.
pub fn sys_cpu(dur: Nanos) -> ThreadM<()> {
    ThreadM::new(move |c| Trace::Cpu(dur, Box::new(move || c(()))))
}

/// `sys_park` — the scheduler-extension interface (paper §4.7).
///
/// Parks the current thread and hands a one-shot [`Unparker`] to
/// `register`, which typically stores it in a waiter queue guarded by the
/// same lock that protects the blocking condition. If the condition is
/// already satisfied, `register` may unpark immediately. Mutexes, MVars,
/// channels, TCP socket waits and STM `retry` are all built on this call.
pub fn sys_park<F>(register: F) -> ThreadM<()>
where
    F: FnOnce(Unparker) + Send + 'static,
{
    ThreadM::new(move |c| Trace::Park(Box::new(register), Box::new(move || c(()))))
}

/// `sys_annotate` — names the current thread's telemetry span.
///
/// A pure metadata operation: the scheduler forwards the name to the
/// attached [`Telemetry`](crate::telemetry::Telemetry) hub (a no-op when
/// none is attached) and charges nothing, so annotating is free to leave
/// in production code. Spans keep their latest name; the flight recorder
/// logs every annotation.
pub fn sys_annotate(name: impl Into<Arc<str>>) -> ThreadM<()> {
    let name = name.into();
    ThreadM::new(move |c| Trace::Annotate(name, Box::new(move || c(()))))
}

/// Runs `m` with the current thread's span named `name` — sugar for
/// `sys_annotate(name)` followed by `m`. The name applies to the *whole*
/// thread from this point (spans are per-thread, not scoped), so put the
/// `span` at the top of the thread's program.
pub fn span<A: Send + 'static>(name: impl Into<Arc<str>>, m: ThreadM<A>) -> ThreadM<A> {
    sys_annotate(name).bind(move |_| m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::local::run_local;
    use std::sync::atomic::{AtomicU32, Ordering};

    #[test]
    fn nbio_runs_effect() {
        static N: AtomicU32 = AtomicU32::new(0);
        run_local(sys_nbio(|| N.store(9, Ordering::SeqCst))).unwrap();
        assert_eq!(N.load(Ordering::SeqCst), 9);
    }

    #[test]
    fn trace_of_yield_is_sys_yield() {
        assert_eq!(sys_yield().into_trace().kind(), "SYS_YIELD");
    }

    #[test]
    fn trace_of_fork_is_sys_fork() {
        assert_eq!(sys_fork(ThreadM::pure(())).into_trace().kind(), "SYS_FORK");
    }

    #[test]
    fn catch_discards_handler_on_success() {
        let m = sys_catch(ThreadM::pure(5), |_e| ThreadM::pure(0));
        assert_eq!(run_local(m).unwrap(), 5);
    }

    #[test]
    fn catch_rethrow_reaches_outer_handler() {
        let inner = sys_catch(sys_throw::<i32>("inner"), |e| {
            sys_throw::<i32>(Exception::new(format!("wrapped: {}", e.message())))
        });
        let outer = sys_catch(inner, |e| ThreadM::pure(e.message().len() as i32));
        assert_eq!(run_local(outer).unwrap(), "wrapped: inner".len() as i32);
    }

    #[test]
    fn nested_catch_unwinds_in_order() {
        let m = sys_catch(
            sys_catch(sys_throw::<&'static str>("deep"), |e| {
                ThreadM::pure(if e.message() == "deep" { "mid" } else { "?" })
            }),
            |_e| ThreadM::pure("outer"),
        );
        assert_eq!(run_local(m).unwrap(), "mid");
    }

    #[test]
    fn sys_try_captures() {
        let ok = run_local(sys_try(ThreadM::pure(1))).unwrap();
        assert_eq!(ok.unwrap(), 1);
        let err = run_local(sys_try(sys_throw::<i32>("e"))).unwrap();
        assert_eq!(err.unwrap_err().message(), "e");
    }

    #[test]
    fn finally_runs_on_success_and_failure() {
        static RUNS: AtomicU32 = AtomicU32::new(0);
        let cleanup = || {
            sys_nbio(|| {
                RUNS.fetch_add(1, Ordering::SeqCst);
            })
        };

        run_local(sys_finally(ThreadM::pure(1), cleanup)).unwrap();
        assert_eq!(RUNS.load(Ordering::SeqCst), 1);

        let failing = sys_finally(sys_throw::<i32>("x"), cleanup);
        let caught = sys_catch(failing, |e| ThreadM::pure(e.message().len() as i32));
        assert_eq!(run_local(caught).unwrap(), 1);
        assert_eq!(RUNS.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn exceptions_cross_nbio_boundaries() {
        let m = sys_catch(
            crate::do_m! {
                sys_nbio(|| 1);
                sys_yield();
                sys_throw::<u8>("later")
            },
            |e| ThreadM::pure(e.message().len() as u8),
        );
        assert_eq!(run_local(m).unwrap(), 5);
    }

    #[test]
    fn sys_time_is_monotone_in_local_executor() {
        let m = crate::do_m! {
            let t1 <- sys_time();
            sys_yield();
            let t2 <- sys_time();
            ThreadM::pure((t1, t2))
        };
        let (t1, t2) = run_local(m).unwrap();
        assert!(t2 >= t1);
    }
}
