//! The flight recorder: a bounded ring of recent runtime events.
//!
//! The recorder keeps the *newest* `capacity` events per shard and counts
//! what it overwrote, timely-dataflow-logging style: always on, fixed
//! memory, snapshottable at any instant. Claiming a slot is one
//! `fetch_add` on the shard head (wait-free); publication into the claimed
//! slot takes that slot's own mutex, which is uncontended unless two
//! writers lap each other on the same slot — the honest cost of keeping
//! snapshots tear-free without a garbage-collected scheme.
//!
//! Shard choice hashes the thread id, so under the (single-OS-threaded)
//! simulator the event order is a pure function of the schedule and
//! snapshots are byte-deterministic; under the real SMP runtime shards
//! keep writers from serializing on one head.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::engine::WaitKind;
use crate::time::Nanos;

/// What happened to a thread — one record in the flight recorder.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventKind {
    /// The thread was created (`parent` is the forking thread, `None` for
    /// runtime-level spawns).
    Spawn {
        /// The forking thread, if the spawn came from `sys_fork`.
        parent: Option<u64>,
    },
    /// The thread named itself via `sys_annotate`.
    Annotate {
        /// The span name.
        name: Arc<str>,
    },
    /// The thread blocked.
    Park {
        /// Why it blocked.
        kind: WaitKind,
    },
    /// A racing wait branch re-attributed the in-flight blocked episode.
    Reclass {
        /// The winning wait class.
        kind: WaitKind,
    },
    /// The thread became runnable again after a blocked episode.
    Wake {
        /// The wait class the episode was finally attributed to.
        kind: WaitKind,
        /// How long it was blocked.
        wait_ns: Nanos,
    },
    /// The thread terminated.
    Exit {
        /// True if it died with an uncaught exception.
        uncaught: bool,
    },
}

/// One timestamped, sequence-numbered record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// When it happened (virtual nanoseconds under simulation).
    pub at: Nanos,
    /// Global record order (total across shards).
    pub seq: u64,
    /// The thread it happened to.
    pub tid: u64,
    /// What happened.
    pub kind: EventKind,
}

struct Shard {
    slots: Vec<Mutex<Option<TraceEvent>>>,
    claimed: AtomicU64,
}

/// A bounded, sharded ring of the newest runtime events.
#[derive(Debug)]
pub struct FlightRecorder {
    shards: Vec<Shard>,
    capacity_per_shard: usize,
    seq: AtomicU64,
}

impl std::fmt::Debug for Shard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Shard(cap={}, claimed={})",
            self.slots.len(),
            self.claimed.load(Ordering::Relaxed)
        )
    }
}

impl FlightRecorder {
    /// A recorder with `shards` rings of `capacity_per_shard` slots each
    /// (both clamped to at least 1).
    pub fn new(shards: usize, capacity_per_shard: usize) -> Self {
        let shards = shards.max(1);
        let cap = capacity_per_shard.max(1);
        FlightRecorder {
            shards: (0..shards)
                .map(|_| Shard {
                    slots: (0..cap).map(|_| Mutex::new(None)).collect(),
                    claimed: AtomicU64::new(0),
                })
                .collect(),
            capacity_per_shard: cap,
            seq: AtomicU64::new(0),
        }
    }

    /// Total slots across shards.
    pub fn capacity(&self) -> usize {
        self.capacity_per_shard * self.shards.len()
    }

    /// Appends one event, overwriting the shard's oldest if full.
    pub fn record(&self, at: Nanos, tid: u64, kind: EventKind) {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let shard = &self.shards[(tid as usize) % self.shards.len()];
        let slot = shard.claimed.fetch_add(1, Ordering::Relaxed) as usize;
        *shard.slots[slot % self.capacity_per_shard].lock() =
            Some(TraceEvent { at, seq, tid, kind });
    }

    /// Events recorded so far (including overwritten ones).
    pub fn recorded(&self) -> u64 {
        self.seq.load(Ordering::Relaxed)
    }

    /// Events lost to overwrite so far.
    pub fn dropped(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| {
                s.claimed
                    .load(Ordering::Relaxed)
                    .saturating_sub(self.capacity_per_shard as u64)
            })
            .sum()
    }

    /// The surviving events, oldest first (sorted by `(at, seq)` — a total
    /// order, since `seq` is globally unique).
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        let mut out = Vec::new();
        for shard in &self.shards {
            for slot in &shard.slots {
                if let Some(ev) = slot.lock().clone() {
                    out.push(ev);
                }
            }
        }
        out.sort_by_key(|e| (e.at, e.seq));
        out
    }

    /// The newest `n` surviving events, oldest first.
    pub fn last(&self, n: usize) -> Vec<TraceEvent> {
        let mut all = self.snapshot();
        if all.len() > n {
            all.drain(..all.len() - n);
        }
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_newest_and_counts_drops() {
        let rec = FlightRecorder::new(1, 8);
        for i in 0..20u64 {
            rec.record(i, 1, EventKind::Exit { uncaught: false });
        }
        assert_eq!(rec.recorded(), 20);
        assert_eq!(rec.dropped(), 12);
        let snap = rec.snapshot();
        assert_eq!(snap.len(), 8);
        let seqs: Vec<u64> = snap.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, (12..20).collect::<Vec<_>>(), "newest 8 survive");
    }

    #[test]
    fn snapshot_is_time_ordered_across_shards() {
        let rec = FlightRecorder::new(4, 4);
        // tids land in different shards; interleave timestamps.
        for (at, tid) in [(5u64, 0u64), (1, 1), (3, 2), (2, 3), (4, 0)] {
            rec.record(at, tid, EventKind::Spawn { parent: None });
        }
        let ats: Vec<u64> = rec.snapshot().iter().map(|e| e.at).collect();
        assert_eq!(ats, vec![1, 2, 3, 4, 5]);
        assert_eq!(rec.dropped(), 0);
    }

    #[test]
    fn last_n_trims_from_the_front() {
        let rec = FlightRecorder::new(2, 8);
        for i in 0..6u64 {
            rec.record(i, i, EventKind::Park { kind: WaitKind::Io });
        }
        let last = rec.last(2);
        assert_eq!(last.len(), 2);
        assert_eq!(last[0].at, 4);
        assert_eq!(last[1].at, 5);
        assert!(rec.last(100).len() == 6);
    }
}
