//! The metrics registry: counters, gauges and fixed-bucket histograms with
//! a Prometheus-style text exposition format.
//!
//! Every handle ([`Counter`], [`Gauge`], [`Histogram`]) is a cheap `Arc`
//! clone around atomics — recording on the hot path is one relaxed
//! `fetch_add`, never an allocation or a lock. The [`Registry`] is the one
//! source of truth a debug endpoint reads: handles register under a metric
//! name plus a label set, and [`Registry::expose`] renders every family in
//! deterministic (sorted) order, so the same counters always produce the
//! same bytes — the property the CI trace/metrics artifacts pin.
//!
//! Naming conventions (see README "Observability"): metric names are
//! `eveth_<subsystem>_<what>[_<unit>]` (`eveth_kv_shard_hits`,
//! `eveth_runtime_io_wait_ns`); labels qualify *which* entity
//! (`{service="kv"}`, `{shard="3"}`), never what is measured.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

/// A relaxed, monotonically-increasing atomic counter.
///
/// Cloning shares the underlying cell, so one handle can live on a hot
/// path while its clone sits in a [`Registry`].
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A fresh counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    pub fn incr(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A settable signed gauge (current sessions, queue depth, …).
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// A fresh gauge at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    pub fn incr(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Subtracts one.
    pub fn decr(&self) {
        self.0.fetch_sub(1, Ordering::Relaxed);
    }

    /// Adds `n` (may be negative).
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Overwrites the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Default histogram bucket bounds: powers of four from 1 µs to ~4.3 s
/// (nanosecond samples), a decent spread for virtual-time latencies.
pub const DEFAULT_BUCKETS: [u64; 12] = [
    1_000,
    4_000,
    16_000,
    64_000,
    256_000,
    1_024_000,
    4_096_000,
    16_384_000,
    65_536_000,
    262_144_000,
    1_048_576_000,
    4_294_967_296,
];

#[derive(Debug)]
struct HistogramInner {
    bounds: Vec<u64>,
    /// One cell per bound plus the overflow (`+Inf`) cell.
    cells: Vec<AtomicU64>,
    sum: AtomicU64,
    count: AtomicU64,
}

/// A fixed-bucket histogram: recording is a binary search over the bounds
/// plus two relaxed adds — allocation-free on the hot path.
///
/// For *exact* percentiles over bounded sample counts (the bench tables),
/// use [`LatencyHistogram`] instead; this type is for always-on metrics
/// where constant memory matters more than exactness.
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistogramInner>);

impl Histogram {
    /// A histogram over [`DEFAULT_BUCKETS`].
    pub fn new() -> Self {
        Self::with_bounds(&DEFAULT_BUCKETS)
    }

    /// A histogram with explicit ascending bucket upper bounds.
    pub fn with_bounds(bounds: &[u64]) -> Self {
        let mut b = bounds.to_vec();
        b.sort_unstable();
        b.dedup();
        let cells = (0..=b.len()).map(|_| AtomicU64::new(0)).collect();
        Histogram(Arc::new(HistogramInner {
            bounds: b,
            cells,
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }))
    }

    /// Records one sample.
    pub fn record(&self, v: u64) {
        let i = self.0.bounds.partition_point(|&b| b < v);
        self.0.cells[i].fetch_add(1, Ordering::Relaxed);
        self.0.sum.fetch_add(v, Ordering::Relaxed);
        self.0.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded samples.
    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }

    /// `(upper_bound, cumulative_count)` rows, ending with the `+Inf`
    /// bucket (`u64::MAX` stands in for infinity).
    pub fn cumulative(&self) -> Vec<(u64, u64)> {
        let mut acc = 0;
        let mut out = Vec::with_capacity(self.0.cells.len());
        for (i, cell) in self.0.cells.iter().enumerate() {
            acc += cell.load(Ordering::Relaxed);
            let bound = self.0.bounds.get(i).copied().unwrap_or(u64::MAX);
            out.push((bound, acc));
        }
        out
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// A latency recorder with exact nearest-rank percentiles.
///
/// Samples are virtual-time nanoseconds, so the workloads record at most a
/// few hundred thousand of them per run — storing every sample exactly is
/// cheaper and stricter than a lossy log-bucketed histogram, and keeps the
/// percentile math deterministic (the tail-latency columns of `fig_kv`
/// must be bit-reproducible run over run).
#[derive(Debug, Default)]
pub struct LatencyHistogram {
    samples: parking_lot::Mutex<Vec<u64>>,
}

impl LatencyHistogram {
    /// A fresh, empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one latency sample (nanoseconds).
    pub fn record(&self, ns: u64) {
        self.samples.lock().push(ns);
    }

    /// Number of recorded samples.
    pub fn len(&self) -> usize {
        self.samples.lock().len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.lock().is_empty()
    }

    /// The nearest-rank `p`th percentile (`0 < p <= 100`) over every
    /// recorded sample: the smallest sample such that at least `p%` of
    /// samples are `<=` it. Returns 0 when nothing was recorded.
    pub fn percentile(&self, p: f64) -> u64 {
        self.percentiles(&[p])[0]
    }

    /// Several percentiles from a single sort — what the bench harness
    /// uses to pull p50/p95/p99 without re-sorting the samples per call.
    pub fn percentiles(&self, ps: &[f64]) -> Vec<u64> {
        let mut sorted = self.samples.lock().clone();
        if sorted.is_empty() {
            return vec![0; ps.len()];
        }
        sorted.sort_unstable();
        ps.iter()
            .map(|p| {
                let p = p.clamp(0.0, 100.0);
                let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
                sorted[rank.clamp(1, sorted.len()) - 1]
            })
            .collect()
    }

    /// Median latency.
    pub fn p50(&self) -> u64 {
        self.percentile(50.0)
    }

    /// 95th percentile.
    pub fn p95(&self) -> u64 {
        self.percentile(95.0)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.percentile(99.0)
    }

    /// Maximum recorded latency (0 when empty).
    pub fn max(&self) -> u64 {
        self.samples.lock().iter().copied().max().unwrap_or(0)
    }
}

/// One registered metric source.
enum Source {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
    /// A closure counter: reads a value owned elsewhere (e.g. STM
    /// `TxnStats`, the store's shard-gate wait) without porting the owner
    /// onto registry handles.
    CounterFn(Box<dyn Fn() -> u64 + Send + Sync>),
    /// A closure gauge: a point-in-time level owned elsewhere (e.g. the
    /// buffer pool's free-slab occupancy) polled at exposition time.
    GaugeFn(Box<dyn Fn() -> i64 + Send + Sync>),
}

impl std::fmt::Debug for Source {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Source::Counter(_) => "counter",
            Source::Gauge(_) => "gauge",
            Source::Histogram(_) => "histogram",
            Source::CounterFn(_) => "counter(fn)",
            Source::GaugeFn(_) => "gauge(fn)",
        })
    }
}

impl Source {
    fn type_name(&self) -> &'static str {
        match self {
            Source::Counter(_) | Source::CounterFn(_) => "counter",
            Source::Gauge(_) | Source::GaugeFn(_) => "gauge",
            Source::Histogram(_) => "histogram",
        }
    }
}

/// Renders a label set as `{k="v",…}` (empty string for no labels), with
/// keys sorted so the exposition is deterministic.
fn render_labels(labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let mut sorted: Vec<_> = labels.to_vec();
    sorted.sort_unstable();
    let body: Vec<String> = sorted
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", v.replace('\\', "\\\\").replace('"', "\\\"")))
        .collect();
    format!("{{{}}}", body.join(","))
}

/// Merges an extra label into an already-rendered label block (used for
/// histogram `le` labels).
fn with_extra_label(rendered: &str, key: &str, value: &str) -> String {
    if rendered.is_empty() {
        format!("{{{key}=\"{value}\"}}")
    } else {
        format!("{},{key}=\"{value}\"}}", &rendered[..rendered.len() - 1])
    }
}

/// A registry of metric sources keyed by `(name, labels)`.
///
/// All registration paths are get-or-create on names but last-write-wins
/// on an exact `(name, labels)` collision — re-registering a fresh handle
/// under the same key replaces the old one, which is what a restarted
/// server wants.
#[derive(Debug, Default)]
pub struct Registry {
    sources: Mutex<BTreeMap<(String, String), Source>>,
}

impl Registry {
    /// A fresh, empty registry behind an `Arc` (handles are shared with
    /// services and the debug endpoint).
    pub fn new() -> Arc<Self> {
        Arc::new(Registry::default())
    }

    fn insert(&self, name: &str, labels: &[(&str, &str)], src: Source) {
        self.sources
            .lock()
            .insert((name.to_string(), render_labels(labels)), src);
    }

    /// Creates (or replaces) a counter under `name{labels}` and returns
    /// its handle.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        let c = Counter::new();
        self.register_counter(name, labels, &c);
        c
    }

    /// Registers an existing counter handle under `name{labels}`.
    pub fn register_counter(&self, name: &str, labels: &[(&str, &str)], c: &Counter) {
        self.insert(name, labels, Source::Counter(c.clone()));
    }

    /// Creates (or replaces) a gauge under `name{labels}` and returns its
    /// handle.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        let g = Gauge::new();
        self.register_gauge(name, labels, &g);
        g
    }

    /// Registers an existing gauge handle under `name{labels}`.
    pub fn register_gauge(&self, name: &str, labels: &[(&str, &str)], g: &Gauge) {
        self.insert(name, labels, Source::Gauge(g.clone()));
    }

    /// Creates (or replaces) a histogram under `name{labels}` and returns
    /// its handle.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Histogram {
        let h = Histogram::new();
        self.register_histogram(name, labels, &h);
        h
    }

    /// Registers an existing histogram handle under `name{labels}`.
    pub fn register_histogram(&self, name: &str, labels: &[(&str, &str)], h: &Histogram) {
        self.insert(name, labels, Source::Histogram(h.clone()));
    }

    /// Registers a closure-backed counter: `f` is polled at exposition
    /// time. The route for surfacing counters owned by foreign types (STM
    /// transaction stats, store lock waits) without rewriting them.
    pub fn register_counter_fn(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        f: impl Fn() -> u64 + Send + Sync + 'static,
    ) {
        self.insert(name, labels, Source::CounterFn(Box::new(f)));
    }

    /// Registers a closure-backed gauge: `f` is polled at exposition
    /// time. The gauge analogue of [`Registry::register_counter_fn`] for
    /// levels owned by foreign types (pool occupancy, queue depth).
    pub fn register_gauge_fn(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        f: impl Fn() -> i64 + Send + Sync + 'static,
    ) {
        self.insert(name, labels, Source::GaugeFn(Box::new(f)));
    }

    /// Reads the current value of the counter registered under
    /// `name{labels}`, if any (handles and closure counters both answer).
    pub fn counter_value(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        let key = (name.to_string(), render_labels(labels));
        match self.sources.lock().get(&key)? {
            Source::Counter(c) => Some(c.get()),
            Source::CounterFn(f) => Some(f()),
            Source::Gauge(g) => Some(g.get().max(0) as u64),
            Source::GaugeFn(f) => Some(f().max(0) as u64),
            Source::Histogram(h) => Some(h.count()),
        }
    }

    /// Renders every metric in the text exposition format, sorted by
    /// `(name, labels)` so identical registries produce identical bytes.
    pub fn expose(&self) -> String {
        let sources = self.sources.lock();
        let mut out = String::new();
        let mut last_family = "";
        for ((name, labels), src) in sources.iter() {
            if name != last_family {
                let _ = writeln!(out, "# TYPE {name} {}", src.type_name());
            }
            match src {
                Source::Counter(c) => {
                    let _ = writeln!(out, "{name}{labels} {}", c.get());
                }
                Source::CounterFn(f) => {
                    let _ = writeln!(out, "{name}{labels} {}", f());
                }
                Source::Gauge(g) => {
                    let _ = writeln!(out, "{name}{labels} {}", g.get());
                }
                Source::GaugeFn(f) => {
                    let _ = writeln!(out, "{name}{labels} {}", f());
                }
                Source::Histogram(h) => {
                    for (bound, cum) in h.cumulative() {
                        let le = if bound == u64::MAX {
                            "+Inf".to_string()
                        } else {
                            bound.to_string()
                        };
                        let lb = with_extra_label(labels, "le", &le);
                        let _ = writeln!(out, "{name}_bucket{lb} {cum}");
                    }
                    let _ = writeln!(out, "{name}_sum{labels} {}", h.sum());
                    let _ = writeln!(out, "{name}_count{labels} {}", h.count());
                }
            }
            last_family = name;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let c = Counter::new();
        c.incr();
        c.add(4);
        assert_eq!(c.get(), 5);
        let c2 = c.clone();
        c2.incr();
        assert_eq!(c.get(), 6, "clones share the cell");

        let g = Gauge::new();
        g.incr();
        g.incr();
        g.decr();
        assert_eq!(g.get(), 1);
        g.set(-3);
        assert_eq!(g.get(), -3);
    }

    #[test]
    fn histogram_buckets_are_cumulative() {
        let h = Histogram::with_bounds(&[10, 100, 1000]);
        for v in [5, 50, 500, 5000, 7] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 5562);
        let rows = h.cumulative();
        assert_eq!(rows, vec![(10, 2), (100, 3), (1000, 4), (u64::MAX, 5)]);
    }

    #[test]
    fn exposition_is_sorted_and_deterministic() {
        let reg = Registry::new();
        reg.counter("eveth_b_total", &[("svc", "kv")]).add(2);
        reg.counter("eveth_a_total", &[]).incr();
        reg.gauge("eveth_live", &[]).set(7);
        let h = reg.histogram("eveth_lat_ns", &[("svc", "kv")]);
        h.record(1);
        let once = reg.expose();
        assert_eq!(once, reg.expose(), "byte-stable across calls");
        let a = once.find("eveth_a_total 1").unwrap();
        let b = once.find("eveth_b_total{svc=\"kv\"} 2").unwrap();
        assert!(a < b, "families sorted by name:\n{once}");
        assert!(once.contains("# TYPE eveth_a_total counter"));
        assert!(once.contains("# TYPE eveth_live gauge"));
        assert!(once.contains("eveth_lat_ns_bucket{svc=\"kv\",le=\"1000\"} 1"));
        assert!(once.contains("eveth_lat_ns_bucket{svc=\"kv\",le=\"+Inf\"} 1"));
        assert!(once.contains("eveth_lat_ns_count{svc=\"kv\"} 1"));
    }

    #[test]
    fn closure_counters_poll_at_expose_time() {
        let reg = Registry::new();
        let shared = Arc::new(AtomicU64::new(0));
        let src = Arc::clone(&shared);
        reg.register_counter_fn("eveth_ext_total", &[], move || src.load(Ordering::Relaxed));
        assert!(reg.expose().contains("eveth_ext_total 0"));
        shared.store(9, Ordering::Relaxed);
        assert!(reg.expose().contains("eveth_ext_total 9"));
        assert_eq!(reg.counter_value("eveth_ext_total", &[]), Some(9));
    }

    #[test]
    fn closure_gauges_poll_at_expose_time() {
        let reg = Registry::new();
        let shared = Arc::new(AtomicU64::new(3));
        let src = Arc::clone(&shared);
        reg.register_gauge_fn("eveth_pool_free", &[], move || {
            src.load(Ordering::Relaxed) as i64 - 5
        });
        assert!(reg.expose().contains("# TYPE eveth_pool_free gauge"));
        assert!(
            reg.expose().contains("eveth_pool_free -2"),
            "levels go negative"
        );
        shared.store(12, Ordering::Relaxed);
        assert!(reg.expose().contains("eveth_pool_free 7"));
        // counter_value clamps a negative level to zero.
        shared.store(0, Ordering::Relaxed);
        assert_eq!(reg.counter_value("eveth_pool_free", &[]), Some(0));
    }

    #[test]
    fn label_sets_sort_and_escape() {
        assert_eq!(render_labels(&[]), "");
        assert_eq!(
            render_labels(&[("z", "1"), ("a", "x\"y")]),
            "{a=\"x\\\"y\",z=\"1\"}"
        );
        assert_eq!(
            with_extra_label("{a=\"1\"}", "le", "+Inf"),
            "{a=\"1\",le=\"+Inf\"}"
        );
        assert_eq!(with_extra_label("", "le", "10"), "{le=\"10\"}");
    }
}
