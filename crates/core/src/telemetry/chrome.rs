//! Chrome trace-event export: renders a flight-recorder snapshot as the
//! JSON that `chrome://tracing` and Perfetto load directly.
//!
//! The format (the Trace Event Format's JSON-object flavor) is a
//! `{"traceEvents": [...]}` wrapper over flat event objects:
//!
//! * one `"M"` (metadata) event per span names its row;
//! * every completed blocked episode becomes an `"X"` (complete) event —
//!   `ts` is when the thread parked, `dur` how long it stayed blocked,
//!   the name its wait class (`io_wait` / `lock_wait` / `timer_wait`) —
//!   so waits render as colored slices on the thread's row;
//! * spawns, annotations and exits become `"i"` (instant) marks.
//!
//! Timestamps are microseconds; virtual nanoseconds are rendered with
//! three decimal places by integer arithmetic (`{µs}.{ns%1000:03}`), never
//! through floating point, so the same events always serialize to the
//! same bytes — the property the CI byte-identity gate pins.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Arc;

use crate::engine::WaitKind;
use crate::time::Nanos;

use super::recorder::{EventKind, TraceEvent};
use super::Telemetry;

/// A snapshot of trace events plus span names, ready to serialize.
#[derive(Debug, Clone)]
pub struct TraceExport {
    events: Vec<TraceEvent>,
    names: BTreeMap<u64, Arc<str>>,
}

/// Renders nanoseconds as fractional microseconds, digit-deterministic.
fn micros(ns: Nanos) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

/// Escapes a string for a JSON literal.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn wait_name(kind: WaitKind) -> &'static str {
    match kind {
        WaitKind::Io => "io_wait",
        WaitKind::Lock => "lock_wait",
        WaitKind::Timer => "timer_wait",
    }
}

impl TraceExport {
    /// Wraps an event snapshot plus a `tid → name` table.
    pub fn new(events: Vec<TraceEvent>, names: BTreeMap<u64, Arc<str>>) -> Self {
        TraceExport { events, names }
    }

    /// Snapshots `telemetry`'s recorder and span names.
    pub fn from_telemetry(telemetry: &Telemetry) -> Self {
        Self::from_telemetry_last(telemetry, usize::MAX)
    }

    /// Like [`TraceExport::from_telemetry`], keeping only the newest
    /// `last` events (the `/trace?last=N` path).
    pub fn from_telemetry_last(telemetry: &Telemetry, last: usize) -> Self {
        let events = telemetry.recorder().last(last);
        let names = telemetry
            .spans()
            .into_iter()
            .filter_map(|s| s.name.map(|n| (s.tid, n)))
            .collect();
        TraceExport { events, names }
    }

    /// The events in this export (oldest first).
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Serializes to Chrome trace-event JSON. Deterministic: the same
    /// events and names produce the same bytes.
    pub fn to_chrome_json(&self) -> String {
        let mut rows: Vec<String> = Vec::new();
        // Row names first: explicit span names, then thread-N for any
        // remaining tid that has events.
        let mut named: BTreeMap<u64, String> = self
            .names
            .iter()
            .map(|(&tid, n)| (tid, n.to_string()))
            .collect();
        for ev in &self.events {
            named
                .entry(ev.tid)
                .or_insert_with(|| format!("thread-{}", ev.tid));
        }
        for (tid, name) in &named {
            rows.push(format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{tid},\
                 \"args\":{{\"name\":\"{}\"}}}}",
                escape(name)
            ));
        }
        for ev in &self.events {
            let tid = ev.tid;
            match &ev.kind {
                EventKind::Spawn { parent } => {
                    let parent = parent
                        .map(|p| p.to_string())
                        .unwrap_or_else(|| "null".into());
                    rows.push(format!(
                        "{{\"name\":\"spawn\",\"ph\":\"i\",\"ts\":{},\"pid\":0,\"tid\":{tid},\
                         \"s\":\"t\",\"args\":{{\"parent\":{parent}}}}}",
                        micros(ev.at)
                    ));
                }
                EventKind::Annotate { name } => {
                    rows.push(format!(
                        "{{\"name\":\"annotate\",\"ph\":\"i\",\"ts\":{},\"pid\":0,\"tid\":{tid},\
                         \"s\":\"t\",\"args\":{{\"name\":\"{}\"}}}}",
                        micros(ev.at),
                        escape(name)
                    ));
                }
                EventKind::Wake { kind, wait_ns } => {
                    rows.push(format!(
                        "{{\"name\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":0,\
                         \"tid\":{tid}}}",
                        wait_name(*kind),
                        micros(ev.at.saturating_sub(*wait_ns)),
                        micros(*wait_ns)
                    ));
                }
                EventKind::Exit { uncaught } => {
                    rows.push(format!(
                        "{{\"name\":\"exit\",\"ph\":\"i\",\"ts\":{},\"pid\":0,\"tid\":{tid},\
                         \"s\":\"t\",\"args\":{{\"uncaught\":{uncaught}}}}}",
                        micros(ev.at)
                    ));
                }
                // Parks and reclasses are subsumed by the `X` slice the
                // eventual wake emits; exporting them too would double-draw
                // every wait.
                EventKind::Park { .. } | EventKind::Reclass { .. } => {}
            }
        }
        let mut out = String::from("{\"traceEvents\":[\n");
        out.push_str(&rows.join(",\n"));
        out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_export() -> TraceExport {
        let events = vec![
            TraceEvent {
                at: 0,
                seq: 0,
                tid: 1,
                kind: EventKind::Spawn { parent: None },
            },
            TraceEvent {
                at: 1_500,
                seq: 1,
                tid: 1,
                kind: EventKind::Annotate {
                    name: Arc::from("session"),
                },
            },
            TraceEvent {
                at: 2_000,
                seq: 2,
                tid: 1,
                kind: EventKind::Park { kind: WaitKind::Io },
            },
            TraceEvent {
                at: 9_250,
                seq: 3,
                tid: 1,
                kind: EventKind::Wake {
                    kind: WaitKind::Io,
                    wait_ns: 7_250,
                },
            },
            TraceEvent {
                at: 10_000,
                seq: 4,
                tid: 1,
                kind: EventKind::Exit { uncaught: false },
            },
        ];
        let mut names = BTreeMap::new();
        names.insert(1, Arc::from("session"));
        TraceExport::new(events, names)
    }

    #[test]
    fn export_is_byte_deterministic() {
        let a = sample_export().to_chrome_json();
        let b = sample_export().to_chrome_json();
        assert_eq!(a, b);
    }

    #[test]
    fn wait_episodes_render_as_complete_slices() {
        let json = sample_export().to_chrome_json();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains(
            "{\"name\":\"io_wait\",\"ph\":\"X\",\"ts\":2.000,\"dur\":7.250,\"pid\":0,\"tid\":1}"
        ));
        assert!(json.contains("\"thread_name\""));
        assert!(json.contains("\"session\""));
        // Parks are not exported as standalone rows.
        assert!(!json.contains("\"park\""));
    }

    #[test]
    fn micros_is_integer_formatted() {
        assert_eq!(micros(0), "0.000");
        assert_eq!(micros(999), "0.999");
        assert_eq!(micros(1_000), "1.000");
        assert_eq!(micros(1_234_567), "1234.567");
    }

    #[test]
    fn escapes_json_strings() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }
}
