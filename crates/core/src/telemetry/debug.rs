//! The live introspection service: a [`Service`] exposing the telemetry
//! hub over HTTP, mountable beside any server (its own port, same
//! `NetStack`, same runtime).
//!
//! Routes:
//!
//! * `GET /metrics` — the registry's text exposition format;
//! * `GET /threads` — the live span table (state, current wait kind,
//!   time-in-state, per-kind wait sums);
//! * `GET /trace` — the flight-recorder snapshot as Chrome trace-event
//!   JSON (load it in Perfetto); `GET /trace?last=N` keeps the newest `N`
//!   events.
//!
//! Dogfoods the service framework: the whole endpoint is protocol logic
//! over [`Server`](crate::service::Server)'s lifecycle, ~100 lines.

use std::sync::Arc;

use bytes::Bytes;

use crate::net::{send_all, Conn};
use crate::service::{Service, Step};
use crate::syscall::sys_time;
use crate::thread::ThreadM;

use super::chrome::TraceExport;
use super::Telemetry;

/// The introspection service. Mount with
/// `Server::new(stack, DebugService::new(&telemetry), cfg)`.
#[derive(Debug)]
pub struct DebugService {
    telemetry: Arc<Telemetry>,
}

impl DebugService {
    /// A service over `telemetry`.
    pub fn new(telemetry: &Arc<Telemetry>) -> Self {
        DebugService {
            telemetry: Arc::clone(telemetry),
        }
    }

    /// Routes one request path (everything after `GET `, before the HTTP
    /// version) to `(status, content_type, body)`.
    fn route(&self, target: &str, now: crate::time::Nanos) -> (&'static str, &'static str, String) {
        let (path, query) = match target.split_once('?') {
            Some((p, q)) => (p, q),
            None => (target, ""),
        };
        match path {
            "/metrics" => (
                "200 OK",
                "text/plain; version=0.0.4",
                self.telemetry.registry().expose(),
            ),
            "/threads" => ("200 OK", "text/plain", self.telemetry.threads_text(now)),
            "/trace" => {
                let last = query
                    .split('&')
                    .find_map(|kv| kv.strip_prefix("last="))
                    .and_then(|v| v.parse::<usize>().ok())
                    .unwrap_or(usize::MAX);
                (
                    "200 OK",
                    "application/json",
                    TraceExport::from_telemetry_last(&self.telemetry, last).to_chrome_json(),
                )
            }
            _ => (
                "404 Not Found",
                "text/plain",
                format!("no such route: {path}\ntry /metrics /threads /trace?last=N\n"),
            ),
        }
    }

    /// Builds the full HTTP/1.0 response for one request line.
    fn respond(&self, request_line: &str, now: crate::time::Nanos) -> Bytes {
        let target = request_line
            .strip_prefix("GET ")
            .map(|rest| rest.split_whitespace().next().unwrap_or("/"))
            .unwrap_or("");
        let (status, ctype, body) = if target.is_empty() {
            (
                "400 Bad Request",
                "text/plain",
                "only GET is supported\n".to_string(),
            )
        } else {
            self.route(target, now)
        };
        Bytes::from(format!(
            "HTTP/1.0 {status}\r\nContent-Type: {ctype}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len()
        ))
    }
}

impl Service for DebugService {
    /// Bytes received so far, until the first line is complete.
    type Session = Vec<u8>;

    fn open(&self, _conn: &Arc<dyn Conn>) -> Vec<u8> {
        Vec::new()
    }

    fn on_chunk(
        &self,
        conn: Arc<dyn Conn>,
        mut session: Vec<u8>,
        chunk: Bytes,
    ) -> ThreadM<Step<Vec<u8>>> {
        session.extend_from_slice(&chunk);
        let Some(eol) = session.iter().position(|&b| b == b'\n') else {
            return ThreadM::pure(Step::Continue(session));
        };
        let line = String::from_utf8_lossy(&session[..eol])
            .trim_end()
            .to_string();
        let telemetry = Arc::clone(&self.telemetry);
        let this = DebugService { telemetry };
        sys_time().bind(move |now| {
            let response = this.respond(&line, now);
            send_all(&conn, response).map(|_| Step::Close)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routes_answer() {
        let tel = Telemetry::new();
        tel.on_spawn(0, 1, None);
        let svc = DebugService::new(&tel);
        let (status, _, body) = svc.route("/metrics", 0);
        assert_eq!(status, "200 OK");
        assert!(body.contains("eveth_runtime_threads_spawned 1"));
        let (_, _, body) = svc.route("/threads", 10);
        assert!(body.contains("tid=1"));
        let (_, ctype, body) = svc.route("/trace?last=5", 10);
        assert_eq!(ctype, "application/json");
        assert!(body.contains("traceEvents"));
        let (status, _, _) = svc.route("/nope", 0);
        assert_eq!(status, "404 Not Found");
    }

    #[test]
    fn respond_builds_http_response() {
        let tel = Telemetry::new();
        let svc = DebugService::new(&tel);
        let resp = svc.respond("GET /metrics HTTP/1.0", 0);
        let text = String::from_utf8_lossy(&resp);
        assert!(text.starts_with("HTTP/1.0 200 OK\r\n"));
        assert!(text.contains("Content-Length:"));
        let bad = svc.respond("POST /metrics HTTP/1.0", 0);
        assert!(String::from_utf8_lossy(&bad).starts_with("HTTP/1.0 400"));
    }
}
