//! The runtime telemetry fabric: per-thread spans, a flight recorder, a
//! metrics registry and a live introspection service.
//!
//! The paper's scheduler sees every thread as a trace tree (§3.1) — every
//! park, every syscall, every wait passes through its hands. This module
//! turns that visibility into an always-on observability layer, in the
//! shape of timely-dataflow's logging fabric: cheap typed event streams
//! the runtime emits and tooling consumes.
//!
//! * every monadic thread gets a **span**: id, parent (from `sys_fork`),
//!   an optional name set by the thread itself
//!   ([`sys_annotate`](crate::syscall::sys_annotate)), its live state and
//!   its accumulated per-kind wait time;
//! * lifecycle and wait events (spawn / park / reclass / wake / exit) are
//!   appended to a bounded [`FlightRecorder`] ring, snapshottable at any
//!   instant and exportable as a Chrome trace-event JSON
//!   ([`TraceExport::to_chrome_json`]) that loads in Perfetto /
//!   `chrome://tracing`;
//! * a [`metrics::Registry`] gives counters, gauges and histograms one
//!   source of truth with a text exposition format;
//! * [`DebugService`] serves `GET /metrics`, `GET /threads` and
//!   `GET /trace?last=N` over any `NetStack`, mountable beside any server.
//!
//! A [`Telemetry`] handle is attached to a runtime
//! (`SimRuntime::set_telemetry`, `Runtime::set_telemetry`); the runtime
//! then forwards its scheduler hooks here. Under the simulator every hook
//! receives the *same* virtual timestamps the `SimReport` accounting uses,
//! so per-span wait sums reconcile exactly with the report — and because
//! none of these paths charge the cost model, attaching telemetry never
//! perturbs virtual time (`SimReport`s stay byte-identical with the
//! recorder on or off).

pub mod chrome;
pub mod debug;
pub mod metrics;
pub mod recorder;

pub use chrome::TraceExport;
pub use debug::DebugService;
pub use recorder::{EventKind, FlightRecorder, TraceEvent};

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::engine::WaitKind;
use crate::time::Nanos;
use metrics::{Counter, Registry};

/// A span's scheduling state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanState {
    /// Runnable or running.
    Runnable,
    /// Blocked since `since` for `kind`.
    Parked {
        /// Why it is blocked.
        kind: WaitKind,
        /// When it blocked.
        since: Nanos,
    },
    /// Terminated at `at`.
    Exited {
        /// When it terminated.
        at: Nanos,
        /// True if it died with an uncaught exception.
        uncaught: bool,
    },
}

/// Everything the runtime knows about one monadic thread's lifetime.
#[derive(Debug, Clone)]
pub struct SpanInfo {
    /// The thread id.
    pub tid: u64,
    /// The forking thread (`None` for runtime-level spawns).
    pub parent: Option<u64>,
    /// The name the thread gave itself via `sys_annotate`, if any.
    pub name: Option<Arc<str>>,
    /// Current scheduling state.
    pub state: SpanState,
    /// When the current state was entered.
    pub state_since: Nanos,
    /// When the thread was spawned.
    pub spawned_at: Nanos,
    /// Accumulated readiness (`sys_epoll_wait`) wait.
    pub io_wait_ns: Nanos,
    /// Accumulated synchronization (`sys_park`) wait.
    pub lock_wait_ns: Nanos,
    /// Accumulated timer (`sys_sleep`) wait.
    pub timer_wait_ns: Nanos,
    /// Blocked episodes completed.
    pub wakes: u64,
}

impl SpanInfo {
    fn new(tid: u64, parent: Option<u64>, at: Nanos) -> Self {
        SpanInfo {
            tid,
            parent,
            name: None,
            state: SpanState::Runnable,
            state_since: at,
            spawned_at: at,
            io_wait_ns: 0,
            lock_wait_ns: 0,
            timer_wait_ns: 0,
            wakes: 0,
        }
    }

    /// One-word state label for tables.
    pub fn state_label(&self) -> &'static str {
        match self.state {
            SpanState::Runnable => "runnable",
            SpanState::Parked {
                kind: WaitKind::Io, ..
            } => "parked:io",
            SpanState::Parked {
                kind: WaitKind::Lock,
                ..
            } => "parked:lock",
            SpanState::Parked {
                kind: WaitKind::Timer,
                ..
            } => "parked:timer",
            SpanState::Exited {
                uncaught: false, ..
            } => "exited",
            SpanState::Exited { uncaught: true, .. } => "exited:uncaught",
        }
    }
}

type ExitSub = (Arc<str>, Box<dyn Fn(&SpanInfo) + Send + Sync>);

/// The telemetry hub a runtime forwards its scheduler hooks to.
///
/// Owns the span table, the flight recorder and the metrics registry.
/// Every hook takes the event time explicitly — the runtime passes the
/// same clock values its own accounting uses, which is what makes span
/// wait sums reconcile exactly with `SimReport` under simulation.
pub struct Telemetry {
    spans: Mutex<BTreeMap<u64, SpanInfo>>,
    recorder: FlightRecorder,
    registry: Arc<Registry>,
    io_wait_ns: Counter,
    lock_wait_ns: Counter,
    timer_wait_ns: Counter,
    spawned: Counter,
    exited: Counter,
    uncaught: Counter,
    wakes: Counter,
    exit_subs: Mutex<Vec<ExitSub>>,
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Telemetry(spans={}, events={}, dropped={})",
            self.spans.lock().len(),
            self.recorder.recorded(),
            self.recorder.dropped()
        )
    }
}

impl Telemetry {
    /// A hub with the default flight-recorder size (4 shards × 4096
    /// events).
    pub fn new() -> Arc<Self> {
        Self::with_recorder(4, 4096)
    }

    /// A hub with an explicit recorder geometry (see
    /// [`FlightRecorder::new`]).
    pub fn with_recorder(shards: usize, capacity_per_shard: usize) -> Arc<Self> {
        let registry = Registry::new();
        let t = Arc::new(Telemetry {
            spans: Mutex::new(BTreeMap::new()),
            recorder: FlightRecorder::new(shards, capacity_per_shard),
            io_wait_ns: registry.counter("eveth_runtime_io_wait_ns", &[]),
            lock_wait_ns: registry.counter("eveth_runtime_lock_wait_ns", &[]),
            timer_wait_ns: registry.counter("eveth_runtime_timer_wait_ns", &[]),
            spawned: registry.counter("eveth_runtime_threads_spawned", &[]),
            exited: registry.counter("eveth_runtime_threads_exited", &[]),
            uncaught: registry.counter("eveth_runtime_threads_uncaught", &[]),
            wakes: registry.counter("eveth_runtime_wakes", &[]),
            registry,
            exit_subs: Mutex::new(Vec::new()),
        });
        let w = Arc::downgrade(&t);
        t.registry
            .register_counter_fn("eveth_trace_events_recorded", &[], move || {
                w.upgrade().map_or(0, |t| t.recorder.recorded())
            });
        let w = Arc::downgrade(&t);
        t.registry
            .register_counter_fn("eveth_trace_events_dropped", &[], move || {
                w.upgrade().map_or(0, |t| t.recorder.dropped())
            });
        t
    }

    /// Registers the buffer fabric's process-wide counters on this hub's
    /// registry: copied payload bytes (`eveth_buf_bytes_copied_total`),
    /// refcounted buffers handed out, slab regions carved
    /// (`eveth_buf_slabs_total`), and the global pool's current free-list
    /// occupancy — so a `DebugService` `/metrics` page can answer "is the
    /// zero-copy path actually zero-copy" in production.
    ///
    /// Opt-in rather than automatic: the sources are process-global (the
    /// slab pool is shared by every runtime in the process), so exposing
    /// them couples a hub's `/metrics` body — and, in the simulator, the
    /// virtual time spent transmitting it — to allocator activity outside
    /// its own run. Deterministic-replay harnesses that diff byte-exact
    /// artifacts across same-process reruns should leave them off.
    pub fn register_buffer_pool_metrics(&self) {
        self.registry.register_counter_fn(
            "eveth_buf_bytes_copied_total",
            &[],
            bytes::bytes_copied_total,
        );
        self.registry.register_counter_fn(
            "eveth_buf_buffers_allocated_total",
            &[],
            bytes::buffers_allocated_total,
        );
        self.registry
            .register_counter_fn("eveth_buf_slabs_total", &[], bytes::slabs_carved_total);
        self.registry
            .register_gauge_fn("eveth_buf_pool_free_slabs", &[], || {
                bytes::BufferPool::global().free_slabs() as i64
            });
    }

    /// The metrics registry (share it with services and the debug
    /// endpoint).
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// The flight recorder.
    pub fn recorder(&self) -> &FlightRecorder {
        &self.recorder
    }

    /// Snapshot of every span (live and exited), ordered by thread id.
    pub fn spans(&self) -> Vec<SpanInfo> {
        self.spans.lock().values().cloned().collect()
    }

    /// Snapshot of one span.
    pub fn span(&self, tid: u64) -> Option<SpanInfo> {
        self.spans.lock().get(&tid).cloned()
    }

    /// Accumulated `(io, lock, timer)` wait across all spans — equals the
    /// `SimReport` wait split when attached to a `SimRuntime`.
    pub fn wait_totals(&self) -> (Nanos, Nanos, Nanos) {
        (
            self.io_wait_ns.get(),
            self.lock_wait_ns.get(),
            self.timer_wait_ns.get(),
        )
    }

    /// Subscribes to exits of spans named `name`: `f` runs with the final
    /// span (waits fully accumulated) whenever such a thread terminates.
    /// The hook a server uses to roll session span waits up into its
    /// per-service counters.
    pub fn on_span_exit(
        &self,
        name: impl Into<Arc<str>>,
        f: impl Fn(&SpanInfo) + Send + Sync + 'static,
    ) {
        self.exit_subs.lock().push((name.into(), Box::new(f)));
    }

    // ---- runtime hooks ---------------------------------------------------

    /// A thread was created.
    pub fn on_spawn(&self, now: Nanos, tid: u64, parent: Option<u64>) {
        self.spawned.incr();
        self.spans
            .lock()
            .insert(tid, SpanInfo::new(tid, parent, now));
        self.recorder.record(now, tid, EventKind::Spawn { parent });
    }

    /// A thread named itself.
    pub fn on_annotate(&self, now: Nanos, tid: u64, name: Arc<str>) {
        if let Some(span) = self.spans.lock().get_mut(&tid) {
            span.name = Some(Arc::clone(&name));
        }
        self.recorder.record(now, tid, EventKind::Annotate { name });
    }

    /// A thread blocked.
    pub fn on_park(&self, now: Nanos, tid: u64, kind: WaitKind) {
        if let Some(span) = self.spans.lock().get_mut(&tid) {
            span.state = SpanState::Parked { kind, since: now };
            span.state_since = now;
        }
        self.recorder.record(now, tid, EventKind::Park { kind });
    }

    /// A racing wait branch re-attributed the in-flight blocked episode.
    pub fn on_reclass(&self, now: Nanos, tid: u64, kind: WaitKind) {
        if let Some(span) = self.spans.lock().get_mut(&tid) {
            if let SpanState::Parked { kind: k, .. } = &mut span.state {
                *k = kind;
            }
        }
        self.recorder.record(now, tid, EventKind::Reclass { kind });
    }

    /// A blocked thread became runnable at `now` (the same instant the
    /// runtime's own wait accounting uses). No-op unless the span is
    /// parked.
    pub fn on_wake(&self, now: Nanos, tid: u64) {
        let woke = {
            let mut spans = self.spans.lock();
            match spans.get_mut(&tid) {
                Some(span) => {
                    if let SpanState::Parked { kind, since } = span.state {
                        let wait = now.saturating_sub(since);
                        match kind {
                            WaitKind::Io => span.io_wait_ns += wait,
                            WaitKind::Lock => span.lock_wait_ns += wait,
                            WaitKind::Timer => span.timer_wait_ns += wait,
                        }
                        span.wakes += 1;
                        span.state = SpanState::Runnable;
                        span.state_since = now;
                        Some((kind, wait))
                    } else {
                        None
                    }
                }
                None => None,
            }
        };
        if let Some((kind, wait)) = woke {
            match kind {
                WaitKind::Io => self.io_wait_ns.add(wait),
                WaitKind::Lock => self.lock_wait_ns.add(wait),
                WaitKind::Timer => self.timer_wait_ns.add(wait),
            }
            self.wakes.incr();
            self.recorder.record(
                now,
                tid,
                EventKind::Wake {
                    kind,
                    wait_ns: wait,
                },
            );
        }
    }

    /// A thread terminated. Exit subscriptions matching the span's name
    /// run with the final span; the span stays in the table (state
    /// `Exited`) so `/threads` and tree queries keep seeing it.
    pub fn on_exit(&self, now: Nanos, tid: u64, uncaught: bool) {
        self.exited.incr();
        if uncaught {
            self.uncaught.incr();
        }
        let finished = {
            let mut spans = self.spans.lock();
            match spans.get_mut(&tid) {
                Some(span) => {
                    span.state = SpanState::Exited { at: now, uncaught };
                    span.state_since = now;
                    Some(span.clone())
                }
                None => None,
            }
        };
        if let Some(span) = finished {
            if let Some(name) = &span.name {
                for (sub_name, f) in self.exit_subs.lock().iter() {
                    if sub_name == name {
                        f(&span);
                    }
                }
            }
        }
        self.recorder.record(now, tid, EventKind::Exit { uncaught });
    }

    // ---- renderings ------------------------------------------------------

    /// The live span table as text — one line per span, ordered by thread
    /// id (the `/threads` payload).
    pub fn threads_text(&self, now: Nanos) -> String {
        let mut out = String::new();
        for span in self.spans.lock().values() {
            let name = span.name.as_deref().unwrap_or("-");
            let _ = writeln!(
                out,
                "tid={} name={} state={} in_state_ns={} io_wait_ns={} lock_wait_ns={} \
                 timer_wait_ns={} wakes={} parent={}",
                span.tid,
                name,
                span.state_label(),
                now.saturating_sub(span.state_since),
                span.io_wait_ns,
                span.lock_wait_ns,
                span.timer_wait_ns,
                span.wakes,
                span.parent
                    .map(|p| p.to_string())
                    .unwrap_or_else(|| "-".into()),
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wake_attributes_wait_to_the_parked_kind() {
        let t = Telemetry::new();
        t.on_spawn(0, 1, None);
        t.on_park(10, 1, WaitKind::Io);
        t.on_wake(25, 1);
        t.on_park(30, 1, WaitKind::Lock);
        t.on_reclass(31, 1, WaitKind::Timer);
        t.on_wake(40, 1);
        let span = t.span(1).unwrap();
        assert_eq!(span.io_wait_ns, 15);
        // Reclass moves the whole episode (from the original park instant)
        // onto the new kind — exactly the runtime's accounting.
        assert_eq!(span.timer_wait_ns, 10, "reclass moved the episode");
        assert_eq!(span.lock_wait_ns, 0);
        assert_eq!(span.wakes, 2);
        assert_eq!(t.wait_totals(), (15, 0, 10));
    }

    #[test]
    fn wake_without_park_is_a_noop() {
        let t = Telemetry::new();
        t.on_spawn(0, 1, None);
        t.on_wake(5, 1);
        let span = t.span(1).unwrap();
        assert_eq!(span.wakes, 0);
        assert_eq!(t.wait_totals(), (0, 0, 0));
    }

    #[test]
    fn exit_subscriptions_fire_for_matching_names() {
        let t = Telemetry::new();
        let seen = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&seen);
        t.on_span_exit("session", move |span| {
            sink.lock().push((span.tid, span.io_wait_ns));
        });
        t.on_spawn(0, 1, None);
        t.on_annotate(1, 1, Arc::from("session"));
        t.on_park(2, 1, WaitKind::Io);
        t.on_wake(10, 1);
        t.on_exit(11, 1, false);
        // A differently-named span does not fire the subscription.
        t.on_spawn(0, 2, None);
        t.on_annotate(1, 2, Arc::from("other"));
        t.on_exit(2, 2, false);
        assert_eq!(seen.lock().clone(), vec![(1, 8)]);
        assert_eq!(t.span(1).unwrap().state_label(), "exited");
    }

    #[test]
    fn threads_text_lists_every_span() {
        let t = Telemetry::new();
        t.on_spawn(0, 1, None);
        t.on_spawn(5, 2, Some(1));
        t.on_annotate(6, 2, Arc::from("worker"));
        t.on_park(7, 2, WaitKind::Lock);
        let text = t.threads_text(20);
        assert!(text.contains("tid=1 name=- state=runnable in_state_ns=20"));
        assert!(text.contains("tid=2 name=worker state=parked:lock in_state_ns=13"));
        assert!(text.contains("parent=1"));
    }
}
