//! The socket abstraction network services program against.
//!
//! The paper's web server switches between the standard socket library and
//! the application-level TCP stack "by editing one line of code" (§5.2).
//! [`NetStack`] is that line: servers and clients are written against it,
//! and both the simulated kernel sockets (`eveth-simos`) and the
//! application-level TCP stack (`eveth-tcp`) implement it.

use std::fmt;
use std::sync::Arc;

use bytes::Bytes;

use crate::event::{choose, never, readiness_evt, sync, timeout_evt, Signal};
use crate::reactor::Interest;
use crate::thread::{loop_m, Loop, ThreadM};
use crate::time::Nanos;

/// Identifies a host on a (simulated) network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct HostId(pub u32);

impl fmt::Display for HostId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "host{}", self.0)
    }
}

/// A (host, port) pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Endpoint {
    /// The host.
    pub host: HostId,
    /// The port on that host.
    pub port: u16,
}

impl Endpoint {
    /// Convenience constructor.
    pub fn new(host: HostId, port: u16) -> Self {
        Endpoint { host, port }
    }
}

impl fmt::Display for Endpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.host, self.port)
    }
}

/// Errors reported by socket operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// No listener at the remote endpoint.
    ConnectionRefused,
    /// The connection was closed in an orderly fashion.
    Closed,
    /// The connection was reset by the peer.
    Reset,
    /// The operation timed out.
    Timeout,
    /// The local port is already bound.
    AddrInUse,
    /// The destination host cannot be reached.
    Unreachable,
    /// A protocol-level failure, with a description.
    Protocol(Arc<str>),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::ConnectionRefused => f.write_str("connection refused"),
            NetError::Closed => f.write_str("connection closed"),
            NetError::Reset => f.write_str("connection reset"),
            NetError::Timeout => f.write_str("operation timed out"),
            NetError::AddrInUse => f.write_str("address in use"),
            NetError::Unreachable => f.write_str("host unreachable"),
            NetError::Protocol(msg) => write!(f, "protocol error: {msg}"),
        }
    }
}

impl std::error::Error for NetError {}

/// A bidirectional byte-stream connection usable from monadic threads.
pub trait Conn: Send + Sync {
    /// Receives up to `max` bytes, blocking (the monadic thread) until data
    /// is available. An empty buffer signals end-of-stream.
    fn recv(&self, max: usize) -> ThreadM<Result<Bytes, NetError>>;

    /// The connection's readiness descriptor, if the transport exposes
    /// one. With it, a server races I/O against timers and shutdown
    /// signals in a single
    /// [`choose`](crate::event::choose):
    /// `readiness_evt(&fd, Interest::Read)` commits when `recv` would not
    /// block (data, EOF or error), after which `recv` completes promptly.
    /// Both bundled socket stacks return `Some`; `None` disables
    /// event-composed waiting (callers fall back to plain blocking
    /// `recv`).
    fn readiness_fd(&self) -> Option<crate::reactor::Fd> {
        None
    }

    /// Sends a prefix of `data`, blocking until at least one byte is
    /// accepted; returns the number of bytes taken.
    fn send(&self, data: Bytes) -> ThreadM<Result<usize, NetError>>;

    /// Closes the sending direction (further `recv`s by the peer will see
    /// end-of-stream once in-flight data drains).
    fn close(&self) -> ThreadM<()>;

    /// The remote endpoint.
    fn peer(&self) -> Endpoint;

    /// The local endpoint.
    fn local(&self) -> Endpoint;
}

/// A passive socket accepting inbound connections.
pub trait Listener: Send + Sync {
    /// Waits for and returns the next inbound connection.
    fn accept(&self) -> ThreadM<Result<Arc<dyn Conn>, NetError>>;

    /// The bound local endpoint.
    fn local(&self) -> Endpoint;

    /// Stops accepting; queued and future `accept`s fail with
    /// [`NetError::Closed`].
    fn shutdown(&self);
}

/// A per-host network stack: the "one line" a server changes to swap kernel
/// sockets for the application-level TCP stack.
pub trait NetStack: Send + Sync {
    /// Binds a listener on `port`.
    fn listen(&self, port: u16) -> ThreadM<Result<Arc<dyn Listener>, NetError>>;

    /// Opens a connection to `remote`.
    fn connect(&self, remote: Endpoint) -> ThreadM<Result<Arc<dyn Conn>, NetError>>;

    /// The host this stack belongs to.
    fn host(&self) -> HostId;
}

/// What ended a server session's composed wait: bytes (or stream
/// end/error), the idle deadline, or the shutdown broadcast.
#[derive(Debug)]
pub enum SessionInput {
    /// `recv` completed — a chunk, end-of-stream (empty), or a transport
    /// error.
    Data(Result<Bytes, NetError>),
    /// The connection stayed silent for the whole idle window.
    IdleTimeout,
    /// The server-wide shutdown signal fired.
    Shutdown,
}

/// A server session's single wait point, shared by every bundled service:
/// one [`choose`](crate::event::choose) over socket readiness, an
/// optional idle deadline (`idle_timeout`, `0` disables it) and a
/// shutdown broadcast — "receive OR time out OR shut down" as one
/// composed event, no helper threads.
///
/// Branch order is the deterministic tie-break and doubles as policy: at
/// equal virtual time, pending bytes beat shutdown beat the idle
/// deadline, so a shutting-down server still drains input that has
/// already arrived. Transports without a readiness descriptor
/// ([`Conn::readiness_fd`] returning `None`) fall back to plain blocking
/// `recv` — no idle reaping, and shutdown is only observed between
/// receives.
pub fn session_input(
    conn: &Arc<dyn Conn>,
    recv_chunk: usize,
    idle_timeout: Nanos,
    shutdown: &Signal,
) -> ThreadM<SessionInput> {
    let Some(fd) = conn.readiness_fd() else {
        return conn.recv(recv_chunk).map(SessionInput::Data);
    };
    #[derive(Clone, Copy)]
    enum Wake {
        Ready,
        Idle,
        Shutdown,
    }
    let idle = if idle_timeout > 0 {
        timeout_evt(idle_timeout)
    } else {
        never()
    };
    let conn = Arc::clone(conn);
    sync(choose(vec![
        readiness_evt(&fd, Interest::Read).wrap(|()| Wake::Ready),
        shutdown.wait_evt().wrap(|()| Wake::Shutdown),
        idle.wrap(|()| Wake::Idle),
    ]))
    .bind(move |wake| match wake {
        Wake::Ready => conn.recv(recv_chunk).map(SessionInput::Data),
        Wake::Idle => ThreadM::pure(SessionInput::IdleTimeout),
        Wake::Shutdown => ThreadM::pure(SessionInput::Shutdown),
    })
}

/// Sends all of `data`, looping over partial [`Conn::send`]s.
pub fn send_all(conn: &Arc<dyn Conn>, data: Bytes) -> ThreadM<Result<(), NetError>> {
    let conn = Arc::clone(conn);
    loop_m(data, move |remaining| {
        if remaining.is_empty() {
            return ThreadM::pure(Loop::Break(Ok(())));
        }
        let rest = remaining.clone();
        conn.send(remaining).map(move |r| match r {
            Ok(n) => {
                let rest = rest.slice(n..);
                if rest.is_empty() {
                    Loop::Break(Ok(()))
                } else {
                    Loop::Continue(rest)
                }
            }
            Err(e) => Loop::Break(Err(e)),
        })
    })
}

/// Receives exactly `n` bytes; fails with [`NetError::Closed`] if the stream
/// ends early.
pub fn recv_exact(conn: &Arc<dyn Conn>, n: usize) -> ThreadM<Result<Bytes, NetError>> {
    let conn = Arc::clone(conn);
    loop_m(Vec::with_capacity(n), move |mut acc| {
        if acc.len() == n {
            return ThreadM::pure(Loop::Break(Ok(Bytes::from(acc))));
        }
        let want = n - acc.len();
        conn.recv(want).map(move |r| match r {
            Ok(chunk) if chunk.is_empty() => Loop::Break(Err(NetError::Closed)),
            Ok(chunk) => {
                acc.extend_from_slice(&chunk);
                if acc.len() == n {
                    Loop::Break(Ok(Bytes::from(acc)))
                } else {
                    Loop::Continue(acc)
                }
            }
            Err(e) => Loop::Break(Err(e)),
        })
    })
}

/// Receives until end-of-stream, up to `limit` bytes.
pub fn recv_to_end(conn: &Arc<dyn Conn>, limit: usize) -> ThreadM<Result<Bytes, NetError>> {
    let conn = Arc::clone(conn);
    loop_m(Vec::new(), move |mut acc| {
        if acc.len() >= limit {
            return ThreadM::pure(Loop::Break(Ok(Bytes::from(acc))));
        }
        let want = (limit - acc.len()).min(64 * 1024);
        conn.recv(want).map(move |r| match r {
            Ok(chunk) if chunk.is_empty() => Loop::Break(Ok(Bytes::from(acc))),
            Ok(chunk) => {
                acc.extend_from_slice(&chunk);
                Loop::Continue(acc)
            }
            Err(NetError::Closed) => Loop::Break(Ok(Bytes::from(acc))),
            Err(e) => Loop::Break(Err(e)),
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoint_display() {
        let e = Endpoint::new(HostId(3), 80);
        assert_eq!(e.to_string(), "host3:80");
    }

    #[test]
    fn net_error_display() {
        assert_eq!(NetError::Closed.to_string(), "connection closed");
        assert_eq!(
            NetError::Protocol("bad segment".into()).to_string(),
            "protocol error: bad segment"
        );
    }

    #[test]
    fn endpoint_ordering_is_total() {
        let a = Endpoint::new(HostId(1), 2);
        let b = Endpoint::new(HostId(1), 3);
        let c = Endpoint::new(HostId(2), 0);
        assert!(a < b && b < c);
    }
}
