//! The socket abstraction network services program against.
//!
//! The paper's web server switches between the standard socket library and
//! the application-level TCP stack "by editing one line of code" (§5.2).
//! [`NetStack`] is that line: servers and clients are written against it,
//! and both the simulated kernel sockets (`eveth-simos`) and the
//! application-level TCP stack (`eveth-tcp`) implement it.

use std::fmt;
use std::sync::Arc;

use bytes::Bytes;

use crate::engine::WaitKind;
use crate::event::{
    branch_waiter, choose, never, readiness_evt, sync, timeout_evt, Branch, Event, Registration,
    Signal,
};
use crate::reactor::{AcceptQueue, Interest};
use crate::sync::Chan;
use crate::syscall::{sys_fork, sys_time};
use crate::thread::{loop_m, Loop, ThreadM};
use crate::time::Nanos;

/// Identifies a host on a (simulated) network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct HostId(pub u32);

impl fmt::Display for HostId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "host{}", self.0)
    }
}

/// A (host, port) pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Endpoint {
    /// The host.
    pub host: HostId,
    /// The port on that host.
    pub port: u16,
}

impl Endpoint {
    /// Convenience constructor.
    pub fn new(host: HostId, port: u16) -> Self {
        Endpoint { host, port }
    }
}

impl fmt::Display for Endpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.host, self.port)
    }
}

/// Errors reported by socket operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// No listener at the remote endpoint.
    ConnectionRefused,
    /// The connection was closed in an orderly fashion.
    Closed,
    /// The connection was reset by the peer.
    Reset,
    /// The operation timed out.
    Timeout,
    /// The local port is already bound.
    AddrInUse,
    /// The destination host cannot be reached.
    Unreachable,
    /// A protocol-level failure, with a description.
    Protocol(Arc<str>),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::ConnectionRefused => f.write_str("connection refused"),
            NetError::Closed => f.write_str("connection closed"),
            NetError::Reset => f.write_str("connection reset"),
            NetError::Timeout => f.write_str("operation timed out"),
            NetError::AddrInUse => f.write_str("address in use"),
            NetError::Unreachable => f.write_str("host unreachable"),
            NetError::Protocol(msg) => write!(f, "protocol error: {msg}"),
        }
    }
}

impl std::error::Error for NetError {}

/// A bidirectional byte-stream connection usable from monadic threads.
pub trait Conn: Send + Sync {
    /// Receives up to `max` bytes, blocking (the monadic thread) until data
    /// is available. An empty buffer signals end-of-stream.
    fn recv(&self, max: usize) -> ThreadM<Result<Bytes, NetError>>;

    /// The connection's readiness descriptor, if the transport exposes
    /// one. With it, a server races I/O against timers and shutdown
    /// signals in a single
    /// [`choose`]:
    /// `readiness_evt(&fd, Interest::Read)` commits when `recv` would not
    /// block (data, EOF or error), after which `recv` completes promptly.
    /// Both bundled socket stacks return `Some`; `None` disables
    /// event-composed waiting (callers fall back to plain blocking
    /// `recv`).
    fn readiness_fd(&self) -> Option<crate::reactor::Fd> {
        None
    }

    /// Sends a prefix of `data`, blocking until at least one byte is
    /// accepted; returns the number of bytes taken.
    fn send(&self, data: Bytes) -> ThreadM<Result<usize, NetError>>;

    /// Gather-write: sends a prefix of the concatenation of `bufs`,
    /// blocking until at least one byte is accepted; returns the number
    /// of bytes taken (counted across buffers, in order). The vectored
    /// reply path queues each reply as refcounted windows and ships a
    /// whole pipelined batch through one call — no flattening copy.
    ///
    /// The default implementation degrades to [`Conn::send`] on the first
    /// non-empty buffer (correct, one buffer per wakeup); both bundled
    /// socket stacks override it to take bytes from every buffer in one
    /// transport pass. Returns `Ok(0)` only when every buffer is empty.
    fn sendv(&self, bufs: Vec<Bytes>) -> ThreadM<Result<usize, NetError>> {
        match bufs.into_iter().find(|b| !b.is_empty()) {
            Some(first) => self.send(first),
            None => ThreadM::pure(Ok(0)),
        }
    }

    /// The send-side event: ready when `send` would accept at least one
    /// byte without blocking (window space, peer close, or error), so a
    /// write can race timers and shutdown broadcasts in one
    /// [`choose`] instead of committing to a
    /// blocking `send` against a zero-window peer — see
    /// [`send_all_within`]. Derived from [`Conn::readiness_fd`]; `None`
    /// on transports without a readiness descriptor. Like
    /// [`readiness_evt`], a commit is a level-style hint: perform the
    /// actual `send` afterwards.
    fn send_evt(&self) -> Option<Event<()>> {
        self.readiness_fd()
            .map(|fd| readiness_evt(&fd, Interest::Write))
    }

    /// Closes the sending direction (further `recv`s by the peer will see
    /// end-of-stream once in-flight data drains).
    ///
    /// Transports without a readiness descriptor should also complete any
    /// *pending local* `recv` with [`NetError::Closed`] once the
    /// connection is fully closed: the fd-less receive pump of
    /// [`SessionIo`] sits in a blocking `recv`, and close waking it is
    /// what lets the pump observe its stop signal and exit instead of
    /// blocking forever on a connection nobody will write to again.
    fn close(&self) -> ThreadM<()>;

    /// The remote endpoint.
    fn peer(&self) -> Endpoint;

    /// The local endpoint.
    fn local(&self) -> Endpoint;
}

/// A passive socket accepting inbound connections.
pub trait Listener: Send + Sync {
    /// The accept event: commits by dequeuing the next inbound connection
    /// from the backlog (or with [`NetError::Closed`] once the listener is
    /// shut down). Because accepting is an event, an acceptor thread
    /// composes it with a shutdown broadcast — or anything else — in one
    /// [`choose`], with no listener-closing
    /// supervisor thread. A win is charged as I/O wait.
    ///
    /// Implementations over a reactor [`AcceptQueue`] can delegate to
    /// [`queue_accept_evt`].
    fn accept_evt(&self) -> Event<Result<Arc<dyn Conn>, NetError>>;

    /// Waits for and returns the next inbound connection — the thread
    /// view of [`Listener::accept_evt`]: literally
    /// `sync(self.accept_evt())`.
    fn accept(&self) -> ThreadM<Result<Arc<dyn Conn>, NetError>> {
        sync(self.accept_evt())
    }

    /// The bound local endpoint.
    fn local(&self) -> Endpoint;

    /// Stops accepting; queued and future `accept`s fail with
    /// [`NetError::Closed`].
    fn shutdown(&self);
}

/// Builds a [`Listener::accept_evt`] implementation over a reactor
/// [`AcceptQueue`]: the event polls the backlog (pop wins; a closed,
/// drained backlog commits [`NetError::Closed`]) and parks accept waiters
/// with the queue otherwise. Both bundled socket stacks' listeners are
/// this event with `convert` casting their concrete connection type to
/// `Arc<dyn Conn>`.
pub fn queue_accept_evt<T, A>(
    queue: Arc<AcceptQueue<T>>,
    convert: impl Fn(T) -> A + Send + Sync + 'static,
) -> Event<Result<A, NetError>>
where
    T: Send + 'static,
    A: Send + 'static,
{
    Event::from_fn(move |_t0, out| {
        let poll_q = Arc::clone(&queue);
        out.push(Branch::new(
            WaitKind::Io,
            move |_now| {
                // Still-queued connections stay acceptable after close,
                // matching the blocking accept loops this replaces.
                if let Some(c) = poll_q.pop() {
                    return Some(Ok(convert(c)));
                }
                poll_q.is_closed().then_some(Err(NetError::Closed))
            },
            move |u| {
                queue.register(branch_waiter(u, WaitKind::Io));
                // Backlog pushes wake *all* registered acceptors and the
                // wait list prunes spent entries, so losing branches
                // neither leak waiters nor consume a wakeup budget — no
                // baton needed.
                Registration::none()
            },
        ));
    })
}

/// A per-host network stack: the "one line" a server changes to swap kernel
/// sockets for the application-level TCP stack.
pub trait NetStack: Send + Sync {
    /// Binds a listener on `port`.
    fn listen(&self, port: u16) -> ThreadM<Result<Arc<dyn Listener>, NetError>>;

    /// Opens a connection to `remote`.
    fn connect(&self, remote: Endpoint) -> ThreadM<Result<Arc<dyn Conn>, NetError>>;

    /// The host this stack belongs to.
    fn host(&self) -> HostId;
}

/// What ended a server session's composed wait: bytes (or stream
/// end/error), the idle deadline, or the shutdown broadcast.
#[derive(Debug)]
pub enum SessionInput {
    /// `recv` completed — a chunk, end-of-stream (empty), or a transport
    /// error.
    Data(Result<Bytes, NetError>),
    /// The connection stayed silent for the whole idle window.
    IdleTimeout,
    /// The server-wide shutdown signal fired.
    Shutdown,
}

/// A server session's single wait point, shared by every bundled service:
/// one [`choose`] over socket readiness, an
/// optional idle deadline (`idle_timeout`, `0` disables it) and a
/// shutdown broadcast — "receive OR time out OR shut down" as one
/// composed event, no helper threads.
///
/// Branch order is the deterministic tie-break and doubles as policy: at
/// equal virtual time, pending bytes beat shutdown beat the idle
/// deadline, so a shutting-down server still drains input that has
/// already arrived.
///
/// # Transports without a readiness descriptor
///
/// When [`Conn::readiness_fd`] is `None` the receive itself cannot join
/// the `choose`. The fallback is explicit rather than silent:
///
/// * with `idle_timeout == 0`, the call degrades to a plain blocking
///   `recv` — no idle reaping, and shutdown is observed only between
///   receives;
/// * with `idle_timeout > 0`, the blocking `recv` is pumped through a
///   one-shot helper thread and its completion channel races a
///   *timer-only* `choose` (idle deadline + shutdown broadcast), so both
///   deadlines are still honored exactly. If the deadline or the
///   broadcast wins, the in-flight `recv` is abandoned and its eventual
///   result discarded. Because the helper is forked per *call*, a session
///   that ends on one of those outcomes strands it, blocked in `recv`
///   forever — one leaked thread per reaped connection. Servers therefore
///   use [`SessionIo`], which keeps a single cancellable pump for the
///   whole session; this free function remains for one-shot waits where
///   the session owns the connection's full lifetime.
pub fn session_input(
    conn: &Arc<dyn Conn>,
    recv_chunk: usize,
    idle_timeout: Nanos,
    shutdown: &Signal,
) -> ThreadM<SessionInput> {
    let Some(fd) = conn.readiness_fd() else {
        if idle_timeout == 0 {
            return conn.recv(recv_chunk).map(SessionInput::Data);
        }
        let pump: Chan<Result<Bytes, NetError>> = Chan::new();
        let tx = pump.clone();
        let recv = Arc::clone(conn);
        let shutdown = shutdown.clone();
        return sys_fork(recv.recv(recv_chunk).bind(move |r| tx.write(r))).bind(move |_| {
            sync(choose(vec![
                pump.read_evt().wrap(SessionInput::Data),
                shutdown.wait_evt().wrap(|()| SessionInput::Shutdown),
                timeout_evt(idle_timeout).wrap(|()| SessionInput::IdleTimeout),
            ]))
        });
    };
    #[derive(Clone, Copy)]
    enum Wake {
        Ready,
        Idle,
        Shutdown,
    }
    let idle = if idle_timeout > 0 {
        timeout_evt(idle_timeout)
    } else {
        never()
    };
    let conn = Arc::clone(conn);
    sync(choose(vec![
        readiness_evt(&fd, Interest::Read).wrap(|()| Wake::Ready),
        shutdown.wait_evt().wrap(|()| Wake::Shutdown),
        idle.wrap(|()| Wake::Idle),
    ]))
    .bind(move |wake| match wake {
        Wake::Ready => conn.recv(recv_chunk).map(SessionInput::Data),
        Wake::Idle => ThreadM::pure(SessionInput::IdleTimeout),
        Wake::Shutdown => ThreadM::pure(SessionInput::Shutdown),
    })
}

/// A session's input endpoint: [`session_input`] composed once per
/// *session* instead of once per call.
///
/// For fd-backed transports (and fd-less ones with no idle deadline) this
/// is exactly the free function — nothing is forked, so nothing can leak.
/// The difference is the fd-less fallback with an idle deadline: the free
/// function forks a fresh receive helper on every call and strands it
/// when the deadline or the shutdown broadcast wins, leaking one
/// permanently-blocked thread per idle-reaped connection. `SessionIo`
/// forks **one** pump, lazily on the first wait, reuses its completion
/// channel across every subsequent [`input`](SessionIo::input), and tells
/// it to stop via [`finish`](SessionIo::finish) (also fired on drop, so
/// an exception that unwinds the session loop still releases the pump).
///
/// The pump can only exit from a blocking `recv` when that `recv`
/// completes, which is why [`Conn::close`] on fd-less transports must
/// complete pending receives with [`NetError::Closed`]: session end fires
/// the stop signal, closes the connection, the pending `recv` returns,
/// and the pump sees the signal and exits.
pub struct SessionIo {
    conn: Arc<dyn Conn>,
    recv_chunk: usize,
    idle_timeout: Nanos,
    shutdown: Signal,
    /// The pump's completion channel, created (and the pump forked) by
    /// the first fd-less wait. Only the single session thread locks it.
    pump: parking_lot::Mutex<Option<Chan<Result<Bytes, NetError>>>>,
    /// Fired when the session ends; the pump re-checks it after every
    /// delivery and exits instead of issuing another `recv`.
    stop: Signal,
}

impl SessionIo {
    /// A session-lifetime input endpoint over `conn`. Parameters mirror
    /// [`session_input`]; `idle_timeout == 0` disables idle reaping.
    pub fn new(
        conn: Arc<dyn Conn>,
        recv_chunk: usize,
        idle_timeout: Nanos,
        shutdown: Signal,
    ) -> Arc<Self> {
        Arc::new(SessionIo {
            conn,
            recv_chunk,
            idle_timeout,
            shutdown,
            pump: parking_lot::Mutex::new(None),
            stop: Signal::new(),
        })
    }

    /// One composed wait: "receive OR time out OR shut down", exactly as
    /// [`session_input`], but any helper thread it needs is per-session.
    pub fn input(self: &Arc<Self>) -> ThreadM<SessionInput> {
        if self.idle_timeout == 0 || self.conn.readiness_fd().is_some() {
            return session_input(
                &self.conn,
                self.recv_chunk,
                self.idle_timeout,
                &self.shutdown,
            );
        }
        // Fd-less with an idle deadline: race the session-lifetime pump's
        // completion channel against the timer-only choose. The channel
        // persists across calls, so a chunk the pump delivers while a
        // previous wait committed elsewhere is picked up by the next wait
        // rather than lost.
        let (rx, start) = {
            let mut pump = self.pump.lock();
            match &*pump {
                Some(c) => (c.clone(), None),
                None => {
                    let c: Chan<Result<Bytes, NetError>> = Chan::new();
                    *pump = Some(c.clone());
                    let body = pump_loop(
                        Arc::clone(&self.conn),
                        self.recv_chunk,
                        self.stop.clone(),
                        c.clone(),
                    );
                    (c, Some(body))
                }
            }
        };
        let shutdown = self.shutdown.clone();
        let idle_timeout = self.idle_timeout;
        let wait = sync(choose(vec![
            rx.read_evt().wrap(SessionInput::Data),
            shutdown.wait_evt().wrap(|()| SessionInput::Shutdown),
            timeout_evt(idle_timeout).wrap(|()| SessionInput::IdleTimeout),
        ]));
        match start {
            Some(body) => sys_fork(body).bind(move |_| wait),
            None => wait,
        }
    }

    /// Signals the pump (if one was forked) to exit. Idempotent; call on
    /// every session-end path *before* closing the connection, so the
    /// close-completed `recv` is the pump's last.
    pub fn finish(&self) {
        self.stop.fire();
    }

    /// True once a pump has been forked for this session (at most one,
    /// ever — the regression surface of the per-call leak).
    pub fn pump_forked(&self) -> bool {
        self.pump.lock().is_some()
    }
}

impl Drop for SessionIo {
    fn drop(&mut self) {
        // Backstop for sessions abandoned without reaching a clean end
        // path (an exception unwound the loop): still release the pump.
        self.stop.fire();
    }
}

impl fmt::Debug for SessionIo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "SessionIo(idle={}, pump_forked={}, finished={})",
            self.idle_timeout,
            self.pump_forked(),
            self.stop.is_fired()
        )
    }
}

/// The session-lifetime receive pump: blocking `recv`s forwarded into the
/// completion channel until end-of-stream, a transport error, or the
/// session's stop signal.
fn pump_loop(
    conn: Arc<dyn Conn>,
    recv_chunk: usize,
    stop: Signal,
    tx: Chan<Result<Bytes, NetError>>,
) -> ThreadM<()> {
    loop_m((), move |()| {
        if stop.is_fired() {
            return ThreadM::pure(Loop::Break(()));
        }
        let tx = tx.clone();
        let stop = stop.clone();
        conn.recv(recv_chunk).bind(move |r| {
            // EOF and errors are terminal for the connection, so they are
            // terminal for the pump too — no further recv can succeed.
            let terminal = match &r {
                Ok(chunk) => chunk.is_empty(),
                Err(_) => true,
            };
            // The channel is unbounded, so this never blocks: the only
            // place the pump parks is the recv above, which Conn::close
            // completes.
            tx.write(r).map(move |()| {
                if terminal || stop.is_fired() {
                    Loop::Break(())
                } else {
                    Loop::Continue(())
                }
            })
        })
    })
}

/// Sends all of `data`, looping over partial [`Conn::send`]s.
pub fn send_all(conn: &Arc<dyn Conn>, data: Bytes) -> ThreadM<Result<(), NetError>> {
    let conn = Arc::clone(conn);
    loop_m(data, move |remaining| {
        if remaining.is_empty() {
            return ThreadM::pure(Loop::Break(Ok(())));
        }
        let rest = remaining.clone();
        conn.send(remaining).map(move |r| match r {
            Ok(n) => {
                let rest = rest.slice(n..);
                if rest.is_empty() {
                    Loop::Break(Ok(()))
                } else {
                    Loop::Continue(rest)
                }
            }
            Err(e) => Loop::Break(Err(e)),
        })
    })
}

/// Drops `n` accepted bytes from the front of the segment list: consumed
/// buffers are removed, a partially consumed head is advanced O(1) (the
/// windows share their regions; nothing is copied).
fn advance_bufs(bufs: &mut Vec<Bytes>, mut n: usize) {
    let mut drop_prefix = 0;
    for b in bufs.iter_mut() {
        if n == 0 && !b.is_empty() {
            break;
        }
        let take = n.min(b.len());
        if take > 0 {
            *b = b.slice(take..);
            n -= take;
        }
        if b.is_empty() {
            drop_prefix += 1;
        } else {
            break;
        }
    }
    bufs.drain(..drop_prefix);
}

/// Sends every byte of every buffer, looping over partial
/// [`Conn::sendv`]s — the vectored [`send_all`]. Buffer windows are
/// advanced in place; no flattening copy is ever made.
pub fn send_all_vectored(
    conn: &Arc<dyn Conn>,
    mut bufs: Vec<Bytes>,
) -> ThreadM<Result<(), NetError>> {
    let conn = Arc::clone(conn);
    bufs.retain(|b| !b.is_empty());
    loop_m(bufs, move |mut remaining| {
        if remaining.is_empty() {
            return ThreadM::pure(Loop::Break(Ok(())));
        }
        let attempt = remaining.clone();
        conn.sendv(attempt).map(move |r| match r {
            Ok(n) => {
                advance_bufs(&mut remaining, n);
                if remaining.is_empty() {
                    Loop::Break(Ok(()))
                } else {
                    Loop::Continue(remaining)
                }
            }
            Err(e) => Loop::Break(Err(e)),
        })
    })
}

/// What ended a [`send_all_within`] composed write: completion (or a
/// transport error), the deadline, or the shutdown broadcast.
#[derive(Debug)]
pub enum SendInput {
    /// The transfer finished: every byte was accepted, or the transport
    /// failed.
    Done(Result<(), NetError>),
    /// The deadline passed with bytes still unsent (a zero-window or
    /// pathologically slow peer).
    Timeout,
    /// The shutdown broadcast fired with bytes still unsent.
    Shutdown,
}

/// Sends all of `data` like [`send_all`], but as a composed event wait:
/// each round is one [`choose`] over write
/// readiness ([`Conn::send_evt`]), an overall deadline (`timeout`
/// nanoseconds from the start; `0` disables it) and a shutdown
/// broadcast — so a server never commits to a blocking `send` against a
/// zero-window peer that will stall shutdown forever.
///
/// Branch order mirrors [`session_input`]: at equal virtual time,
/// writability beats shutdown beats the deadline, so already-possible
/// progress is made even while shutting down. Transports without a
/// readiness descriptor fall back — explicitly — to the plain blocking
/// [`send_all`], where neither the deadline nor the broadcast can
/// interrupt a stalled write.
pub fn send_all_within(
    conn: &Arc<dyn Conn>,
    data: Bytes,
    timeout: Nanos,
    shutdown: &Signal,
) -> ThreadM<SendInput> {
    let Some(fd) = conn.readiness_fd() else {
        return send_all(conn, data).map(SendInput::Done);
    };
    enum Wake {
        Writable,
        Timeout,
        Shutdown,
    }
    let conn = Arc::clone(conn);
    let shutdown = shutdown.clone();
    sys_time().bind(move |t0| {
        let deadline = (timeout > 0).then(|| t0.saturating_add(timeout));
        loop_m(data, move |remaining| {
            if remaining.is_empty() {
                return ThreadM::pure(Loop::Break(SendInput::Done(Ok(()))));
            }
            let conn = Arc::clone(&conn);
            let fd = fd.clone();
            let shutdown = shutdown.clone();
            sys_time().bind(move |now| {
                let deadline_evt = match deadline {
                    Some(d) => timeout_evt(d.saturating_sub(now)),
                    None => never(),
                };
                sync(choose(vec![
                    readiness_evt(&fd, Interest::Write).wrap(|()| Wake::Writable),
                    shutdown.wait_evt().wrap(|()| Wake::Shutdown),
                    deadline_evt.wrap(|()| Wake::Timeout),
                ]))
                .bind(move |wake| match wake {
                    Wake::Timeout => ThreadM::pure(Loop::Break(SendInput::Timeout)),
                    Wake::Shutdown => ThreadM::pure(Loop::Break(SendInput::Shutdown)),
                    Wake::Writable => conn.send(remaining.clone()).map(move |r| match r {
                        Ok(n) => {
                            let rest = remaining.slice(n..);
                            if rest.is_empty() {
                                Loop::Break(SendInput::Done(Ok(())))
                            } else {
                                Loop::Continue(rest)
                            }
                        }
                        Err(e) => Loop::Break(SendInput::Done(Err(e))),
                    }),
                })
            })
        })
    })
}

/// Sends every byte of every buffer like [`send_all_vectored`], but as a
/// composed event wait — the vectored [`send_all_within`]: each round is
/// one [`choose`] over write readiness, an overall deadline (`timeout`
/// nanoseconds from the start; `0` disables it) and a shutdown broadcast.
/// Branch order matches [`send_all_within`]; transports without a
/// readiness descriptor fall back to the blocking [`send_all_vectored`].
pub fn send_all_within_vectored(
    conn: &Arc<dyn Conn>,
    mut bufs: Vec<Bytes>,
    timeout: Nanos,
    shutdown: &Signal,
) -> ThreadM<SendInput> {
    let Some(fd) = conn.readiness_fd() else {
        return send_all_vectored(conn, bufs).map(SendInput::Done);
    };
    enum Wake {
        Writable,
        Timeout,
        Shutdown,
    }
    let conn = Arc::clone(conn);
    let shutdown = shutdown.clone();
    bufs.retain(|b| !b.is_empty());
    sys_time().bind(move |t0| {
        let deadline = (timeout > 0).then(|| t0.saturating_add(timeout));
        loop_m(bufs, move |mut remaining| {
            if remaining.is_empty() {
                return ThreadM::pure(Loop::Break(SendInput::Done(Ok(()))));
            }
            let conn = Arc::clone(&conn);
            let fd = fd.clone();
            let shutdown = shutdown.clone();
            sys_time().bind(move |now| {
                let deadline_evt = match deadline {
                    Some(d) => timeout_evt(d.saturating_sub(now)),
                    None => never(),
                };
                sync(choose(vec![
                    readiness_evt(&fd, Interest::Write).wrap(|()| Wake::Writable),
                    shutdown.wait_evt().wrap(|()| Wake::Shutdown),
                    deadline_evt.wrap(|()| Wake::Timeout),
                ]))
                .bind(move |wake| match wake {
                    Wake::Timeout => ThreadM::pure(Loop::Break(SendInput::Timeout)),
                    Wake::Shutdown => ThreadM::pure(Loop::Break(SendInput::Shutdown)),
                    Wake::Writable => {
                        let attempt = remaining.clone();
                        conn.sendv(attempt).map(move |r| match r {
                            Ok(n) => {
                                advance_bufs(&mut remaining, n);
                                if remaining.is_empty() {
                                    Loop::Break(SendInput::Done(Ok(())))
                                } else {
                                    Loop::Continue(remaining)
                                }
                            }
                            Err(e) => Loop::Break(SendInput::Done(Err(e))),
                        })
                    }
                })
            })
        })
    })
}

/// Receives exactly `n` bytes; fails with [`NetError::Closed`] if the stream
/// ends early.
pub fn recv_exact(conn: &Arc<dyn Conn>, n: usize) -> ThreadM<Result<Bytes, NetError>> {
    let conn = Arc::clone(conn);
    loop_m(Vec::with_capacity(n), move |mut acc| {
        if acc.len() == n {
            return ThreadM::pure(Loop::Break(Ok(Bytes::from(acc))));
        }
        let want = n - acc.len();
        conn.recv(want).map(move |r| match r {
            Ok(chunk) if chunk.is_empty() => Loop::Break(Err(NetError::Closed)),
            Ok(chunk) => {
                acc.extend_from_slice(&chunk);
                if acc.len() == n {
                    Loop::Break(Ok(Bytes::from(acc)))
                } else {
                    Loop::Continue(acc)
                }
            }
            Err(e) => Loop::Break(Err(e)),
        })
    })
}

/// Receives until end-of-stream, up to `limit` bytes.
pub fn recv_to_end(conn: &Arc<dyn Conn>, limit: usize) -> ThreadM<Result<Bytes, NetError>> {
    let conn = Arc::clone(conn);
    loop_m(Vec::new(), move |mut acc| {
        if acc.len() >= limit {
            return ThreadM::pure(Loop::Break(Ok(Bytes::from(acc))));
        }
        let want = (limit - acc.len()).min(64 * 1024);
        conn.recv(want).map(move |r| match r {
            Ok(chunk) if chunk.is_empty() => Loop::Break(Ok(Bytes::from(acc))),
            Ok(chunk) => {
                acc.extend_from_slice(&chunk);
                Loop::Continue(acc)
            }
            Err(NetError::Closed) => Loop::Break(Ok(Bytes::from(acc))),
            Err(e) => Loop::Break(Err(e)),
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoint_display() {
        let e = Endpoint::new(HostId(3), 80);
        assert_eq!(e.to_string(), "host3:80");
    }

    #[test]
    fn net_error_display() {
        assert_eq!(NetError::Closed.to_string(), "connection closed");
        assert_eq!(
            NetError::Protocol("bad segment".into()).to_string(),
            "protocol error: bad segment"
        );
    }

    #[test]
    fn advance_bufs_drops_consumed_windows() {
        let mut bufs = vec![
            Bytes::from_static(b"abc"),
            Bytes::from_static(b""),
            Bytes::from_static(b"defgh"),
            Bytes::from_static(b"ij"),
        ];
        advance_bufs(&mut bufs, 5);
        assert_eq!(bufs.len(), 2);
        assert_eq!(&bufs[0][..], b"fgh");
        assert_eq!(&bufs[1][..], b"ij");
        advance_bufs(&mut bufs, 0);
        assert_eq!(bufs.len(), 2);
        advance_bufs(&mut bufs, 5);
        assert!(bufs.is_empty());
    }

    #[test]
    fn endpoint_ordering_is_total() {
        let a = Endpoint::new(HostId(1), 2);
        let b = Endpoint::new(HostId(1), 3);
        let c = Endpoint::new(HostId(2), 0);
        assert!(a < b && b < c);
    }
}
