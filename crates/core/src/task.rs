//! Tasks: the scheduler's unit of work.
//!
//! A [`Task`] is a suspended monadic thread — its next trace thunk plus the
//! per-thread state the scheduler maintains for it (its identifier and its
//! stack of exception handlers, paper §4.3). Tasks travel through ready
//! queues, device waiter lists and timer wheels.

use std::fmt;

use crate::thread::ThreadM;
use crate::trace::{HandlerFn, Thunk};

/// Identifier of a monadic thread, unique within one runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TaskId(pub u64);

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "thread-{}", self.0)
    }
}

/// Scheduler-side per-thread state: the thread id and the exception-handler
/// stack. Everything else about a thread lives in its continuation closures.
pub struct TaskShell {
    tid: TaskId,
    catch: Vec<HandlerFn>,
}

impl TaskShell {
    /// Creates a fresh shell with an empty handler stack.
    pub fn new(tid: TaskId) -> Self {
        TaskShell {
            tid,
            catch: Vec::new(),
        }
    }

    /// The thread's identifier.
    pub fn tid(&self) -> TaskId {
        self.tid
    }

    /// Pushes an exception handler frame (`SYS_CATCH`).
    pub fn push_handler(&mut self, h: HandlerFn) {
        self.catch.push(h);
    }

    /// Pops the innermost handler frame, if any.
    pub fn pop_handler(&mut self) -> Option<HandlerFn> {
        self.catch.pop()
    }

    /// Number of installed handler frames.
    pub fn handler_depth(&self) -> usize {
        self.catch.len()
    }
}

impl fmt::Debug for TaskShell {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TaskShell")
            .field("tid", &self.tid)
            .field("handlers", &self.catch.len())
            .finish()
    }
}

/// A runnable (or parked) monadic thread: shell + next trace thunk.
pub struct Task {
    shell: TaskShell,
    next: Thunk,
}

impl Task {
    /// Wraps a whole monadic program as a new task.
    pub fn from_thread(tid: TaskId, m: ThreadM<()>) -> Self {
        Task {
            shell: TaskShell::new(tid),
            next: Box::new(move || m.into_trace()),
        }
    }

    /// Builds a task from an existing shell and continuation thunk (used
    /// when resuming a parked thread).
    pub fn from_parts(shell: TaskShell, next: Thunk) -> Self {
        Task { shell, next }
    }

    /// Creates a fresh task from a raw thunk.
    pub fn from_thunk(tid: TaskId, next: Thunk) -> Self {
        Task {
            shell: TaskShell::new(tid),
            next,
        }
    }

    /// The thread's identifier.
    pub fn tid(&self) -> TaskId {
        self.shell.tid()
    }

    /// Splits the task into shell and continuation (used when parking).
    pub fn into_parts(self) -> (TaskShell, Thunk) {
        (self.shell, self.next)
    }

    /// Mutable access to the shell (handler stack) while interpreting.
    pub fn shell_mut(&mut self) -> &mut TaskShell {
        &mut self.shell
    }

    /// Forces the next trace node, consuming the stored thunk and replacing
    /// it with a placeholder. Callers must either finish the task or store a
    /// new continuation via [`Task::set_next`].
    pub fn force(&mut self) -> crate::trace::Trace {
        let next = std::mem::replace(&mut self.next, Box::new(|| crate::trace::Trace::Ret));
        next()
    }

    /// Stores the continuation to run when the task is next scheduled.
    pub fn set_next(&mut self, next: Thunk) {
        self.next = next;
    }
}

impl fmt::Debug for Task {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Task").field("tid", &self.tid()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::Trace;

    #[test]
    fn shell_handler_stack() {
        let mut s = TaskShell::new(TaskId(1));
        assert_eq!(s.handler_depth(), 0);
        s.push_handler(Box::new(|_| Trace::Ret));
        assert_eq!(s.handler_depth(), 1);
        assert!(s.pop_handler().is_some());
        assert!(s.pop_handler().is_none());
    }

    #[test]
    fn task_force_and_set_next() {
        let mut t = Task::from_thunk(
            TaskId(7),
            Box::new(|| Trace::Yield(Box::new(|| Trace::Ret))),
        );
        assert_eq!(t.tid(), TaskId(7));
        match t.force() {
            Trace::Yield(k) => {
                t.set_next(k);
                assert!(matches!(t.force(), Trace::Ret));
            }
            other => panic!("expected SYS_YIELD, got {other:?}"),
        }
    }

    #[test]
    fn task_from_thread_runs_to_ret() {
        let mut t = Task::from_thread(TaskId(1), ThreadM::pure(()));
        assert!(matches!(t.force(), Trace::Ret));
    }

    #[test]
    fn task_id_display() {
        assert_eq!(TaskId(3).to_string(), "thread-3");
    }
}
