//! A generation-keyed slab: stable integer keys into a reusable arena.
//!
//! Per-connection hot-path state — armed timers, parked waiter cells —
//! used to be allocated one `Arc`/heap node per registration, so a
//! million-connection churn storm meant a million short-lived allocations
//! per wave. A slab recycles slots through a free list instead: steady
//! state inserts allocate nothing, and removal is O(1) by key. Keys carry
//! a generation so a stale key (kept by a cancelled timer handle or an
//! abandoned wait slot) can never touch a recycled slot.

/// A key naming a live slab entry. Stale keys (the entry was removed and
/// the slot possibly reused) are detected by generation mismatch and
/// rejected by every accessor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SlabKey {
    idx: u32,
    gen: u32,
}

struct Slot<T> {
    /// Bumped on every removal, so old keys to this slot stop matching.
    gen: u32,
    val: Option<T>,
}

/// The arena. Insertion reuses freed slots before growing the backing
/// vector; removal is O(1) and physically drops the value.
pub struct Slab<T> {
    slots: Vec<Slot<T>>,
    free: Vec<u32>,
    len: usize,
}

impl<T> Slab<T> {
    /// An empty slab (no backing allocation until the first insert).
    pub fn new() -> Self {
        Slab {
            slots: Vec::new(),
            free: Vec::new(),
            len: 0,
        }
    }

    /// Stores `val`, reusing a freed slot if one exists.
    pub fn insert(&mut self, val: T) -> SlabKey {
        self.len += 1;
        if let Some(idx) = self.free.pop() {
            let slot = &mut self.slots[idx as usize];
            debug_assert!(slot.val.is_none());
            slot.val = Some(val);
            return SlabKey { idx, gen: slot.gen };
        }
        let idx = self.slots.len() as u32;
        self.slots.push(Slot {
            gen: 0,
            val: Some(val),
        });
        SlabKey { idx, gen: 0 }
    }

    /// Removes and returns the entry, freeing its slot for reuse. `None`
    /// if the key is stale (already removed, slot possibly recycled).
    pub fn remove(&mut self, key: SlabKey) -> Option<T> {
        let slot = self.slots.get_mut(key.idx as usize)?;
        if slot.gen != key.gen {
            return None;
        }
        let val = slot.val.take()?;
        slot.gen = slot.gen.wrapping_add(1);
        self.free.push(key.idx);
        self.len -= 1;
        Some(val)
    }

    /// A shared reference to the entry, or `None` for a stale key.
    pub fn get(&self, key: SlabKey) -> Option<&T> {
        let slot = self.slots.get(key.idx as usize)?;
        if slot.gen != key.gen {
            return None;
        }
        slot.val.as_ref()
    }

    /// An exclusive reference to the entry, or `None` for a stale key.
    pub fn get_mut(&mut self, key: SlabKey) -> Option<&mut T> {
        let slot = self.slots.get_mut(key.idx as usize)?;
        if slot.gen != key.gen {
            return None;
        }
        slot.val.as_mut()
    }

    /// True if `key` still names a live entry.
    pub fn contains(&self, key: SlabKey) -> bool {
        self.get(key).is_some()
    }

    /// Live entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no entry is live.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Slots the slab has ever grown to (live + free) — the physical
    /// footprint, for tests asserting churn does not grow the arena.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Iterates over live entries in slot order.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.slots.iter().filter_map(|s| s.val.as_ref())
    }
}

impl<T> Default for Slab<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> std::fmt::Debug for Slab<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Slab(len={}, capacity={})", self.len, self.slots.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut s = Slab::new();
        let a = s.insert("a");
        let b = s.insert("b");
        assert_eq!(s.len(), 2);
        assert_eq!(s.get(a), Some(&"a"));
        assert_eq!(s.remove(a), Some("a"));
        assert_eq!(s.remove(a), None, "double remove is a stale key");
        assert_eq!(s.get(b), Some(&"b"));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn slots_are_recycled_and_stale_keys_rejected() {
        let mut s = Slab::new();
        let a = s.insert(1u32);
        s.remove(a);
        let b = s.insert(2u32);
        // Same physical slot, new generation.
        assert_eq!(s.capacity(), 1);
        assert_eq!(s.get(a), None, "old key must not see the new tenant");
        assert_eq!(s.get(b), Some(&2));
        assert!(!s.contains(a));
        assert!(s.contains(b));
    }

    #[test]
    fn churn_does_not_grow_capacity() {
        let mut s = Slab::new();
        let keys: Vec<_> = (0..64).map(|i| s.insert(i)).collect();
        for k in keys {
            s.remove(k);
        }
        for round in 0..1000 {
            let keys: Vec<_> = (0..64).map(|i| s.insert(i + round)).collect();
            for k in keys {
                s.remove(k);
            }
        }
        assert_eq!(s.capacity(), 64, "steady-state churn reuses slots");
        assert!(s.is_empty());
    }
}
