//! First-class composable events: a Concurrent-ML-style `Event` layer over
//! the park protocol.
//!
//! The paper's thesis is that threads and events are two views of one
//! abstraction — but a *blocking call* commits a thread to exactly one wait
//! at a time, so "receive OR time out OR shut down" cannot be written
//! without helper threads. CML's answer (Reppy; Chaudhuri, *Event
//! Synchronization by Lightweight Message Passing*) is to reify the
//! blocking operation as a value:
//!
//! * an [`Event<A>`] *describes* a synchronization producing an `A`;
//! * [`choose`] composes alternatives, [`wrap`] maps the result,
//!   [`guard`] defers construction until synchronization time;
//! * [`sync`] converts the description back into the thread view:
//!   `sync(e) : ThreadM<A>` blocks until one alternative commits.
//!
//! The equation `blocking_op() == sync(blocking_op_evt())` is how the
//! retrofitted primitives ([`Chan`](crate::sync::Chan),
//! [`SyncChan`](crate::sync::SyncChan), [`MVar`](crate::sync::MVar)) define
//! their blocking methods.
//!
//! # Lowering onto `sys_park`
//!
//! Synchronization runs entirely as library code on the scheduler-extension
//! interface ([`sys_park`]), exactly as the paper
//! claims new primitives should (§4.7). `sync` repeatedly:
//!
//! 1. **polls** every branch in declaration order — the first ready branch
//!    commits (the stable tie-break that makes `choose` deterministic
//!    under the simulator);
//! 2. if none is ready, **parks once**, handing each branch a clone of the
//!    thread's one-shot [`Unparker`] — the shared commit token. Branches
//!    register with their devices (wait queue, timer wheel, readiness
//!    table); whichever fires first wins the token, the rest find it
//!    spent;
//! 3. on wake, polls again and **cancels the losing registrations** — a
//!    queued waiter is withdrawn from its [`WaitQ`], an armed timer is
//!    disarmed (eagerly under simulation, so an abandoned timeout cannot
//!    extend virtual time), and a consumed wakeup that ended up committing
//!    elsewhere is passed on to the device's next waiter (the baton in
//!    [`Registration::new`]), so no wakeup is ever lost.
//!
//! The park is provisionally charged as [`WaitKind::Lock`]; the winning
//! branch reclassifies the episode ([`Unparker::reclassify`]) so blocked
//! time lands in the taxonomy class of what actually ended the wait:
//! a [`timeout_evt`] win is timer wait, a [`readiness_evt`] win is I/O
//! wait, a channel win is lock wait.
//!
//! # Affine events
//!
//! An `Event<A>` is an affine value: it is consumed by [`sync`] (results
//! may be moved out of closures at commit time). A *reusable* event is a
//! function producing events — which is also what gives [`guard`] its
//! meaning: the guard thunk runs anew at each synchronization.
//!
//! # Example
//!
//! ```
//! use eveth_core::event::{choose, sync, timeout_evt};
//! use eveth_core::sync::Chan;
//! use eveth_core::time::MILLIS;
//!
//! let ch: Chan<u32> = Chan::new();
//! // Receive, but give up after 5 ms:
//! let recv_or_timeout = choose(vec![
//!     ch.read_evt().wrap(Some),
//!     timeout_evt(5 * MILLIS).wrap(|()| None),
//! ]);
//! let m = sync(recv_or_timeout); // : ThreadM<Option<u32>>
//! # let _ = m;
//! ```

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use parking_lot::Mutex as PlMutex;

use crate::engine::WaitKind;
use crate::reactor::{DirectPort, EventPort, Fd, Interest, Unparker, WaitQ, Waiter};
use crate::syscall::{sys_nbio, sys_park, sys_time};
use crate::thread::{loop_m, Loop, ThreadM};
use crate::time::Nanos;

// ---------------------------------------------------------------------------
// Branches: the primitive alternatives an event flattens into.
// ---------------------------------------------------------------------------

/// One primitive alternative of an event: how to try committing without
/// blocking, how to register for a wakeup, and which wait class a win
/// should be attributed to.
///
/// Primitive authors construct branches with [`Branch::new`]; combinators
/// ([`choose`], [`wrap`], [`guard`]) only rearrange and map them.
pub struct Branch<A> {
    kind: WaitKind,
    poll: Box<dyn FnMut(Nanos) -> Option<A> + Send>,
    register: Box<dyn FnMut(&Unparker) -> Registration + Send>,
    /// Commit observer: runs exactly once, when the synchronization
    /// commits a *different* branch. This is the hook [`with_nack`]
    /// builds negative acknowledgements from; plain branches carry
    /// `None`.
    abandon: Option<Box<dyn FnOnce() + Send>>,
}

impl<A: Send + 'static> Branch<A> {
    /// Builds a branch from its three ingredients.
    ///
    /// * `poll(now)` — attempt to commit atomically (take the item, observe
    ///   the deadline, …); called with the current time, in branch order,
    ///   possibly many times across park rounds.
    /// * `register(unparker)` — store a waiter keyed to the shared commit
    ///   token with the branch's device, *checking the condition under the
    ///   device lock* and waking immediately if it already holds (the
    ///   standard lost-wakeup discipline); returns the registration's
    ///   cancellation recipe. Use [`branch_waiter`] to build the waiter so
    ///   a win reclassifies the park to `kind`.
    /// * `kind` — the wait-taxonomy class charged when this branch ends a
    ///   blocked episode.
    pub fn new(
        kind: WaitKind,
        poll: impl FnMut(Nanos) -> Option<A> + Send + 'static,
        register: impl FnMut(&Unparker) -> Registration + Send + 'static,
    ) -> Self {
        Branch {
            kind,
            poll: Box::new(poll),
            register: Box::new(register),
            abandon: None,
        }
    }

    fn map<B: Send + 'static>(self, f: Arc<dyn Fn(A) -> B + Send + Sync>) -> Branch<B> {
        let mut poll = self.poll;
        Branch {
            kind: self.kind,
            poll: Box::new(move |now| poll(now).map(|a| f(a))),
            register: self.register,
            abandon: self.abandon,
        }
    }
}

impl<A> fmt::Debug for Branch<A> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Branch(kind={:?})", self.kind)
    }
}

/// How to undo one branch's park-round registration.
///
/// Constructed by the branch's `register` closure; consumed by `sync` once
/// the round is decided.
pub struct Registration {
    take: Option<Box<dyn FnOnce() -> bool + Send>>,
    baton: Option<Box<dyn FnOnce() + Send>>,
}

impl Registration {
    /// A registration with nothing to undo — for devices that prune spent
    /// waiters themselves (readiness tables, wake-all queues) or branches
    /// that woke the waiter immediately.
    pub fn none() -> Self {
        Registration {
            take: None,
            baton: None,
        }
    }

    /// A registration undone by `take` (return `true` if the entry was
    /// still queued), with no wakeup to pass on — for timers and wake-all
    /// devices.
    pub fn with_take(take: impl FnOnce() -> bool + Send + 'static) -> Self {
        Registration {
            take: Some(Box::new(take)),
            baton: None,
        }
    }

    /// A registration undone by `take`, with a *baton*: if the entry was
    /// already consumed (the device woke us) but the synchronization
    /// committed a different branch, `baton` runs so the device can hand
    /// the wakeup to its next waiter — the pass-the-baton discipline that
    /// keeps wake-one devices (channels) lossless under `choose`. The
    /// baton should re-check the device condition and wake one waiter if
    /// it still holds.
    pub fn new(
        take: impl FnOnce() -> bool + Send + 'static,
        baton: impl FnOnce() + Send + 'static,
    ) -> Self {
        Registration {
            take: Some(Box::new(take)),
            baton: Some(Box::new(baton)),
        }
    }

    fn cancel(self, lost: bool) {
        let was_queued = match self.take {
            Some(take) => take(),
            None => true,
        };
        if lost && !was_queued {
            if let Some(baton) = self.baton {
                baton();
            }
        }
    }
}

impl fmt::Debug for Registration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Registration(take={}, baton={})",
            self.take.is_some(),
            self.baton.is_some()
        )
    }
}

/// The port a branch's waiter wakes through: records the winning branch's
/// readiness (for `readiness_evt`'s commit latch), reclassifies the park
/// episode to the branch's wait class, then forwards to the real delivery
/// route.
struct BranchPort {
    kind: WaitKind,
    fired: Option<Arc<AtomicBool>>,
    inner: Arc<dyn EventPort>,
}

impl EventPort for BranchPort {
    fn notify(&self, unparker: Unparker) {
        if let Some(fired) = &self.fired {
            fired.store(true, Ordering::SeqCst);
        }
        unparker.reclassify(self.kind);
        self.inner.notify(unparker);
    }
}

/// Builds the waiter a branch hands to its device: a clone of the shared
/// commit token that, when woken, re-attributes the blocked episode to
/// `kind` and then unparks directly. Primitive authors use this inside
/// `register` closures.
pub fn branch_waiter(unparker: &Unparker, kind: WaitKind) -> Waiter {
    Waiter::new(
        unparker.clone(),
        Arc::new(BranchPort {
            kind,
            fired: None,
            inner: Arc::new(DirectPort),
        }),
    )
}

// ---------------------------------------------------------------------------
// Events and combinators.
// ---------------------------------------------------------------------------

type BuildFn<A> = Box<dyn FnOnce(Nanos, &mut Vec<Branch<A>>) + Send>;

/// A first-class synchronization producing an `A` when [`sync`]ed.
///
/// See the [module docs](self) for the combinator algebra and the lowering
/// onto the park protocol.
pub struct Event<A> {
    build: BuildFn<A>,
}

impl<A: Send + 'static> Event<A> {
    /// Builds an event from a branch-collection function, called at
    /// synchronization time with the sync's start time. This is the
    /// primitive-author interface; [`Event::from_branch`] covers the
    /// single-branch case.
    pub fn from_fn(build: impl FnOnce(Nanos, &mut Vec<Branch<A>>) + Send + 'static) -> Self {
        Event {
            build: Box::new(build),
        }
    }

    /// An event with exactly one primitive branch.
    pub fn from_branch(branch: Branch<A>) -> Self {
        Event::from_fn(move |_t0, out| out.push(branch))
    }

    /// Post-composition: an event that commits when `self` commits and
    /// yields `f` of the result (CML's `wrap`). Also available as the free
    /// function [`wrap`].
    pub fn wrap<B: Send + 'static>(self, f: impl Fn(A) -> B + Send + Sync + 'static) -> Event<B> {
        let f: Arc<dyn Fn(A) -> B + Send + Sync> = Arc::new(f);
        Event::from_fn(move |t0, out| {
            let mut inner = Vec::new();
            (self.build)(t0, &mut inner);
            out.extend(inner.into_iter().map(|b| b.map(Arc::clone(&f))));
        })
    }

    /// Binary choice: `self` or `other`, whichever is ready first
    /// (`self` wins ties). Equivalent to `choose(vec![self, other])`.
    pub fn or(self, other: Event<A>) -> Event<A> {
        choose(vec![self, other])
    }
}

impl<A> fmt::Debug for Event<A> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Event(..)")
    }
}

/// An event that is always ready, committing immediately with `v` — CML's
/// `alwaysEvt`. Useful as a default arm of a [`choose`].
pub fn always<A: Send + 'static>(v: A) -> Event<A> {
    let mut slot = Some(v);
    Event::from_fn(move |_t0, out| {
        out.push(Branch::new(
            WaitKind::Lock,
            move |_now| slot.take(),
            |_u| Registration::none(),
        ));
    })
}

/// An event that never becomes ready — CML's `neverEvt`, the identity of
/// [`choose`]. Synchronizing on it alone blocks forever (the simulator
/// reports the deadlock).
pub fn never<A: Send + 'static>() -> Event<A> {
    Event::from_fn(|_t0, _out| {})
}

/// External choice over `events` (CML's `choose`): commits exactly one
/// alternative. When several are ready at the same instant, the earliest
/// in the list wins — a stable tie-break, so the resolution is
/// deterministic under the simulator. Nested `choose`s flatten.
pub fn choose<A: Send + 'static>(events: Vec<Event<A>>) -> Event<A> {
    Event::from_fn(move |t0, out| {
        for ev in events {
            (ev.build)(t0, out);
        }
    })
}

/// Maps an event's result through `f` — the free-function spelling of
/// [`Event::wrap`].
pub fn wrap<A: Send + 'static, B: Send + 'static>(
    ev: Event<A>,
    f: impl Fn(A) -> B + Send + Sync + 'static,
) -> Event<B> {
    ev.wrap(f)
}

/// Defers event construction to synchronization time (CML's `guard`): the
/// thunk runs anew every time an event built from it is synchronized, so
/// it can allocate fresh state, read the current configuration, or send a
/// request whose reply the returned event awaits.
pub fn guard<A: Send + 'static>(f: impl FnOnce() -> Event<A> + Send + 'static) -> Event<A> {
    Event::from_fn(move |t0, out| (f().build)(t0, out))
}

/// CML's negative acknowledgements: like [`guard`], but the thunk also
/// receives a *nack event* that fires if — and only if — the
/// synchronization commits a **different** alternative of the enclosing
/// [`choose`].
///
/// This is the cancellation primitive of request/reply protocols: the
/// guard sends a request carrying the nack event alongside the
/// reply-channel; if the client's `choose` commits elsewhere (a timeout,
/// a shutdown broadcast, a faster replica), the server syncs on the nack
/// and abandons the work instead of replying into the void.
///
/// Fires at commit time even when the winner was ready on the very first
/// poll (no park round), and never fires when one of the wrapped event's
/// own alternatives is the one that commits. The nack is a
/// [`Signal`]-backed event, so any number of threads may wait on it and
/// it stays fired forever once abandoned.
///
/// # Example
///
/// ```
/// use eveth_core::event::{choose, sync, timeout_evt, with_nack};
/// use eveth_core::sync::Chan;
/// use eveth_core::time::MILLIS;
///
/// let reply: Chan<u32> = Chan::new();
/// let ev = choose(vec![
///     with_nack({
///         let reply = reply.clone();
///         move |nack| {
///             // (send the request + nack to a server here)
///             let _cancelled = nack; // server syncs on this
///             reply.read_evt().wrap(Some)
///         }
///     }),
///     timeout_evt(5 * MILLIS).wrap(|()| None),
/// ]);
/// let m = sync(ev); // : ThreadM<Option<u32>> — timeout ⇒ nack fires
/// # let _ = m;
/// ```
pub fn with_nack<A: Send + 'static>(
    f: impl FnOnce(Event<()>) -> Event<A> + Send + 'static,
) -> Event<A> {
    Event::from_fn(move |t0, out| {
        let nack = Signal::new();
        let inner = f(nack.wait_evt());
        let mut group = Vec::new();
        (inner.build)(t0, &mut group);
        if group.is_empty() {
            // The wrapped event is `never`: it cannot win, so any commit
            // abandons it. A never-ready sentinel branch carries the hook.
            out.push(Branch {
                kind: WaitKind::Lock,
                poll: Box::new(|_now| None),
                register: Box::new(|_u| Registration::none()),
                abandon: Some(Box::new(move || nack.fire())),
            });
            return;
        }
        // One nack per with_nack, shared by every alternative the wrapped
        // event flattens into: it fires only if NONE of them committed.
        // `sync` polls in declaration order and the first `Some` commits,
        // so a poll yielding a value marks the whole group as the winner
        // before the abandon hooks of its sibling branches run.
        let committed = Arc::new(AtomicBool::new(false));
        for b in group {
            let sig = nack.clone();
            let won = Arc::clone(&committed);
            let flag = Arc::clone(&committed);
            let mut poll = b.poll;
            let nested = b.abandon; // a with_nack nested inside this one
            out.push(Branch {
                kind: b.kind,
                poll: Box::new(move |now| {
                    let r = poll(now);
                    if r.is_some() {
                        flag.store(true, Ordering::SeqCst);
                    }
                    r
                }),
                register: b.register,
                abandon: Some(Box::new(move || {
                    if let Some(hook) = nested {
                        hook();
                    }
                    if !won.load(Ordering::SeqCst) {
                        sig.fire();
                    }
                })),
            });
        }
    })
}

/// An event that becomes ready `dur` nanoseconds after the synchronization
/// starts (virtual time under simulation). The deadline is armed on the
/// runtime's timer wheel only while the thread is actually parked, and a
/// losing timeout is disarmed eagerly — no abandoned deadline lingers to
/// stretch a simulation's virtual makespan. A win is charged as
/// [`WaitKind::Timer`].
pub fn timeout_evt(dur: Nanos) -> Event<()> {
    Event::from_fn(move |t0, out| {
        let deadline = t0.saturating_add(dur);
        out.push(Branch::new(
            WaitKind::Timer,
            move |now| (now >= deadline).then_some(()),
            move |u| {
                let ctx = u.runtime_ctx();
                let remaining = deadline.saturating_sub(ctx.now());
                let waiter = branch_waiter(u, WaitKind::Timer);
                let timer = ctx.timer_wake(remaining, waiter);
                Registration::with_take(move || {
                    timer.cancel();
                    true
                })
            },
        ));
    })
}

/// An event that becomes ready when `interest` is (or becomes) ready on
/// `fd` — the event-valued form of
/// [`sys_epoll_wait`](crate::syscall::sys_epoll_wait), so socket and pipe
/// readiness can race channels, timers and shutdown signals in one
/// [`choose`]. A win is charged as [`WaitKind::Io`]. Readiness is a
/// level-style hint: after committing, perform the actual non-blocking
/// I/O (which may still report would-block if another consumer drained
/// the device first).
pub fn readiness_evt(fd: &Fd, interest: Interest) -> Event<()> {
    let fd = fd.clone();
    Event::from_fn(move |_t0, out| {
        // Readiness has no synchronous probe; the latch turns the device's
        // wake (including the immediate wake `Pollable::register` performs
        // when the condition already holds) into a pollable commit.
        let fired = Arc::new(AtomicBool::new(false));
        let poll_fired = Arc::clone(&fired);
        out.push(Branch::new(
            WaitKind::Io,
            move |_now| poll_fired.load(Ordering::SeqCst).then_some(()),
            move |u| {
                let waiter = Waiter::new(
                    u.clone(),
                    Arc::new(BranchPort {
                        kind: WaitKind::Io,
                        fired: Some(Arc::clone(&fired)),
                        inner: u.runtime_ctx().epoll_port(),
                    }),
                );
                fd.device().register(interest, waiter);
                // `Pollable` has no deregistration; readiness devices wake
                // whole interest classes and prune spent entries on the
                // next registration, so losers neither leak nor consume a
                // wakeup budget.
                Registration::none()
            },
        ));
    })
}

/// Synchronizes on an event, converting the event view back into the
/// thread view: blocks the monadic thread until one alternative commits
/// and yields its (wrapped) result.
///
/// This is the only place events touch the scheduler, and it does so
/// purely through [`sys_park`] +
/// [`sys_time`] — the generalized
/// multi-registration park described in the [module docs](self).
pub fn sync<A: Send + 'static>(ev: Event<A>) -> ThreadM<A> {
    sys_time().bind(move |t0| {
        sys_nbio(move || {
            // Force guards and collect the flat branch list: one list per
            // synchronization, so guard thunks run anew each time.
            let mut branches = Vec::new();
            (ev.build)(t0, &mut branches);
            Arc::new(PlMutex::new(branches))
        })
        .bind(|branches| {
            type Regs = Arc<PlMutex<Vec<Registration>>>;
            loop_m(None::<Regs>, move |prior: Option<Regs>| {
                let poll_branches = Arc::clone(&branches);
                let park_branches = Arc::clone(&branches);
                sys_time().bind(move |now| {
                    sys_nbio(move || {
                        // Deterministic tie-break: first ready branch in
                        // declaration order commits.
                        let won = {
                            let mut bs = poll_branches.lock();
                            let mut won = None;
                            for (i, b) in bs.iter_mut().enumerate() {
                                if let Some(v) = (b.poll)(now) {
                                    won = Some((i, v));
                                    break;
                                }
                            }
                            // Commit decided: tell every abandoned branch
                            // so — the hook behind `with_nack`'s negative
                            // acknowledgement. Runs whether or not a park
                            // round ever happened (a first-poll win still
                            // abandons the other branches). Done in this
                            // lock scope so the common no-hook sync pays
                            // no second acquisition.
                            if let Some((wi, _)) = &won {
                                for (i, b) in bs.iter_mut().enumerate() {
                                    if i != *wi {
                                        if let Some(hook) = b.abandon.take() {
                                            hook();
                                        }
                                    }
                                }
                            }
                            won
                        };
                        // Retire the previous park round. Losing branches
                        // withdraw their waiters/timers; a consumed wakeup
                        // that committed elsewhere is batoned onward. The
                        // winner's consumed wakeup is simply its own.
                        if let Some(regs) = prior {
                            let winner = won.as_ref().map(|(i, _)| *i);
                            for (i, reg) in regs.lock().drain(..).enumerate() {
                                reg.cancel(Some(i) != winner);
                            }
                        }
                        won
                    })
                    .bind(move |won| match won {
                        Some((_, v)) => ThreadM::pure(Loop::Break(v)),
                        None => {
                            // Nothing ready: park once, registering every
                            // branch with a clone of the one-shot token.
                            // A registration may wake immediately (its
                            // condition held at registration time); later
                            // branches can then skip registering — the
                            // next poll decides the winner either way.
                            let regs: Regs = Arc::new(PlMutex::new(Vec::new()));
                            let filled = Arc::clone(&regs);
                            sys_park(move |u| {
                                let mut bs = park_branches.lock();
                                let mut rs = filled.lock();
                                for b in bs.iter_mut() {
                                    rs.push((b.register)(&u));
                                    if u.is_spent() {
                                        break;
                                    }
                                }
                            })
                            .map(move |_| Loop::Continue(Some(regs)))
                        }
                    })
                })
            })
        })
    })
}

// ---------------------------------------------------------------------------
// Signal: a one-shot broadcast (shutdown flags).
// ---------------------------------------------------------------------------

struct SigState {
    fired: bool,
    waiters: WaitQ,
    rid: u64,
}

/// A one-shot broadcast flag with an event view — the "graceful shutdown"
/// primitive: any number of threads [`choose`] over
/// [`wait_evt`](Signal::wait_evt) alongside their normal work, and one
/// [`fire`](Signal::fire) releases them all. Once fired, the event is
/// ready forever.
#[derive(Clone)]
pub struct Signal {
    st: Arc<PlMutex<SigState>>,
}

impl Signal {
    /// A new, unfired signal.
    pub fn new() -> Self {
        Signal {
            st: Arc::new(PlMutex::new(SigState {
                fired: false,
                waiters: WaitQ::new(),
                rid: crate::check::new_rid(),
            })),
        }
    }

    /// Fires the signal, waking every waiter (idempotent; callable from
    /// any context, including plain OS threads).
    pub fn fire(&self) {
        let mut st = self.st.lock();
        st.fired = true;
        crate::check::op(
            st.rid,
            crate::check::ResKind::Signal,
            crate::check::OpKind::Publish,
            [1, 0],
        );
        let _scope = crate::check::wake_scope(st.rid);
        st.waiters.wake_all();
    }

    /// True once [`Signal::fire`] has run.
    pub fn is_fired(&self) -> bool {
        self.st.lock().fired
    }

    /// An event ready once the signal has fired. A win is charged as
    /// [`WaitKind::Lock`] (it is a synchronization wait).
    pub fn wait_evt(&self) -> Event<()> {
        let st = Arc::clone(&self.st);
        Event::from_fn(move |_t0, out| {
            let poll_st = Arc::clone(&st);
            out.push(Branch::new(
                WaitKind::Lock,
                move |_now| poll_st.lock().fired.then_some(()),
                move |u| {
                    let waiter = branch_waiter(u, WaitKind::Lock);
                    let mut s = st.lock();
                    if s.fired {
                        let rid = s.rid;
                        drop(s);
                        let _scope = crate::check::wake_scope(rid);
                        waiter.wake();
                        return Registration::none();
                    }
                    crate::check::op(
                        s.rid,
                        crate::check::ResKind::Signal,
                        crate::check::OpKind::BlockTake,
                        [0, 0],
                    );
                    let slot = s.waiters.push(waiter);
                    // fire() wakes *all* waiters — no budget to baton.
                    Registration::with_take(move || slot.take().is_some())
                },
            ));
        })
    }

    /// Blocks until the signal fires: `sync(self.wait_evt())`.
    pub fn wait(&self) -> ThreadM<()> {
        sync(self.wait_evt())
    }

    /// Live registrations currently parked on this signal (for tests
    /// asserting loser cancellation leaves nothing behind).
    pub fn waiter_count(&self) -> usize {
        self.st.lock().waiters.len()
    }

    /// Registrations physically held, spent or live — cancelled entries
    /// are removed from the arena immediately, so churn against a
    /// never-firing signal (every session racing a shutdown broadcast it
    /// does not win) must keep this bounded by the concurrent peak.
    pub fn physical_waiter_count(&self) -> usize {
        self.st.lock().waiters.physical_len()
    }
}

impl Default for Signal {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for Signal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let st = self.st.lock();
        write!(
            f,
            "Signal(fired={}, waiters={})",
            st.fired,
            st.waiters.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::Runtime;
    use crate::sync::Chan;
    use crate::syscall::sys_fork;
    use crate::time::MILLIS;

    #[test]
    fn always_commits_immediately() {
        let rt = Runtime::builder().workers(1).build();
        assert_eq!(rt.block_on(sync(always(42))), 42);
        rt.shutdown();
    }

    #[test]
    fn wrap_maps_the_result() {
        let rt = Runtime::builder().workers(1).build();
        let v = rt.block_on(sync(always(6).wrap(|x| x * 7)));
        assert_eq!(v, 42);
        rt.shutdown();
    }

    #[test]
    fn choose_prefers_the_first_ready_branch() {
        let rt = Runtime::builder().workers(1).build();
        let v = rt.block_on(sync(choose(vec![always("a"), always("b")])));
        assert_eq!(v, "a");
        rt.shutdown();
    }

    #[test]
    fn choose_with_never_is_identity() {
        let rt = Runtime::builder().workers(1).build();
        let v = rt.block_on(sync(never::<u8>().or(always(9))));
        assert_eq!(v, 9);
        rt.shutdown();
    }

    #[test]
    fn timeout_vs_channel_channel_wins_when_written() {
        let rt = Runtime::builder().workers(2).build();
        let ch: Chan<&str> = Chan::new();
        let tx = ch.clone();
        let v = rt.block_on(crate::do_m! {
            sys_fork(tx.write("fast"));
            sync(choose(vec![
                ch.read_evt().wrap(Some),
                timeout_evt(200 * MILLIS).wrap(|()| None),
            ]))
        });
        assert_eq!(v, Some("fast"));
        rt.shutdown();
    }

    #[test]
    fn timeout_wins_on_a_silent_channel() {
        let rt = Runtime::builder().workers(2).build();
        let ch: Chan<u8> = Chan::new();
        let v = rt.block_on(sync(choose(vec![
            ch.read_evt().wrap(Some),
            timeout_evt(MILLIS).wrap(|()| None),
        ])));
        assert_eq!(v, None);
        rt.shutdown();
    }

    #[test]
    fn guard_runs_at_sync_time_not_construction() {
        use std::sync::atomic::AtomicU32;
        let runs = Arc::new(AtomicU32::new(0));
        let make = {
            let runs = Arc::clone(&runs);
            move || {
                let runs = Arc::clone(&runs);
                guard(move || {
                    runs.fetch_add(1, Ordering::SeqCst);
                    always(1u8)
                })
            }
        };
        let ev = make();
        assert_eq!(runs.load(Ordering::SeqCst), 0, "guard is lazy");
        let rt = Runtime::builder().workers(1).build();
        rt.block_on(sync(ev));
        assert_eq!(runs.load(Ordering::SeqCst), 1);
        rt.block_on(sync(make()));
        assert_eq!(runs.load(Ordering::SeqCst), 2, "re-evaluated per sync");
        rt.shutdown();
    }

    /// Runs one `choose([with_nack(...), timeout])` sync and reports
    /// (winner, nack_fired): the guard parks the nack event in a side slot
    /// and the test probes it afterwards by racing it against a short
    /// timeout.
    fn nack_probe(rt: &Runtime, prefill: Option<u8>) -> (Option<u8>, bool) {
        let ch: Chan<u8> = Chan::new();
        if let Some(v) = prefill {
            ch.push_now(v);
        }
        let parked: Arc<PlMutex<Option<Event<()>>>> = Arc::new(PlMutex::new(None));
        let slot = Arc::clone(&parked);
        let v = rt.block_on(sync(choose(vec![
            with_nack(move |nack| {
                *slot.lock() = Some(nack);
                ch.read_evt().wrap(Some)
            }),
            timeout_evt(MILLIS).wrap(|()| None),
        ])));
        let nack = parked.lock().take().expect("guard ran at sync time");
        let fired = rt.block_on(sync(choose(vec![
            nack.wrap(|()| true),
            timeout_evt(MILLIS).wrap(|()| false),
        ])));
        (v, fired)
    }

    #[test]
    fn with_nack_fires_only_on_abandonment() {
        let rt = Runtime::builder().workers(2).build();
        // Losing to the timeout fires the nack...
        let (v, fired) = nack_probe(&rt, None);
        assert_eq!(v, None);
        assert!(fired, "abandoned with_nack must fire its nack");
        // ...and winning does not.
        let (v, fired) = nack_probe(&rt, Some(7));
        assert_eq!(v, Some(7));
        assert!(!fired, "a committed with_nack must not be nacked");
        rt.shutdown();
    }

    #[test]
    fn signal_broadcasts_to_all_waiters() {
        let rt = Runtime::builder().workers(2).build();
        let sig = Signal::new();
        let done: Chan<u8> = Chan::new();
        for i in 0..3u8 {
            let sig = sig.clone();
            let done = done.clone();
            rt.spawn(crate::do_m! {
                sig.wait();
                done.write(i)
            });
        }
        let sig2 = sig.clone();
        let got = rt.block_on(crate::do_m! {
            crate::syscall::sys_sleep(MILLIS);
            crate::syscall::sys_nbio(move || sig2.fire());
            let a <- done.read();
            let b <- done.read();
            let c <- done.read();
            ThreadM::pure((a, b, c))
        });
        let mut all = [got.0, got.1, got.2];
        all.sort_unstable();
        assert_eq!(all, [0, 1, 2]);
        assert!(sig.is_fired());
        assert_eq!(sig.waiter_count(), 0);
        rt.shutdown();
    }
}
