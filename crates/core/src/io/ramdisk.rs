//! RAM-backed asynchronous files.
//!
//! These implement [`AioFile`] for the real runtime: completions are
//! delivered through the AIO event loop, optionally after a modelled access
//! latency, so server code exercises the same submission/harvest path it
//! would against a physical disk. (`eveth-simos` provides the seek-accurate
//! simulated disk used by the paper's disk benchmarks.)

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use bytes::Bytes;
use parking_lot::{Mutex, RwLock};

use crate::aio::{AioCompletion, AioFile, AioResult, FileStore, IoError};
use crate::time::Nanos;

/// A writable, RAM-backed file.
pub struct RamFile {
    data: Mutex<Vec<u8>>,
    latency: Nanos,
}

impl RamFile {
    /// Creates a file with the given initial contents and zero latency.
    pub fn new(data: impl Into<Vec<u8>>) -> Self {
        RamFile {
            data: Mutex::new(data.into()),
            latency: 0,
        }
    }

    /// Creates a file whose completions are delayed by `latency`.
    pub fn with_latency(data: impl Into<Vec<u8>>, latency: Nanos) -> Self {
        RamFile {
            data: Mutex::new(data.into()),
            latency,
        }
    }

    fn finish(&self, done: AioCompletion, res: AioResult) {
        if self.latency == 0 {
            done.complete(res);
        } else {
            done.complete_after(res, self.latency);
        }
    }
}

impl AioFile for RamFile {
    fn len(&self) -> u64 {
        self.data.lock().len() as u64
    }

    fn submit_read(&self, offset: u64, len: usize, done: AioCompletion) {
        let data = self.data.lock();
        let res = if offset >= data.len() as u64 {
            Ok(Bytes::new()) // read at or past EOF: zero bytes, like POSIX
        } else {
            let start = offset as usize;
            let end = (start + len).min(data.len());
            Ok(Bytes::copy_from_slice(&data[start..end]))
        };
        drop(data);
        self.finish(done, res);
    }

    fn submit_write(&self, offset: u64, payload: Bytes, done: AioCompletion) {
        let mut data = self.data.lock();
        let start = offset as usize;
        let end = start + payload.len();
        if data.len() < end {
            data.resize(end, 0);
        }
        data[start..end].copy_from_slice(&payload);
        drop(data);
        self.finish(done, Ok(Bytes::new()));
    }
}

impl fmt::Debug for RamFile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "RamFile(len={})", self.len())
    }
}

/// A read-only file whose contents are synthesized from its offset — a
/// deterministic pattern generator used to model large data sets (the
/// paper's 1 GB benchmark file, 128k × 16 KB web corpus) without allocating
/// them.
pub struct SynthFile {
    len: u64,
    seed: u64,
    latency: Nanos,
}

impl SynthFile {
    /// Creates a synthetic file of `len` bytes generated from `seed`.
    pub fn new(len: u64, seed: u64) -> Self {
        SynthFile {
            len,
            seed,
            latency: 0,
        }
    }

    /// Adds a modelled completion latency.
    pub fn with_latency(len: u64, seed: u64, latency: Nanos) -> Self {
        SynthFile { len, seed, latency }
    }

    /// The deterministic byte at `pos` — exposed so tests can verify
    /// end-to-end content integrity.
    pub fn byte_at(seed: u64, pos: u64) -> u8 {
        let x = pos
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(seed.wrapping_mul(0xD1B5_4A32_D192_ED03));
        ((x >> 32) ^ x) as u8
    }

    /// Materializes `len` bytes starting at `offset`.
    pub fn bytes_at(seed: u64, offset: u64, len: usize) -> Bytes {
        let mut v = Vec::with_capacity(len);
        for i in 0..len as u64 {
            v.push(Self::byte_at(seed, offset + i));
        }
        v.into()
    }
}

impl AioFile for SynthFile {
    fn len(&self) -> u64 {
        self.len
    }

    fn submit_read(&self, offset: u64, len: usize, done: AioCompletion) {
        let res = if offset >= self.len {
            Ok(Bytes::new())
        } else {
            let n = len.min((self.len - offset) as usize);
            Ok(Self::bytes_at(self.seed, offset, n))
        };
        if self.latency == 0 {
            done.complete(res);
        } else {
            done.complete_after(res, self.latency);
        }
    }

    fn submit_write(&self, _offset: u64, _data: Bytes, done: AioCompletion) {
        done.complete(Err(IoError::Unsupported));
    }
}

impl fmt::Debug for SynthFile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SynthFile(len={}, seed={})", self.len, self.seed)
    }
}

/// An in-memory path → file table implementing [`FileStore`].
#[derive(Default)]
pub struct MemStore {
    files: RwLock<HashMap<String, Arc<dyn AioFile>>>,
}

impl MemStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a file under `path`, replacing any previous entry.
    pub fn insert(&self, path: impl Into<String>, file: Arc<dyn AioFile>) {
        self.files.write().insert(path.into(), file);
    }

    /// Registers a RAM-backed file with the given contents.
    pub fn insert_bytes(&self, path: impl Into<String>, data: impl Into<Vec<u8>>) {
        self.insert(path, Arc::new(RamFile::new(data)));
    }

    /// Registers a synthetic file.
    pub fn insert_synth(&self, path: impl Into<String>, len: u64, seed: u64) {
        self.insert(path, Arc::new(SynthFile::new(len, seed)));
    }

    /// Number of registered files.
    pub fn len(&self) -> usize {
        self.files.read().len()
    }

    /// True if no files are registered.
    pub fn is_empty(&self) -> bool {
        self.files.read().is_empty()
    }
}

impl FileStore for MemStore {
    fn lookup(&self, path: &str) -> Option<Arc<dyn AioFile>> {
        self.files.read().get(path).cloned()
    }
}

impl fmt::Debug for MemStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "MemStore(files={})", self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::Runtime;
    use crate::syscall::{sys_aio_read, sys_aio_write};

    #[test]
    fn aio_read_roundtrip() {
        let rt = Runtime::builder().workers(1).build();
        let file: Arc<dyn AioFile> = Arc::new(RamFile::new(b"hello world".to_vec()));
        let got = rt.block_on(sys_aio_read(&file, 6, 5)).unwrap();
        assert_eq!(&got[..], b"world");
        rt.shutdown();
    }

    #[test]
    fn aio_read_past_eof_is_empty() {
        let rt = Runtime::builder().workers(1).build();
        let file: Arc<dyn AioFile> = Arc::new(RamFile::new(b"x".to_vec()));
        let got = rt.block_on(sys_aio_read(&file, 10, 5)).unwrap();
        assert!(got.is_empty());
        rt.shutdown();
    }

    #[test]
    fn aio_write_then_read() {
        let rt = Runtime::builder().workers(1).build();
        let file: Arc<dyn AioFile> = Arc::new(RamFile::new(Vec::new()));
        rt.block_on(sys_aio_write(&file, 2, Bytes::from_static(b"zz")))
            .unwrap();
        assert_eq!(file.len(), 4);
        let got = rt.block_on(sys_aio_read(&file, 0, 4)).unwrap();
        assert_eq!(&got[..], &[0, 0, b'z', b'z']);
        rt.shutdown();
    }

    #[test]
    fn latency_delays_completion() {
        let rt = Runtime::builder().workers(1).build();
        let file: Arc<dyn AioFile> =
            Arc::new(RamFile::with_latency(vec![1; 16], 20 * crate::time::MILLIS));
        let t0 = rt.now();
        rt.block_on(sys_aio_read(&file, 0, 16)).unwrap();
        assert!(rt.now() - t0 >= 15 * crate::time::MILLIS);
        rt.shutdown();
    }

    #[test]
    fn synth_content_is_deterministic() {
        let a = SynthFile::bytes_at(7, 100, 64);
        let b = SynthFile::bytes_at(7, 100, 64);
        assert_eq!(a, b);
        let c = SynthFile::bytes_at(8, 100, 64);
        assert_ne!(a, c, "different seeds should differ");
        // Slices compose: reading [100..164] equals reading [100..132] ++ [132..164].
        let d = SynthFile::bytes_at(7, 100, 32);
        let e = SynthFile::bytes_at(7, 132, 32);
        assert_eq!(&a[..32], &d[..]);
        assert_eq!(&a[32..], &e[..]);
    }

    #[test]
    fn synth_write_unsupported() {
        let rt = Runtime::builder().workers(1).build();
        let file: Arc<dyn AioFile> = Arc::new(SynthFile::new(100, 1));
        let err = rt
            .block_on(sys_aio_write(&file, 0, Bytes::from_static(b"n")))
            .unwrap_err();
        assert_eq!(err, IoError::Unsupported);
        rt.shutdown();
    }

    #[test]
    fn memstore_lookup() {
        let store = MemStore::new();
        assert!(store.is_empty());
        store.insert_bytes("/a", b"aaa".to_vec());
        store.insert_synth("/b", 1000, 3);
        assert_eq!(store.len(), 2);
        assert!(store.lookup("/a").is_some());
        assert!(store.lookup("/b").is_some());
        assert!(store.lookup("/missing").is_none());
        assert_eq!(store.lookup("/b").unwrap().len(), 1000);
    }
}
