//! In-memory pollable devices for the real runtime.
//!
//! * [`pipe`](mod@pipe) — FIFO pipes with bounded buffers, usable both from monadic
//!   threads (non-blocking ops + `sys_epoll_wait`) and from plain OS threads
//!   (blocking ops on condition variables). The FIFO scalability benchmark
//!   (paper Figure 18) runs both runtimes against this same device.
//! * [`ramdisk`] — RAM-backed [`AioFile`](crate::aio::AioFile)
//!   implementations with optional modelled latency, plus an in-memory
//!   [`FileStore`](crate::aio::FileStore).

pub mod pipe;
pub mod ramdisk;

pub use pipe::{pipe, PipeError, PipeReader, PipeWriter};
pub use ramdisk::{MemStore, RamFile, SynthFile};
