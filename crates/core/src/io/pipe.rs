//! In-memory FIFO pipes with bounded buffers.
//!
//! A pipe is one shared ring of bytes with two independent waiting
//! mechanisms layered over it:
//!
//! * **event-style**: non-blocking `try_read`/`try_write` plus epoll-style
//!   readiness registration — what monadic threads use via
//!   [`read_m`](PipeReader::read_m) / [`write_all_m`](PipeWriter::write_all_m)
//!   (the paper's Figure 10 wrapping pattern);
//! * **thread-style**: blocking `read_blocking`/`write_blocking` on condition
//!   variables — what the kernel-thread (NPTL) baseline uses.
//!
//! Both baselines of the paper's FIFO benchmark therefore exercise the exact
//! same buffer, making their costs directly comparable.

use std::collections::VecDeque;
use std::fmt;
use std::sync::Arc;

use bytes::Bytes;
use parking_lot::{Condvar, Mutex};

use crate::reactor::{Fd, Interest, Pollable, WaitList, Waiter};
use crate::syscall::{sys_epoll_wait, sys_nbio};
use crate::thread::{loop_m, Loop, ThreadM};

/// Errors from pipe operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PipeError {
    /// The operation cannot make progress right now (buffer empty/full).
    WouldBlock,
    /// The other end of the pipe was closed.
    Closed,
}

impl fmt::Display for PipeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipeError::WouldBlock => f.write_str("operation would block"),
            PipeError::Closed => f.write_str("pipe closed"),
        }
    }
}

impl std::error::Error for PipeError {}

struct PipeState {
    buf: VecDeque<u8>,
    cap: usize,
    write_closed: bool,
    read_closed: bool,
    read_waiters: WaitList,
    write_waiters: WaitList,
    readers: usize,
    writers: usize,
}

struct PipeDevice {
    state: Mutex<PipeState>,
    read_cv: Condvar,
    write_cv: Condvar,
}

impl PipeDevice {
    fn read_ready(st: &PipeState) -> bool {
        !st.buf.is_empty() || st.write_closed
    }

    fn write_ready(st: &PipeState) -> bool {
        st.buf.len() < st.cap || st.read_closed
    }
}

impl Pollable for PipeDevice {
    fn register(&self, interest: Interest, waiter: Waiter) {
        let mut st = self.state.lock();
        let ready = match interest {
            Interest::Read => Self::read_ready(&st),
            Interest::Write => Self::write_ready(&st),
        };
        if ready {
            drop(st);
            waiter.wake();
        } else {
            match interest {
                Interest::Read => st.read_waiters.push(waiter),
                Interest::Write => st.write_waiters.push(waiter),
            }
        }
    }
}

/// Creates a FIFO pipe with the given buffer capacity in bytes.
///
/// # Panics
///
/// Panics if `capacity` is zero.
///
/// # Examples
///
/// ```
/// use eveth_core::io::pipe;
///
/// let (w, r) = pipe(4096);
/// w.try_write(b"hi").unwrap();
/// assert_eq!(&r.try_read(16).unwrap()[..], b"hi");
/// ```
pub fn pipe(capacity: usize) -> (PipeWriter, PipeReader) {
    assert!(capacity > 0, "pipe capacity must be non-zero");
    let dev = Arc::new(PipeDevice {
        state: Mutex::new(PipeState {
            // Lazily grown: an idle pipe costs bytes, not its capacity
            // (the Figure 18 benchmark parks 100k threads on idle pipes).
            buf: VecDeque::new(),
            cap: capacity,
            write_closed: false,
            read_closed: false,
            read_waiters: WaitList::new(),
            write_waiters: WaitList::new(),
            readers: 1,
            writers: 1,
        }),
        read_cv: Condvar::new(),
        write_cv: Condvar::new(),
    });
    let fd = Fd::new(Arc::clone(&dev) as Arc<dyn Pollable>);
    (
        PipeWriter {
            dev: Arc::clone(&dev),
            fd: fd.clone(),
        },
        PipeReader { dev, fd },
    )
}

/// The reading end of a [`pipe`]. Cloning yields another handle to the same
/// end; the end closes when the last handle drops.
pub struct PipeReader {
    dev: Arc<PipeDevice>,
    fd: Fd,
}

/// The writing end of a [`pipe`]. Cloning yields another handle to the same
/// end; the end closes when the last handle drops.
pub struct PipeWriter {
    dev: Arc<PipeDevice>,
    fd: Fd,
}

impl PipeReader {
    /// The epoll-style descriptor for readiness waits on this pipe.
    pub fn fd(&self) -> &Fd {
        &self.fd
    }

    /// Non-blocking read of up to `max` bytes.
    ///
    /// Returns an empty buffer at end-of-stream (writer closed and buffer
    /// drained).
    ///
    /// # Errors
    ///
    /// [`PipeError::WouldBlock`] if the buffer is empty but the writer is
    /// still open.
    pub fn try_read(&self, max: usize) -> Result<Bytes, PipeError> {
        let mut st = self.dev.state.lock();
        if st.buf.is_empty() {
            return if st.write_closed {
                Ok(Bytes::new())
            } else {
                Err(PipeError::WouldBlock)
            };
        }
        let n = max.min(st.buf.len());
        let out: Bytes = st.buf.drain(..n).collect::<Vec<u8>>().into();
        st.write_waiters.wake_all();
        self.dev.write_cv.notify_all();
        Ok(out)
    }

    /// Blocking read of up to `max` bytes — for plain OS threads (the
    /// kernel-thread baseline). Returns an empty buffer at end-of-stream.
    pub fn read_blocking(&self, max: usize) -> Bytes {
        let mut st = self.dev.state.lock();
        while st.buf.is_empty() && !st.write_closed {
            self.dev.read_cv.wait(&mut st);
        }
        if st.buf.is_empty() {
            return Bytes::new();
        }
        let n = max.min(st.buf.len());
        let out: Bytes = st.buf.drain(..n).collect::<Vec<u8>>().into();
        st.write_waiters.wake_all();
        self.dev.write_cv.notify_all();
        out
    }

    /// Monadic blocking read: retries `try_read` with `sys_epoll_wait`
    /// whenever the pipe is empty — the paper's non-blocking-to-blocking
    /// wrapping pattern (Figure 10). Returns an empty buffer at
    /// end-of-stream.
    pub fn read_m(&self, max: usize) -> ThreadM<Bytes> {
        let this = self.clone();
        loop_m((), move |()| {
            let dev = this.clone();
            let fd = this.fd.clone();
            sys_nbio(move || dev.try_read(max)).bind(move |r| match r {
                Ok(bytes) => ThreadM::pure(Loop::Break(bytes)),
                Err(PipeError::WouldBlock) => {
                    sys_epoll_wait(&fd, Interest::Read).map(|_| Loop::Continue(()))
                }
                Err(PipeError::Closed) => ThreadM::pure(Loop::Break(Bytes::new())),
            })
        })
    }

    /// Monadic read of exactly `n` bytes; errors at early end-of-stream.
    pub fn read_exact_m(&self, n: usize) -> ThreadM<Result<Bytes, PipeError>> {
        let this = self.clone();
        loop_m(Vec::with_capacity(n), move |mut acc| {
            let want = n - acc.len();
            this.read_m(want).map(move |chunk| {
                if chunk.is_empty() {
                    return Loop::Break(Err(PipeError::Closed));
                }
                acc.extend_from_slice(&chunk);
                if acc.len() == n {
                    Loop::Break(Ok(Bytes::from(acc)))
                } else {
                    Loop::Continue(acc)
                }
            })
        })
    }

    /// Bytes currently buffered.
    pub fn buffered(&self) -> usize {
        self.dev.state.lock().buf.len()
    }
}

impl PipeWriter {
    /// The epoll-style descriptor for readiness waits on this pipe.
    pub fn fd(&self) -> &Fd {
        &self.fd
    }

    /// Non-blocking write; returns the number of bytes accepted (possibly
    /// fewer than `data.len()`).
    ///
    /// # Errors
    ///
    /// [`PipeError::WouldBlock`] if the buffer is full;
    /// [`PipeError::Closed`] if the reader is gone.
    pub fn try_write(&self, data: &[u8]) -> Result<usize, PipeError> {
        let mut st = self.dev.state.lock();
        if st.read_closed {
            return Err(PipeError::Closed);
        }
        let space = st.cap - st.buf.len();
        if space == 0 {
            return Err(PipeError::WouldBlock);
        }
        let n = space.min(data.len());
        st.buf.extend(&data[..n]);
        st.read_waiters.wake_all();
        self.dev.read_cv.notify_all();
        Ok(n)
    }

    /// Blocking write of the whole buffer — for plain OS threads.
    ///
    /// # Errors
    ///
    /// [`PipeError::Closed`] if the reader end closes mid-write.
    pub fn write_all_blocking(&self, data: &[u8]) -> Result<(), PipeError> {
        let mut written = 0;
        while written < data.len() {
            let mut st = self.dev.state.lock();
            while st.buf.len() == st.cap && !st.read_closed {
                self.dev.write_cv.wait(&mut st);
            }
            if st.read_closed {
                return Err(PipeError::Closed);
            }
            let space = st.cap - st.buf.len();
            let n = space.min(data.len() - written);
            st.buf.extend(&data[written..written + n]);
            written += n;
            st.read_waiters.wake_all();
            self.dev.read_cv.notify_all();
        }
        Ok(())
    }

    /// Monadic write of the whole buffer, retrying with `sys_epoll_wait`
    /// while the pipe is full.
    pub fn write_all_m(&self, data: Bytes) -> ThreadM<Result<(), PipeError>> {
        let this = self.clone();
        loop_m(data, move |remaining| {
            let dev = this.clone();
            let fd = this.fd.clone();
            let attempt = remaining.clone();
            sys_nbio(move || dev.try_write(&attempt)).bind(move |r| match r {
                Ok(n) => {
                    let rest = remaining.slice(n..);
                    if rest.is_empty() {
                        ThreadM::pure(Loop::Break(Ok(())))
                    } else {
                        ThreadM::pure(Loop::Continue(rest))
                    }
                }
                Err(PipeError::WouldBlock) => {
                    sys_epoll_wait(&fd, Interest::Write).map(move |_| Loop::Continue(remaining))
                }
                Err(e @ PipeError::Closed) => ThreadM::pure(Loop::Break(Err(e))),
            })
        })
    }

    /// Free space in the buffer.
    pub fn space(&self) -> usize {
        let st = self.dev.state.lock();
        st.cap - st.buf.len()
    }
}

impl Clone for PipeReader {
    fn clone(&self) -> Self {
        self.dev.state.lock().readers += 1;
        PipeReader {
            dev: Arc::clone(&self.dev),
            fd: self.fd.clone(),
        }
    }
}

impl Clone for PipeWriter {
    fn clone(&self) -> Self {
        self.dev.state.lock().writers += 1;
        PipeWriter {
            dev: Arc::clone(&self.dev),
            fd: self.fd.clone(),
        }
    }
}

impl Drop for PipeReader {
    fn drop(&mut self) {
        let mut st = self.dev.state.lock();
        st.readers -= 1;
        if st.readers == 0 {
            st.read_closed = true;
            st.read_waiters.wake_all();
            st.write_waiters.wake_all();
            self.dev.read_cv.notify_all();
            self.dev.write_cv.notify_all();
        }
    }
}

impl Drop for PipeWriter {
    fn drop(&mut self) {
        let mut st = self.dev.state.lock();
        st.writers -= 1;
        if st.writers == 0 {
            st.write_closed = true;
            st.read_waiters.wake_all();
            st.write_waiters.wake_all();
            self.dev.read_cv.notify_all();
            self.dev.write_cv.notify_all();
        }
    }
}

impl fmt::Debug for PipeReader {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PipeReader({:?}, buffered={})", self.fd, self.buffered())
    }
}

impl fmt::Debug for PipeWriter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PipeWriter({:?}, space={})", self.fd, self.space())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::Runtime;

    #[test]
    fn fifo_order_roundtrip() {
        let (w, r) = pipe(8);
        assert_eq!(w.try_write(b"abc").unwrap(), 3);
        assert_eq!(&r.try_read(2).unwrap()[..], b"ab");
        assert_eq!(&r.try_read(8).unwrap()[..], b"c");
    }

    #[test]
    fn empty_read_would_block() {
        let (_w, r) = pipe(8);
        assert_eq!(r.try_read(1).unwrap_err(), PipeError::WouldBlock);
    }

    #[test]
    fn full_write_would_block_then_drains() {
        let (w, r) = pipe(4);
        assert_eq!(w.try_write(b"123456").unwrap(), 4);
        assert_eq!(w.try_write(b"x").unwrap_err(), PipeError::WouldBlock);
        r.try_read(2).unwrap();
        assert_eq!(w.try_write(b"xy").unwrap(), 2);
    }

    #[test]
    fn writer_close_gives_eof() {
        let (w, r) = pipe(4);
        w.try_write(b"z").unwrap();
        drop(w);
        assert_eq!(&r.try_read(4).unwrap()[..], b"z");
        assert_eq!(r.try_read(4).unwrap().len(), 0, "EOF after drain");
    }

    #[test]
    fn reader_close_fails_writes() {
        let (w, r) = pipe(4);
        drop(r);
        assert_eq!(w.try_write(b"a").unwrap_err(), PipeError::Closed);
    }

    #[test]
    fn clone_keeps_end_open() {
        let (w, r) = pipe(4);
        let r2 = r.clone();
        drop(r);
        assert!(w.try_write(b"a").is_ok(), "clone keeps reader open");
        drop(r2);
        assert_eq!(w.try_write(b"b").unwrap_err(), PipeError::Closed);
    }

    #[test]
    fn blocking_roundtrip_across_os_threads() {
        let (w, r) = pipe(16);
        let h = std::thread::spawn(move || {
            w.write_all_blocking(&[7u8; 64]).unwrap();
        });
        let mut total = 0;
        loop {
            let b = r.read_blocking(16);
            if b.is_empty() {
                break;
            }
            assert!(b.iter().all(|&x| x == 7));
            total += b.len();
            if total == 64 {
                break;
            }
        }
        assert_eq!(total, 64);
        h.join().unwrap();
    }

    #[test]
    fn monadic_roundtrip_through_epoll() {
        let rt = Runtime::builder().workers(2).build();
        let (w, r) = pipe(4); // tiny buffer forces epoll waits
        let payload = Bytes::from(vec![42u8; 1024]);
        let expect = payload.clone();
        rt.spawn(crate::do_m! {
            let res <- w.write_all_m(payload);
            crate::syscall::sys_nbio(move || res.expect("write side failed"))
        });
        let got = rt.block_on(crate::do_m! {
            let data <- r.read_exact_m(1024);
            crate::ThreadM::pure(data.expect("read side failed"))
        });
        assert_eq!(got, expect);
        let stats = rt.stats();
        assert!(
            stats.epoll_registrations > 0,
            "tiny buffer must force epoll waits"
        );
        rt.shutdown();
    }

    #[test]
    fn monadic_reader_sees_eof_on_writer_drop() {
        let rt = Runtime::builder().workers(1).build();
        let (w, r) = pipe(8);
        w.try_write(b"ab").unwrap();
        drop(w);
        let got = rt.block_on(r.read_m(16));
        assert_eq!(&got[..], b"ab");
        let eof = rt.block_on(r.read_m(16));
        assert!(eof.is_empty());
        rt.shutdown();
    }

    #[test]
    fn mixed_mode_monadic_writer_blocking_reader() {
        let rt = Runtime::builder().workers(2).build();
        let (w, r) = pipe(8);
        rt.spawn(crate::do_m! {
            let res <- w.write_all_m(Bytes::from(vec![9u8; 256]));
            crate::syscall::sys_nbio(move || res.unwrap())
        });
        let mut total = 0;
        while total < 256 {
            let b = r.read_blocking(64);
            assert!(!b.is_empty());
            total += b.len();
        }
        assert_eq!(total, 256);
        rt.shutdown();
    }
}
