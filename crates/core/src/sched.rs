//! Ready-queue disciplines for the real runtime.
//!
//! The paper ships one shared ready queue between its `worker_main` loops
//! and notes (§4.4) that "our current design can be further improved by
//! implementing a separate task queue for each scheduler and using work
//! stealing to balance the loads". Both designs live here:
//!
//! * [`ReadyQueue::Shared`] — one MPMC channel, the paper's architecture;
//! * [`ReadyQueue::Stealing`] — a per-worker deque plus a global injector,
//!   with Chase–Lev stealing between workers (the paper's future work).
//!
//! The scheduler-architecture ablation in `eveth-bench` compares them.

use std::cell::RefCell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

use crossbeam::channel::{self, Receiver, Sender};
use crossbeam::deque::{Injector, Stealer, Worker};

use crate::task::Task;

static NEXT_QUEUE_ID: AtomicUsize = AtomicUsize::new(1);

thread_local! {
    /// The calling worker thread's local deque, if it belongs to a
    /// stealing runtime: (queue id, worker handle).
    static LOCAL_WORKER: RefCell<Option<(usize, Worker<Task>)>> = const { RefCell::new(None) };
}

/// How runnable tasks travel from producers (spawns, wakeups, event
/// loops) to the `worker_main` schedulers.
pub enum ReadyQueue {
    /// One shared MPMC queue (paper Figure 14).
    Shared {
        /// Producer side.
        tx: Sender<Task>,
        /// Consumer side (every worker clones it).
        rx: Receiver<Task>,
    },
    /// Per-worker deques + global injector with work stealing (§4.4's
    /// suggested improvement).
    Stealing {
        /// This queue's identity (binds thread-local workers to it).
        id: usize,
        /// Overflow/injection queue for non-worker producers.
        injector: Injector<Task>,
        /// Steal handles onto every worker's deque.
        stealers: Vec<Stealer<Task>>,
    },
}

impl ReadyQueue {
    /// Builds the paper's shared-queue discipline.
    pub fn shared() -> Self {
        let (tx, rx) = channel::unbounded();
        ReadyQueue::Shared { tx, rx }
    }

    /// Builds the stealing discipline with `workers` local deques;
    /// returns the queue and the per-worker handles (hand one to each
    /// `worker_main` thread via [`ReadyQueue::register_local`]).
    pub fn stealing(workers: usize) -> (Self, Vec<Worker<Task>>) {
        let locals: Vec<Worker<Task>> = (0..workers).map(|_| Worker::new_fifo()).collect();
        let stealers = locals.iter().map(Worker::stealer).collect();
        (
            ReadyQueue::Stealing {
                id: NEXT_QUEUE_ID.fetch_add(1, Ordering::Relaxed),
                injector: Injector::new(),
                stealers,
            },
            locals,
        )
    }

    /// Binds `worker` to the calling OS thread so its pushes go to the
    /// local deque. Call once at `worker_main` startup.
    pub fn register_local(&self, worker: Worker<Task>) {
        if let ReadyQueue::Stealing { id, .. } = self {
            LOCAL_WORKER.with(|slot| *slot.borrow_mut() = Some((*id, worker)));
        }
    }

    /// Fetches the next runnable task for a worker thread, blocking up to
    /// `timeout`. Returns `None` on timeout (caller re-checks shutdown).
    pub fn pop(&self, timeout: Duration) -> Option<Task> {
        match self {
            ReadyQueue::Shared { rx, .. } => rx.recv_timeout(timeout).ok(),
            ReadyQueue::Stealing {
                injector, stealers, ..
            } => {
                let deadline = std::time::Instant::now() + timeout;
                loop {
                    // 1. Local deque.
                    let local =
                        LOCAL_WORKER.with(|slot| slot.borrow().as_ref().and_then(|(_, w)| w.pop()));
                    if local.is_some() {
                        return local;
                    }
                    // 2. Batch-steal from the injector into the local deque.
                    let stolen = LOCAL_WORKER.with(|slot| {
                        let slot = slot.borrow();
                        match slot.as_ref() {
                            Some((_, w)) => injector.steal_batch_and_pop(w).success(),
                            None => injector.steal().success(),
                        }
                    });
                    if stolen.is_some() {
                        return stolen;
                    }
                    // 3. Steal from a sibling.
                    for s in stealers {
                        if let Some(task) = s.steal().success() {
                            return task.into();
                        }
                    }
                    if std::time::Instant::now() >= deadline {
                        return None;
                    }
                    std::thread::sleep(Duration::from_micros(100));
                }
            }
        }
    }
}

impl ReadyQueue {
    /// Enqueues a runnable task. On a stealing queue, registered worker
    /// threads push to their own deque; everyone else (event loops,
    /// timers, devices) goes through the injector.
    pub fn push_task(&self, task: Task) {
        match self {
            ReadyQueue::Shared { tx, .. } => {
                let _ = tx.send(task);
            }
            ReadyQueue::Stealing { id, injector, .. } => {
                let mut task = Some(task);
                LOCAL_WORKER.with(|slot| {
                    let slot = slot.borrow();
                    if let Some((owner, worker)) = slot.as_ref() {
                        if owner == id {
                            worker.push(task.take().expect("task present"));
                        }
                    }
                });
                if let Some(task) = task {
                    injector.push(task);
                }
            }
        }
    }
}

impl std::fmt::Debug for ReadyQueue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReadyQueue::Shared { rx, .. } => write!(f, "ReadyQueue::Shared(len={})", rx.len()),
            ReadyQueue::Stealing { stealers, .. } => {
                write!(f, "ReadyQueue::Stealing(workers={})", stealers.len())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::TaskId;
    use crate::trace::Trace;

    fn task(n: u64) -> Task {
        Task::from_thunk(TaskId(n), Box::new(|| Trace::Ret))
    }

    #[test]
    fn shared_queue_roundtrip() {
        let q = ReadyQueue::shared();
        q.push_task(task(1));
        q.push_task(task(2));
        assert_eq!(q.pop(Duration::from_millis(10)).unwrap().tid(), TaskId(1));
        assert_eq!(q.pop(Duration::from_millis(10)).unwrap().tid(), TaskId(2));
        assert!(q.pop(Duration::from_millis(5)).is_none());
    }

    #[test]
    fn stealing_queue_injector_path() {
        let (q, _locals) = ReadyQueue::stealing(2);
        // This thread has no registered local worker: pushes go to the
        // injector, pops steal from it.
        q.push_task(task(7));
        assert_eq!(q.pop(Duration::from_millis(10)).unwrap().tid(), TaskId(7));
    }

    #[test]
    fn stealing_queue_local_fast_path_and_theft() {
        let (q, mut locals) = ReadyQueue::stealing(2);
        let q = std::sync::Arc::new(q);
        let victim_worker = locals.remove(0);
        let q2 = std::sync::Arc::clone(&q);
        // Victim thread registers, pushes locally, then stalls.
        let victim = std::thread::spawn(move || {
            q2.register_local(victim_worker);
            for i in 0..64 {
                q2.push_task(task(i));
            }
            // Consume a few from the local deque.
            let mut got = 0;
            while got < 8 {
                if q2.pop(Duration::from_millis(50)).is_some() {
                    got += 1;
                }
            }
            std::thread::sleep(Duration::from_millis(50));
        });
        // This (unregistered) thread steals the rest through stealers.
        let mut stolen = 0;
        while stolen < 56 {
            if q.pop(Duration::from_millis(100)).is_some() {
                stolen += 1;
            } else {
                break;
            }
        }
        victim.join().unwrap();
        assert_eq!(stolen, 56, "all remaining tasks must be stealable");
    }
}
