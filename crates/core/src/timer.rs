//! A hierarchical timer wheel with O(1) arm and **physical** cancel.
//!
//! The real runtime used to keep armed deadlines in a `BinaryHeap` with
//! lazy cancellation: a losing `timeout_evt` branch only flagged its
//! entry, which stayed resident until its (possibly far-future) deadline.
//! Under a million-connection churn workload every reaped or completed
//! session leaves one armed-then-cancelled idle deadline behind, so the
//! heap grew without bound — O(armed-deadlines) memory and log-time
//! operations over mostly-dead entries.
//!
//! This wheel is the classic hashed hierarchical design (Varghese &
//! Lauck): [`LEVELS`] levels of [`SLOTS`] slots, each level-0 tick
//! [`TICK_NS`] wide and each higher level covering [`SLOTS`]× the span
//! below it; deadlines beyond the top level wait in an overflow bucket
//! and cascade in as the wheel turns. Entries live in a generation-keyed
//! [`Slab`], and every entry records its (bucket, position), so
//! [`TimerWheel::cancel`] is an O(1) `swap_remove` that frees the slot
//! immediately — cancelled entries have zero residence time, and the
//! slab's free list means steady-state churn allocates nothing.

use crate::slab::{Slab, SlabKey};
use crate::time::Nanos;

/// Level-0 tick width: 2^20 ns ≈ 1.05 ms.
pub const TICK_NS: Nanos = 1 << TICK_SHIFT;
const TICK_SHIFT: u32 = 20;
/// log2(slots per level).
const SLOT_BITS: u32 = 6;
/// Slots per level.
pub const SLOTS: usize = 1 << SLOT_BITS;
/// Wheel levels; spans ~4.8 hours before the overflow bucket.
pub const LEVELS: usize = 4;
const OVERFLOW: usize = LEVELS * SLOTS;

/// Handle to one armed entry, for [`TimerWheel::cancel`]. Generation-keyed:
/// a handle outliving its entry (already fired or cancelled) is inert.
pub type TimerKey = SlabKey;

struct Entry<T> {
    deadline: Nanos,
    /// Arm-order tiebreak: simultaneous deadlines fire in arm order.
    seq: u64,
    due: T,
    /// Current (bucket, position) — kept exact so cancel can
    /// `swap_remove` without scanning.
    bucket: u32,
    pos: u32,
}

/// The wheel. Not internally synchronized: the runtime wraps it in the
/// timer thread's mutex, the same way the old heap was.
pub struct TimerWheel<T> {
    entries: Slab<Entry<T>>,
    /// `LEVELS × SLOTS` slot vectors plus the overflow bucket, flattened.
    buckets: Vec<Vec<TimerKey>>,
    /// Entries resident per level (`counts[LEVELS]` = overflow), so
    /// [`TimerWheel::expire`] can jump empty stretches of ticks instead
    /// of visiting each one.
    counts: [usize; LEVELS + 1],
    /// The level-0 tick the wheel has turned to.
    cur: u64,
    seq: u64,
}

impl<T> TimerWheel<T> {
    /// An empty wheel positioned at tick 0.
    pub fn new() -> Self {
        TimerWheel {
            entries: Slab::new(),
            buckets: (0..=OVERFLOW).map(|_| Vec::new()).collect(),
            counts: [0; LEVELS + 1],
            cur: 0,
            seq: 0,
        }
    }

    /// Armed entries currently resident (live only — cancelled entries are
    /// removed physically, so this is also the physical size).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is armed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Slab slots ever allocated (live + reusable) — the physical arena
    /// footprint, for tests asserting churn does not grow it.
    pub fn capacity(&self) -> usize {
        self.entries.capacity()
    }

    /// Which bucket a deadline tick belongs in, given the current tick.
    fn bucket_for(cur: u64, tick: u64) -> usize {
        let delta = tick.saturating_sub(cur);
        for level in 0..LEVELS {
            if delta < 1u64 << (SLOT_BITS * (level as u32 + 1)) {
                let slot = (tick >> (SLOT_BITS * level as u32)) as usize & (SLOTS - 1);
                return level * SLOTS + slot;
            }
        }
        OVERFLOW
    }

    /// Links an existing slab entry into the bucket its deadline belongs
    /// in (used by both arming and cascading).
    fn link(&mut self, key: TimerKey) {
        let entry = self.entries.get(key).expect("linking a live key");
        let tick = (entry.deadline >> TICK_SHIFT).max(self.cur);
        let bucket = Self::bucket_for(self.cur, tick);
        let pos = self.buckets[bucket].len() as u32;
        let entry = self.entries.get_mut(key).expect("linking a live key");
        entry.bucket = bucket as u32;
        entry.pos = pos;
        self.buckets[bucket].push(key);
        self.counts[bucket / SLOTS] += 1;
    }

    /// Removes the key at `bucket[pos]` by swap-remove, backpatching the
    /// moved entry's recorded position.
    fn unlink(&mut self, bucket: usize, pos: usize) {
        self.buckets[bucket].swap_remove(pos);
        self.counts[bucket / SLOTS] -= 1;
        if let Some(&moved) = self.buckets[bucket].get(pos) {
            self.entries.get_mut(moved).expect("bucket key live").pos = pos as u32;
        }
    }

    /// Arms an entry. O(1); allocation-free once the slab has warmed up.
    pub fn insert(&mut self, deadline: Nanos, due: T) -> TimerKey {
        let seq = self.seq;
        self.seq += 1;
        let key = self.entries.insert(Entry {
            deadline,
            seq,
            due,
            bucket: 0,
            pos: 0,
        });
        self.link(key);
        key
    }

    /// Disarms an entry, physically removing it. O(1). Returns the
    /// payload, or `None` if the key is stale (already fired or
    /// cancelled).
    pub fn cancel(&mut self, key: TimerKey) -> Option<T> {
        let entry = self.entries.remove(key)?;
        self.unlink(entry.bucket as usize, entry.pos as usize);
        Some(entry.due)
    }

    /// Turns the wheel up to `now`, returning every due entry sorted by
    /// (deadline, arm order).
    pub fn expire(&mut self, now: Nanos) -> Vec<(Nanos, u64, T)> {
        let target = now >> TICK_SHIFT;
        let mut due = Vec::new();
        loop {
            let slot = (self.cur as usize) & (SLOTS - 1);
            self.drain_due(slot, now, &mut due);
            if self.cur >= target {
                break;
            }
            // Advance: tick-by-tick while level 0 is occupied, otherwise
            // jump straight to the next cascade boundary of the lowest
            // occupied level (nothing can fire in between).
            let lowest = self.counts.iter().position(|&c| c > 0);
            self.cur = match lowest {
                Some(0) => self.cur + 1,
                Some(level) => {
                    let span = 1u64 << (SLOT_BITS * level as u32);
                    (self.cur | (span - 1)).saturating_add(1).min(target)
                }
                None => target,
            };
            self.cascade();
        }
        due.sort_by_key(|e| (e.0, e.1));
        due
    }

    /// Collects entries in level-0 slot `slot` whose deadline has passed.
    /// (Only the slot for the current tick can hold not-yet-due entries —
    /// sub-tick remainders — which stay put.)
    fn drain_due(&mut self, slot: usize, now: Nanos, due: &mut Vec<(Nanos, u64, T)>) {
        let mut pos = 0;
        while pos < self.buckets[slot].len() {
            let key = self.buckets[slot][pos];
            let deadline = self.entries.get(key).expect("bucket key live").deadline;
            if deadline <= now {
                let entry = self.entries.remove(key).expect("checked live");
                self.unlink(slot, pos);
                due.push((entry.deadline, entry.seq, entry.due));
            } else {
                pos += 1;
            }
        }
    }

    /// Re-buckets higher-level slots whose window the wheel just entered.
    fn cascade(&mut self) {
        for level in 1..=LEVELS {
            if self.cur & ((1 << (SLOT_BITS * level as u32)) - 1) != 0 {
                return;
            }
            let bucket = if level < LEVELS {
                let slot = (self.cur >> (SLOT_BITS * level as u32)) as usize & (SLOTS - 1);
                level * SLOTS + slot
            } else {
                OVERFLOW
            };
            let keys = std::mem::take(&mut self.buckets[bucket]);
            self.counts[bucket / SLOTS] -= keys.len();
            for key in keys {
                self.link(key);
            }
        }
    }

    /// A lower bound on the next live deadline (`None` when empty): exact
    /// for the imminent slot and the overflow bucket, next-visit floor for
    /// everything else. Safe to sleep until — the wheel never owes a
    /// wakeup before it.
    pub fn next_deadline_hint(&self) -> Option<Nanos> {
        if self.entries.is_empty() {
            return None;
        }
        let cur_slot = (self.cur as usize) & (SLOTS - 1);
        let mut best: Option<Nanos> = None;
        let fold = |d: Nanos, best: &mut Option<Nanos>| {
            *best = Some(best.map_or(d, |b: Nanos| b.min(d)));
        };
        // Exact scan where a floor would be uselessly loose: the slot the
        // wheel is sitting on (sub-tick remainders) and the far overflow.
        for &key in self.buckets[cur_slot].iter().chain(&self.buckets[OVERFLOW]) {
            fold(
                self.entries.get(key).expect("bucket key live").deadline,
                &mut best,
            );
        }
        for level in 0..LEVELS {
            if self.counts[level] == 0 {
                continue;
            }
            let shift = SLOT_BITS * level as u32;
            for slot in 0..SLOTS {
                let bucket = level * SLOTS + slot;
                if bucket == cur_slot || self.buckets[bucket].is_empty() {
                    continue;
                }
                // This bucket's entries cannot fire before the wheel next
                // visits it: the earliest tick > cur that is aligned to
                // the level's span and indexes this slot.
                let span = 1u64 << shift;
                let super_span = 1u64 << (shift + SLOT_BITS);
                let base = self.cur & !(super_span - 1);
                let mut t = base + (slot as u64) * span;
                if t <= self.cur {
                    t += super_span;
                }
                fold(t << TICK_SHIFT, &mut best);
            }
        }
        best
    }
}

impl<T> Default for TimerWheel<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> std::fmt::Debug for TimerWheel<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "TimerWheel(armed={}, tick={}, capacity={})",
            self.len(),
            self.cur,
            self.capacity()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::{MILLIS, SECS};

    #[test]
    fn entries_fire_in_deadline_then_arm_order() {
        let mut w = TimerWheel::new();
        w.insert(5 * MILLIS, "b1");
        w.insert(2 * MILLIS, "a");
        w.insert(5 * MILLIS, "b2");
        w.insert(9 * MILLIS, "c");
        let due: Vec<_> = w.expire(10 * MILLIS).into_iter().map(|e| e.2).collect();
        assert_eq!(due, vec!["a", "b1", "b2", "c"]);
        assert!(w.is_empty());
    }

    #[test]
    fn not_yet_due_entries_stay_armed() {
        let mut w = TimerWheel::new();
        w.insert(3 * MILLIS, "early");
        w.insert(40 * MILLIS, "late");
        let due = w.expire(10 * MILLIS);
        assert_eq!(due.len(), 1);
        assert_eq!(w.len(), 1);
        let due = w.expire(50 * MILLIS);
        assert_eq!(due[0].2, "late");
        assert!(w.is_empty());
    }

    #[test]
    fn sub_tick_deadlines_do_not_fire_early() {
        let mut w = TimerWheel::new();
        // Same tick, later nanosecond.
        w.insert(TICK_NS + 1000, "x");
        assert!(w.expire(TICK_NS + 999).is_empty());
        // The hint now points at the exact deadline, not the tick floor.
        assert_eq!(w.next_deadline_hint(), Some(TICK_NS + 1000));
        assert_eq!(w.expire(TICK_NS + 1000).len(), 1);
    }

    #[test]
    fn cancel_physically_removes() {
        let mut w = TimerWheel::new();
        let keys: Vec<_> = (0..100_000u64)
            .map(|i| w.insert(10 * SECS + i * 1000, i))
            .collect();
        assert_eq!(w.len(), 100_000);
        for k in keys {
            assert!(w.cancel(k).is_some());
        }
        assert_eq!(w.len(), 0, "cancelled entries have zero residence time");
        assert!(w.expire(20 * SECS).is_empty());
        // Stale keys are inert.
        let k = w.insert(SECS, 7);
        assert!(w.cancel(k).is_some());
        assert!(w.cancel(k).is_none());
    }

    #[test]
    fn arm_cancel_churn_does_not_grow_the_arena() {
        let mut w = TimerWheel::new();
        let warm: Vec<_> = (0..256u64).map(|i| w.insert(SECS, i)).collect();
        for k in warm {
            w.cancel(k);
        }
        let cap = w.capacity();
        for round in 0..1000u64 {
            let keys: Vec<_> = (0..256u64).map(|i| w.insert(SECS + round, i)).collect();
            for k in keys {
                w.cancel(k);
            }
        }
        assert_eq!(w.capacity(), cap, "churn must reuse slab slots");
    }

    #[test]
    fn long_deadlines_cascade_through_levels_and_overflow() {
        let mut w = TimerWheel::new();
        // One deadline per level plus one beyond the ~4.8h horizon.
        let spans = [
            10 * MILLIS,        // level 0
            200 * MILLIS,       // level 1
            10 * SECS,          // level 2
            1000 * SECS,        // level 3
            6 * 60 * 60 * SECS, // overflow
        ];
        for (i, &d) in spans.iter().enumerate() {
            w.insert(d, i);
        }
        let mut fired = Vec::new();
        let mut now = 0;
        while !w.is_empty() {
            now = w.next_deadline_hint().expect("armed").max(now + TICK_NS);
            for (_, _, v) in w.expire(now) {
                fired.push(v);
            }
        }
        assert_eq!(fired, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn cancel_mid_slot_backpatches_neighbors() {
        let mut w = TimerWheel::new();
        // All in one slot (same tick), then cancel from the middle.
        let ks: Vec<_> = (0..10u64).map(|i| w.insert(5 * MILLIS, i)).collect();
        w.cancel(ks[3]);
        w.cancel(ks[7]);
        let due: Vec<_> = w.expire(SECS).into_iter().map(|e| e.2).collect();
        assert_eq!(due, vec![0, 1, 2, 4, 5, 6, 8, 9]);
    }

    #[test]
    fn hint_is_a_valid_sleep_bound() {
        let mut w = TimerWheel::new();
        assert_eq!(w.next_deadline_hint(), None);
        w.insert(3 * SECS, "far");
        let hint = w.next_deadline_hint().expect("armed");
        assert!(hint <= 3 * SECS, "never later than the real deadline");
        assert!(
            hint >= 3 * SECS - TICK_NS * SLOTS as u64,
            "reasonably tight: {hint}"
        );
        assert!(
            w.expire(hint.saturating_sub(1)).is_empty(),
            "sleeping to the hint misses nothing"
        );
        assert_eq!(w.len(), 1);
    }

    #[test]
    fn interleaved_arm_fire_cancel_keeps_counts_consistent() {
        let mut w = TimerWheel::new();
        let mut rng = 0x1234_5678_9abc_def0u64;
        let step = |s: &mut u64| {
            *s ^= *s << 13;
            *s ^= *s >> 7;
            *s ^= *s << 17;
            *s
        };
        let mut live: Vec<TimerKey> = Vec::new();
        let mut now = 0u64;
        let mut fired = 0usize;
        let mut cancelled = 0usize;
        let mut armed = 0usize;
        for _ in 0..5_000 {
            match step(&mut rng) % 3 {
                0 => {
                    let dur = step(&mut rng) % (5 * SECS);
                    live.push(w.insert(now + dur, ()));
                    armed += 1;
                }
                1 if !live.is_empty() => {
                    let i = (step(&mut rng) as usize) % live.len();
                    if w.cancel(live.swap_remove(i)).is_some() {
                        cancelled += 1;
                    }
                }
                _ => {
                    now += step(&mut rng) % (500 * MILLIS);
                    fired += w.expire(now).len();
                }
            }
        }
        fired += w.expire(now + 10 * SECS).len();
        assert!(w.is_empty());
        assert_eq!(fired + cancelled, armed);
    }
}
