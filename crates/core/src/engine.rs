//! The trace interpreter shared by every scheduler in the system.
//!
//! The paper's `worker_main` (Figure 11) is a loop that fetches a trace from
//! the ready queue, forces it, and performs the requested system call.
//! [`run_task`] is that loop's body, factored out so that the real SMP
//! runtime, the discrete-event simulator, and the kernel-thread cost model
//! can all interpret the *same* per-client programs — the Lauer–Needham
//! duality made executable. Mode-specific behaviour (queues, clocks, cost
//! accounting, event-loop plumbing) lives behind [`RuntimeCtx`].

use std::sync::Arc;

use crate::aio::AioCompletion;
use crate::exception::Exception;
use crate::reactor::{EventPort, Unparker, Waiter};
use crate::task::{Task, TaskId, TaskShell};
use crate::time::Nanos;
use crate::trace::{BlioJob, Trace};

/// The scheduler action categories that runtimes may meter.
///
/// The real runtime counts these in its statistics; the simulator
/// additionally charges virtual CPU time per kind according to its cost
/// model, which is how the NPTL-vs-monadic comparisons of Figures 17–19 are
/// produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CostKind {
    /// One interpreted trace node (non-blocking work).
    Step,
    /// Thread creation (`SYS_FORK`).
    Fork,
    /// A scheduling switch between threads (yield, preemption).
    CtxSwitch,
    /// Registering interest with the epoll device.
    EpollRegister,
    /// Resuming a parked thread onto the ready queue.
    Wake,
    /// Submitting an asynchronous disk request.
    AioSubmit,
    /// Dispatching a job to the blocking-I/O pool.
    Blio,
    /// Parking on a scheduler-extension wait queue.
    Park,
    /// Arming a sleep timer.
    Sleep,
    /// Explicitly modelled CPU time (`sys_cpu`), in nanoseconds.
    Custom(Nanos),
}

/// Why a thread stopped running — the wait taxonomy behind the
/// simulator's blocked-time split.
///
/// Every blocking point in the system is one of these three: a readiness
/// wait on a pollable device (`sys_epoll_wait` — sockets, pipes), a
/// synchronization wait (`sys_park` — mutexes, channels, MVars, STM
/// `retry`), or an armed timer (`sys_sleep`). Keeping the classes apart is
/// what lets a report attribute latency: I/O wait is the network being
/// slow, lock wait is the application contending with itself, timer wait
/// is deliberate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WaitKind {
    /// Blocked on device readiness (`sys_epoll_wait`).
    Io,
    /// Blocked on a scheduler-extension wait queue (`sys_park`).
    Lock,
    /// Blocked on a timer (`sys_sleep`).
    Timer,
}

/// Cancellation handle for a timer armed with [`RuntimeCtx::timer_wake`].
///
/// Dropping the handle without calling [`cancel`](TimerHandle::cancel)
/// leaves the timer armed; firing a timer whose waiter was already woken
/// through another route is a no-op, so a leaked handle is safe — but the
/// event layer cancels losing timeout branches eagerly so abandoned
/// deadlines cannot keep a simulation's event heap alive (and its virtual
/// clock running) after the race is decided.
pub struct TimerHandle(Option<Box<dyn FnOnce() + Send>>);

impl TimerHandle {
    /// Wraps a runtime-specific cancellation action.
    pub fn new(cancel: impl FnOnce() + Send + 'static) -> Self {
        TimerHandle(Some(Box::new(cancel)))
    }

    /// A handle whose cancellation does nothing — for runtimes that
    /// discard expired registrations lazily (spent-waiter skip at expiry).
    pub fn noop() -> Self {
        TimerHandle(None)
    }

    /// Disarms the timer (best effort: the runtime may already have fired
    /// it, in which case the wake was delivered or fell on a spent waiter).
    pub fn cancel(mut self) {
        if let Some(f) = self.0.take() {
            f();
        }
    }
}

impl std::fmt::Debug for TimerHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "TimerHandle(cancellable={})", self.0.is_some())
    }
}

/// Services a scheduler needs from its runtime. One implementation exists
/// per execution mode (real, simulated, kernel-thread model).
pub trait RuntimeCtx: Send + Sync {
    /// Appends a runnable task to the ready queue.
    fn push_ready(&self, task: Task);
    /// Allocates a fresh thread id.
    fn next_tid(&self) -> TaskId;
    /// Records that a new thread `tid` exists (for liveness accounting and
    /// telemetry spans). `parent` is the forking thread when the spawn
    /// came from `SYS_FORK`, `None` for runtime-level spawns.
    fn task_spawned(&self, tid: TaskId, parent: Option<TaskId>);
    /// Records that a thread terminated normally.
    fn task_exited(&self, tid: TaskId);
    /// Records that a thread died with an uncaught exception.
    fn uncaught_exception(&self, tid: TaskId, e: Exception);
    /// Current time in nanoseconds since runtime start (virtual under
    /// simulation).
    fn now(&self) -> Nanos;
    /// Meters a scheduler action; see [`CostKind`].
    fn charge(&self, cost: CostKind);
    /// Delivery route for epoll readiness events (paper Figure 16).
    fn epoll_port(&self) -> Arc<dyn EventPort>;
    /// Delivery route for AIO completion events.
    fn aio_port(&self) -> Arc<dyn EventPort>;
    /// Parks `task` until `dur` has elapsed.
    fn sleep(&self, dur: Nanos, task: Task);
    /// Hands a blocking job to the blocking-I/O pool (paper §4.6).
    fn submit_blio(&self, job: BlioJob, shell: TaskShell);
    /// Notes that the current task is blocking, and why: `WaitKind::Lock`
    /// for scheduler-extension parks (`sys_park` — mutexes, channels,
    /// MVars, STM `retry`), `WaitKind::Io` for readiness waits
    /// (`sys_epoll_wait`), `WaitKind::Timer` for sleeps. Paired with the
    /// `push_ready` that eventually resumes it, this lets a runtime
    /// account how long threads spend blocked — and attribute the wait to
    /// I/O, locking, or timers separately; the simulator uses it for the
    /// `io_wait_ns`/`lock_wait_ns` split in its report. Default: no-op.
    fn task_parked(&self, _tid: TaskId, _kind: WaitKind) {}
    /// Re-attributes the in-flight blocked episode of `tid` to `kind`.
    ///
    /// A multi-branch park (`event::choose`) blocks through one `sys_park`
    /// and is provisionally charged as [`WaitKind::Lock`]; when a branch
    /// wins the race it calls this (via
    /// [`Unparker::reclassify`](crate::reactor::Unparker::reclassify))
    /// just before the wake, so the episode lands in the winner's wait
    /// class — a timeout win is timer wait, a readiness win is I/O wait.
    /// Called only while `tid` is still parked. Default: no-op.
    fn task_wait_reclass(&self, _tid: TaskId, _kind: WaitKind) {}
    /// The thread named its telemetry span (`SYS_ANNOTATE`). Runtimes
    /// with an attached telemetry hub forward the name; the default
    /// drops it.
    fn task_annotate(&self, _tid: TaskId, _name: Arc<str>) {}
    /// Arms a one-shot timer that wakes `waiter` after `dur` — the
    /// unparker-based sibling of [`RuntimeCtx::sleep`], used by the event
    /// layer's `timeout_evt` so a deadline can *race* other wait sources
    /// instead of committing the whole thread to a sleep. Firing a spent
    /// waiter must be a no-op. The returned handle should cancel eagerly
    /// where the runtime's timer store supports it (the simulator must,
    /// so abandoned timeouts do not extend virtual time); a runtime that
    /// skips spent waiters at expiry may return [`TimerHandle::noop`].
    fn timer_wake(&self, dur: Nanos, waiter: Waiter) -> TimerHandle;
    /// The concurrency-check probe attached to this runtime, if any (see
    /// [`crate::check`]). [`run_task`] installs it as the current turn's
    /// observer so the synchronization primitives can report protocol
    /// events. Default: none — instrumentation stays fully inert.
    fn check_probe(&self) -> Option<Arc<dyn crate::check::Probe>> {
        None
    }
}

/// Interprets one scheduling turn of `task`: forces trace nodes and performs
/// the system calls they request, until the task blocks, terminates, yields,
/// or exhausts `slice` consecutive non-blocking steps (the paper runs each
/// thread "for a large number of steps before switching to another thread to
/// improve locality", §4.2).
pub fn run_task(ctx: &Arc<dyn RuntimeCtx>, mut task: Task, slice: usize) {
    // Observational only: the guard publishes (tid, probe) to the check
    // instrumentation for the duration of the turn and charges nothing,
    // so attaching a probe never perturbs schedules or virtual time.
    let _turn = crate::check::TurnGuard::enter(task.tid().0, ctx.check_probe());
    let mut node = task.force();
    let mut steps: usize = 0;
    loop {
        if steps >= slice {
            ctx.charge(CostKind::CtxSwitch);
            task.set_next(Box::new(move || node));
            ctx.push_ready(task);
            return;
        }
        match node {
            Trace::Ret => {
                ctx.task_exited(task.tid());
                return;
            }
            Trace::Nbio(f) => {
                ctx.charge(CostKind::Step);
                node = f();
                steps += 1;
            }
            Trace::Fork(child, parent) => {
                ctx.charge(CostKind::Fork);
                let tid = ctx.next_tid();
                ctx.task_spawned(tid, Some(task.tid()));
                ctx.push_ready(Task::from_thunk(tid, child));
                node = parent();
                steps += 1;
            }
            Trace::Yield(k) => {
                ctx.charge(CostKind::CtxSwitch);
                task.set_next(k);
                ctx.push_ready(task);
                return;
            }
            Trace::EpollWait(fd, interest, k) => {
                ctx.charge(CostKind::EpollRegister);
                ctx.task_parked(task.tid(), WaitKind::Io);
                task.set_next(k);
                let dev = Arc::clone(fd.device());
                let unparker = Unparker::new(task, Arc::clone(ctx));
                dev.register(interest, Waiter::new(unparker, ctx.epoll_port()));
                return;
            }
            Trace::AioRead(req, cont) => {
                ctx.charge(CostKind::AioSubmit);
                let (shell, _) = task.into_parts();
                let done = AioCompletion::new(shell, cont, Arc::clone(ctx), ctx.aio_port());
                req.file.submit_read(req.offset, req.len, done);
                return;
            }
            Trace::AioWrite(req, cont) => {
                ctx.charge(CostKind::AioSubmit);
                let (shell, _) = task.into_parts();
                let done = AioCompletion::new(shell, cont, Arc::clone(ctx), ctx.aio_port());
                req.file.submit_write(req.offset, req.data, done);
                return;
            }
            Trace::Blio(job) => {
                ctx.charge(CostKind::Blio);
                let (shell, _) = task.into_parts();
                ctx.submit_blio(job, shell);
                return;
            }
            Trace::Throw(e) => {
                ctx.charge(CostKind::Step);
                match task.shell_mut().pop_handler() {
                    Some(h) => {
                        node = h(e);
                        steps += 1;
                    }
                    None => {
                        ctx.uncaught_exception(task.tid(), e);
                        return;
                    }
                }
            }
            Trace::Catch { body, handler } => {
                ctx.charge(CostKind::Step);
                task.shell_mut().push_handler(handler);
                node = body();
                steps += 1;
            }
            Trace::CatchPop(k) => {
                task.shell_mut().pop_handler();
                node = k();
                steps += 1;
            }
            Trace::Sleep(dur, k) => {
                ctx.charge(CostKind::Sleep);
                ctx.task_parked(task.tid(), WaitKind::Timer);
                task.set_next(k);
                ctx.sleep(dur, task);
                return;
            }
            Trace::GetTime(f) => {
                node = f(ctx.now());
                steps += 1;
            }
            Trace::Cpu(dur, k) => {
                ctx.charge(CostKind::Custom(dur));
                node = k();
                steps += 1;
            }
            Trace::Park(register, k) => {
                ctx.charge(CostKind::Park);
                ctx.task_parked(task.tid(), WaitKind::Lock);
                task.set_next(k);
                let unparker = Unparker::new(task, Arc::clone(ctx));
                register(unparker);
                return;
            }
            Trace::Annotate(name, k) => {
                // Deliberately uncharged: naming a span must never move
                // the virtual clock (the recorder stays off the report
                // path). Still a step for slice accounting, so annotation
                // loops cannot wedge a scheduler turn.
                ctx.task_annotate(task.tid(), name);
                node = k();
                steps += 1;
            }
        }
    }
}

/// Spawns a monadic program as a new thread through a bare [`RuntimeCtx`] —
/// the hook device drivers (like the TCP stack's event loops) use to start
/// threads without holding a full runtime handle.
pub fn spawn_thread(ctx: &Arc<dyn RuntimeCtx>, m: crate::ThreadM<()>) -> TaskId {
    let tid = ctx.next_tid();
    ctx.task_spawned(tid, None);
    ctx.push_ready(Task::from_thread(tid, m));
    tid
}

/// Test-support runtime context: a single-threaded ready list with inline
/// timers and blocking jobs. Used by unit tests throughout the workspace
/// (and usable by downstream crates' tests); not a real scheduler.
pub mod testing {
    use super::*;
    use crate::reactor::DirectPort;
    use parking_lot::Mutex;
    use std::collections::VecDeque;
    use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

    /// A [`RuntimeCtx`] that records everything and never blocks.
    #[derive(Debug)]
    pub struct CountingCtx {
        ready: Mutex<VecDeque<Task>>,
        next_tid: AtomicU64,
        live: AtomicI64,
        uncaught: Mutex<Vec<(TaskId, Exception)>>,
        exited: Mutex<Vec<TaskId>>,
        charges: Mutex<Vec<CostKind>>,
        clock: AtomicU64,
    }

    impl CountingCtx {
        /// Fresh empty context.
        pub fn new() -> Self {
            CountingCtx {
                ready: Mutex::new(VecDeque::new()),
                next_tid: AtomicU64::new(1),
                live: AtomicI64::new(0),
                uncaught: Mutex::new(Vec::new()),
                exited: Mutex::new(Vec::new()),
                charges: Mutex::new(Vec::new()),
                clock: AtomicU64::new(0),
            }
        }

        /// Number of tasks currently queued.
        pub fn ready_count(&self) -> usize {
            self.ready.lock().len()
        }

        /// Pops the next queued task, if any.
        pub fn pop_ready(&self) -> Option<Task> {
            self.ready.lock().pop_front()
        }

        /// Exceptions that escaped their threads.
        pub fn uncaught(&self) -> Vec<(TaskId, Exception)> {
            self.uncaught.lock().clone()
        }

        /// Threads that exited normally.
        pub fn exited(&self) -> Vec<TaskId> {
            self.exited.lock().clone()
        }

        /// All metered actions, in order.
        pub fn charges(&self) -> Vec<CostKind> {
            self.charges.lock().clone()
        }

        /// Currently live (spawned minus finished) threads.
        pub fn live(&self) -> i64 {
            self.live.load(Ordering::SeqCst)
        }

        /// Spawns a monadic program as a task on the ready list.
        pub fn spawn(self: &Arc<Self>, m: crate::ThreadM<()>) -> TaskId {
            let tid = self.next_tid();
            self.task_spawned(tid, None);
            self.ready.lock().push_back(Task::from_thread(tid, m));
            tid
        }

        /// Runs queued tasks round-robin until the ready list drains.
        /// Parked tasks woken by devices re-enter the list and keep running.
        pub fn run_all(self: &Arc<Self>, slice: usize) {
            let ctx: Arc<dyn RuntimeCtx> = Arc::clone(self) as Arc<dyn RuntimeCtx>;
            while let Some(t) = self.pop_ready() {
                run_task(&ctx, t, slice);
            }
        }
    }

    impl Default for CountingCtx {
        fn default() -> Self {
            Self::new()
        }
    }

    impl RuntimeCtx for CountingCtx {
        fn push_ready(&self, task: Task) {
            self.ready.lock().push_back(task);
        }
        fn next_tid(&self) -> TaskId {
            TaskId(self.next_tid.fetch_add(1, Ordering::Relaxed))
        }
        fn task_spawned(&self, _tid: TaskId, _parent: Option<TaskId>) {
            self.live.fetch_add(1, Ordering::SeqCst);
        }
        fn task_exited(&self, tid: TaskId) {
            self.live.fetch_sub(1, Ordering::SeqCst);
            self.exited.lock().push(tid);
        }
        fn uncaught_exception(&self, tid: TaskId, e: Exception) {
            self.live.fetch_sub(1, Ordering::SeqCst);
            self.uncaught.lock().push((tid, e));
        }
        fn now(&self) -> Nanos {
            self.clock.fetch_add(1, Ordering::Relaxed)
        }
        fn charge(&self, cost: CostKind) {
            self.charges.lock().push(cost);
        }
        fn epoll_port(&self) -> Arc<dyn EventPort> {
            Arc::new(DirectPort)
        }
        fn aio_port(&self) -> Arc<dyn EventPort> {
            Arc::new(DirectPort)
        }
        fn sleep(&self, _dur: Nanos, task: Task) {
            // Timers fire immediately in the test context.
            self.ready.lock().push_back(task);
        }
        fn timer_wake(&self, _dur: Nanos, waiter: Waiter) -> TimerHandle {
            // Like `sleep`, timers fire immediately in the test context.
            waiter.wake();
            TimerHandle::noop()
        }
        fn submit_blio(&self, job: BlioJob, shell: TaskShell) {
            let next = job();
            self.ready.lock().push_back(Task::from_parts(shell, next));
        }
    }

    /// Convenience constructor used across unit tests.
    pub fn noop_ctx() -> Arc<CountingCtx> {
        Arc::new(CountingCtx::new())
    }
}

#[cfg(test)]
mod tests {
    use super::testing::noop_ctx;
    use super::*;
    use crate::syscall::*;
    use crate::ThreadM;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn runs_to_completion_and_counts_exit() {
        let ctx = noop_ctx();
        let tid = ctx.spawn(ThreadM::pure(()));
        ctx.run_all(128);
        assert_eq!(ctx.exited(), vec![tid]);
        assert_eq!(ctx.live(), 0);
    }

    #[test]
    fn fork_runs_both_branches() {
        static N: AtomicU64 = AtomicU64::new(0);
        let ctx = noop_ctx();
        ctx.spawn(crate::do_m! {
            sys_fork(sys_nbio(|| { N.fetch_add(1, Ordering::SeqCst); }));
            sys_nbio(|| { N.fetch_add(10, Ordering::SeqCst); })
        });
        ctx.run_all(128);
        assert_eq!(N.load(Ordering::SeqCst), 11);
        assert_eq!(ctx.live(), 0);
    }

    #[test]
    fn slice_preempts_long_nbio_runs() {
        let ctx = noop_ctx();
        let counter = std::sync::Arc::new(AtomicU64::new(0));
        let c = counter.clone();
        ctx.spawn(crate::loop_m(0u32, move |i| {
            let c = c.clone();
            sys_nbio(move || {
                c.fetch_add(1, Ordering::SeqCst);
            })
            .map(move |_| {
                if i < 9 {
                    crate::Loop::Continue(i + 1)
                } else {
                    crate::Loop::Break(())
                }
            })
        }));
        // Slice of 3 forces several requeues; work still completes.
        ctx.run_all(3);
        assert_eq!(counter.load(Ordering::SeqCst), 10);
        let switches = ctx
            .charges()
            .iter()
            .filter(|c| matches!(c, CostKind::CtxSwitch))
            .count();
        assert!(switches >= 3, "expected preemptions, got {switches}");
    }

    #[test]
    fn throw_without_handler_is_uncaught() {
        let ctx = noop_ctx();
        let tid = ctx.spawn(sys_throw::<()>("boom"));
        ctx.run_all(128);
        let u = ctx.uncaught();
        assert_eq!(u.len(), 1);
        assert_eq!(u[0].0, tid);
        assert_eq!(u[0].1.message(), "boom");
        assert_eq!(ctx.live(), 0);
    }

    #[test]
    fn catch_handles_and_continues() {
        static OK: AtomicU64 = AtomicU64::new(0);
        let ctx = noop_ctx();
        ctx.spawn(crate::do_m! {
            let v <- sys_catch(sys_throw::<u64>("x"), |_e| ThreadM::pure(7u64));
            sys_nbio(move || { OK.store(v, Ordering::SeqCst); })
        });
        ctx.run_all(128);
        assert!(ctx.uncaught().is_empty());
        assert_eq!(OK.load(Ordering::SeqCst), 7);
    }

    #[test]
    fn yield_requeues_at_back() {
        let order = std::sync::Arc::new(parking_lot::Mutex::new(Vec::new()));
        let ctx = noop_ctx();
        for name in ["a", "b"] {
            let order = order.clone();
            ctx.spawn(crate::do_m! {
                sys_nbio({ let o = order.clone(); move || o.lock().push(format!("{name}1")) });
                sys_yield();
                sys_nbio(move || order.lock().push(format!("{name}2")))
            });
        }
        ctx.run_all(1);
        let log = order.lock().clone();
        // With slice=1 each thread runs one step then requeues: strict
        // round-robin interleaving.
        assert_eq!(log, vec!["a1", "b1", "a2", "b2"]);
    }

    #[test]
    fn park_then_unpark_resumes() {
        static DONE: AtomicU64 = AtomicU64::new(0);
        let ctx = noop_ctx();
        let slot: std::sync::Arc<parking_lot::Mutex<Option<crate::reactor::Unparker>>> =
            std::sync::Arc::new(parking_lot::Mutex::new(None));
        let s2 = slot.clone();
        ctx.spawn(crate::do_m! {
            sys_park(move |u| { *s2.lock() = Some(u); });
            sys_nbio(|| { DONE.store(1, Ordering::SeqCst); })
        });
        ctx.run_all(128);
        assert_eq!(DONE.load(Ordering::SeqCst), 0, "must still be parked");
        slot.lock().take().unwrap().unpark();
        ctx.run_all(128);
        assert_eq!(DONE.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn blio_runs_job_then_continuation() {
        static V: AtomicU64 = AtomicU64::new(0);
        let ctx = noop_ctx();
        ctx.spawn(crate::do_m! {
            let x <- sys_blio(|| 21u64);
            sys_nbio(move || { V.store(x * 2, Ordering::SeqCst); })
        });
        ctx.run_all(128);
        assert_eq!(V.load(Ordering::SeqCst), 42);
    }

    #[test]
    fn sys_ret_terminates_early() {
        static AFTER: AtomicU64 = AtomicU64::new(0);
        let ctx = noop_ctx();
        ctx.spawn(crate::do_m! {
            sys_ret::<()>();
            sys_nbio(|| { AFTER.store(1, Ordering::SeqCst); })
        });
        ctx.run_all(128);
        assert_eq!(AFTER.load(Ordering::SeqCst), 0);
        assert_eq!(ctx.live(), 0);
    }
}
