//! Concurrency-check instrumentation: the probe interface the correctness
//! tooling (`eveth-check`) attaches to a runtime, plus the thread-local
//! plumbing the synchronization primitives use to report their protocol
//! events.
//!
//! The design mirrors [`crate::telemetry`]: a runtime owns an optional
//! [`Probe`] (first attach wins), every hook is a no-op when nothing is
//! attached, and **no hook ever charges the cost model** — attaching a
//! probe must not move virtual time or change a schedule. The primitives
//! (`Mutex`, `Chan`, `SyncChan`, `MVar`, `Signal`, STM `TVar`s) report
//! three things through this module:
//!
//! * **operations** ([`op`]) — acquire/release, publish/consume,
//!   waiter registration — each carrying the resource id, kind, and an
//!   *availability snapshot* taken under the primitive's own lock;
//! * **wake attribution** ([`wake_scope`]) — an RAII scope wrapping the
//!   section of an operation that wakes waiters, so the runtime's
//!   `push_ready` can attribute the resulting wakeups to the resource
//!   (and to the waking thread);
//! * **shared-cell accesses** ([`access`]) — reads/writes of cells a test
//!   has declared interesting, for happens-before race checking.
//!
//! Everything here is observational. A probe receives events; it never
//! influences execution.

use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use crate::engine::WaitKind;

/// What kind of synchronization resource an [`op`] happened on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ResKind {
    /// A monadic [`crate::sync::Mutex`].
    Mutex,
    /// An unbounded [`crate::sync::Chan`].
    Chan,
    /// A bounded [`crate::sync::SyncChan`].
    SyncChan,
    /// An [`crate::sync::MVar`].
    MVar,
    /// A [`crate::event::Signal`] broadcast.
    Signal,
    /// An STM transactional variable.
    Stm,
}

impl ResKind {
    /// Human-readable name used in check reports.
    pub fn name(self) -> &'static str {
        match self {
            ResKind::Mutex => "Mutex",
            ResKind::Chan => "Chan",
            ResKind::SyncChan => "SyncChan",
            ResKind::MVar => "MVar",
            ResKind::Signal => "Signal",
            ResKind::Stm => "TVar",
        }
    }
}

/// What a reported [`op`] did to its resource.
///
/// The availability snapshot on each op is a two-sided `[u64; 2]`:
/// side `0` is what *takers* wait for (queued items, an unlocked mutex, a
/// fired signal, a tvar's commit version), side `1` what *putters* wait
/// for (free capacity, an empty MVar). A thread parked on side `s` while
/// the final snapshot exceeds the snapshot its registration saw is a lost
/// wakeup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// Mutex lock taken (the reporting thread is now the holder).
    Acquire,
    /// Mutex lock released.
    Release,
    /// The resource became (more) available to takers: a send, a put, a
    /// signal fire, an STM commit.
    Publish,
    /// A taker consumed availability: a receive, a take.
    Consume,
    /// The reporting thread registered as a parked *taker* (side 0).
    BlockTake,
    /// The reporting thread registered as a parked *putter* (side 1).
    BlockPut,
    /// A consumed-but-unused wakeup was passed to the next waiter.
    Baton,
}

/// Observer interface for a runtime's concurrency events. All methods
/// default to no-ops so probes implement only what they need; every
/// method must be cheap and must not call back into the runtime.
pub trait Probe: Send + Sync {
    /// A scheduler turn started for `tid` (one event per turn — the
    /// sequence of these is the schedule fingerprint).
    fn on_scheduled(&self, _tid: u64) {}
    /// Thread `tid` was created; `parent` is the forking thread for
    /// `sys_fork`, `None` for runtime-level spawns.
    fn on_spawn(&self, _tid: u64, _parent: Option<u64>) {}
    /// Thread `tid` finished (normally or via an uncaught exception).
    fn on_exit(&self, _tid: u64) {}
    /// Thread `tid` blocked (`sys_park` / `sys_epoll_wait` / `sys_sleep`).
    fn on_park(&self, _tid: u64, _kind: WaitKind) {}
    /// A parked thread was made runnable. `waker` is the monadic thread
    /// whose turn performed the wake (`None` for clock/device wakes from
    /// outside any turn), `rid` the resource the wake is attributed to
    /// (`None` when the wake did not come from an instrumented
    /// primitive's wake section).
    fn on_wake(&self, _target: u64, _waker: Option<u64>, _rid: Option<u64>) {}
    /// Thread `tid` named its telemetry span.
    fn on_annotate(&self, _tid: u64, _name: &str) {}
    /// A synchronization operation on resource `rid`. `tid` is `None`
    /// when the op happened outside any monadic turn (setup code on a
    /// host thread).
    fn on_op(&self, _tid: Option<u64>, _rid: u64, _res: ResKind, _op: OpKind, _avail: [u64; 2]) {}
    /// A declared shared cell was read (`write == false`) or written.
    fn on_access(&self, _tid: u64, _cell: u64, _name: &str, _write: bool) {}
}

// Fast path: stays false until the first turn ever runs with a probe
// attached, so unprobed runs (every benchmark, all tier-1 suites) pay one
// relaxed load per instrumented op and nothing else.
static PROBES_EVER: AtomicBool = AtomicBool::new(false);

static NEXT_RID: AtomicU64 = AtomicU64::new(1);
static NEXT_CELL: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static CURRENT: RefCell<Option<(u64, Arc<dyn Probe>)>> = const { RefCell::new(None) };
    static WAKE_RID: Cell<Option<u64>> = const { Cell::new(None) };
}

/// Allocates a process-global resource id. Ids are only unique, not
/// dense — probes should normalize to first-seen order for deterministic
/// reports.
pub fn new_rid() -> u64 {
    NEXT_RID.fetch_add(1, Ordering::Relaxed)
}

/// Allocates a process-global shared-cell id (same caveat as [`new_rid`]).
pub fn new_cell_id() -> u64 {
    NEXT_CELL.fetch_add(1, Ordering::Relaxed)
}

/// RAII guard marking the current OS thread as executing one scheduler
/// turn of monadic thread `tid`. Installed by the trace interpreter;
/// everything [`op`]/[`access`]/[`wake_attribution`] report is relative
/// to the innermost installed turn.
#[derive(Debug)]
pub struct TurnGuard {
    installed: bool,
}

impl TurnGuard {
    /// Enters a turn. With `probe == None` this is a no-op guard.
    pub fn enter(tid: u64, probe: Option<Arc<dyn Probe>>) -> TurnGuard {
        match probe {
            None => TurnGuard { installed: false },
            Some(p) => {
                PROBES_EVER.store(true, Ordering::Relaxed);
                p.on_scheduled(tid);
                CURRENT.with(|c| *c.borrow_mut() = Some((tid, p)));
                TurnGuard { installed: true }
            }
        }
    }
}

impl Drop for TurnGuard {
    fn drop(&mut self) {
        if self.installed {
            CURRENT.with(|c| *c.borrow_mut() = None);
        }
    }
}

/// RAII scope attributing any wakeups performed inside it to `rid`.
/// Scopes nest; the innermost wins.
#[derive(Debug)]
pub struct WakeScope {
    prev: Option<u64>,
    active: bool,
}

/// Opens a [`WakeScope`] for `rid`. Free when no probe has ever attached.
pub fn wake_scope(rid: u64) -> WakeScope {
    if !PROBES_EVER.load(Ordering::Relaxed) {
        return WakeScope {
            prev: None,
            active: false,
        };
    }
    let prev = WAKE_RID.with(|w| w.replace(Some(rid)));
    WakeScope { prev, active: true }
}

impl Drop for WakeScope {
    fn drop(&mut self) {
        if self.active {
            let prev = self.prev;
            WAKE_RID.with(|w| w.set(prev));
        }
    }
}

/// The monadic thread whose turn is executing on this OS thread, if any.
pub fn current_tid() -> Option<u64> {
    if !PROBES_EVER.load(Ordering::Relaxed) {
        return None;
    }
    CURRENT.with(|c| c.borrow().as_ref().map(|(tid, _)| *tid))
}

/// `(waker, rid)` attribution for a wake being performed right now: the
/// current turn's thread and the innermost open wake scope.
pub fn wake_attribution() -> (Option<u64>, Option<u64>) {
    if !PROBES_EVER.load(Ordering::Relaxed) {
        return (None, None);
    }
    (current_tid(), WAKE_RID.with(|w| w.get()))
}

/// Reports a synchronization operation to the current turn's probe (a
/// no-op without one). Call under the primitive's own lock so the
/// availability snapshot is exact at the instant of the op.
pub fn op(rid: u64, res: ResKind, kind: OpKind, avail: [u64; 2]) {
    if !PROBES_EVER.load(Ordering::Relaxed) {
        return;
    }
    CURRENT.with(|c| {
        if let Some((tid, p)) = c.borrow().as_ref() {
            p.on_op(Some(*tid), rid, res, kind, avail);
        }
    });
}

/// Reports a declared shared-cell access to the current turn's probe.
pub fn access(cell: u64, name: &str, write: bool) {
    if !PROBES_EVER.load(Ordering::Relaxed) {
        return;
    }
    CURRENT.with(|c| {
        if let Some((tid, p)) = c.borrow().as_ref() {
            p.on_access(*tid, cell, name, write);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use parking_lot::Mutex;

    #[derive(Default)]
    struct Rec {
        events: Mutex<Vec<String>>,
    }

    impl Probe for Rec {
        fn on_scheduled(&self, tid: u64) {
            self.events.lock().push(format!("sched {tid}"));
        }
        fn on_op(&self, tid: Option<u64>, rid: u64, res: ResKind, op: OpKind, avail: [u64; 2]) {
            self.events
                .lock()
                .push(format!("op {tid:?} {rid} {} {op:?} {avail:?}", res.name()));
        }
    }

    #[test]
    fn ops_are_attributed_to_the_turn() {
        let rec = Arc::new(Rec::default());
        let rid = new_rid();
        {
            let _turn = TurnGuard::enter(7, Some(rec.clone() as Arc<dyn Probe>));
            assert_eq!(current_tid(), Some(7));
            op(rid, ResKind::Chan, OpKind::Publish, [1, 0]);
            let (waker, scope_rid) = {
                let _scope = wake_scope(rid);
                wake_attribution()
            };
            assert_eq!((waker, scope_rid), (Some(7), Some(rid)));
        }
        assert_eq!(current_tid(), None);
        assert_eq!(wake_attribution(), (None, None));
        let ev = rec.events.lock().clone();
        assert_eq!(ev.len(), 2);
        assert!(ev[0].starts_with("sched 7"));
        assert!(ev[1].contains("Publish"));
    }

    #[test]
    fn wake_scopes_nest() {
        let rec = Arc::new(Rec::default());
        let _turn = TurnGuard::enter(1, Some(rec as Arc<dyn Probe>));
        let (a, b) = (new_rid(), new_rid());
        let _outer = wake_scope(a);
        {
            let _inner = wake_scope(b);
            assert_eq!(wake_attribution().1, Some(b));
        }
        assert_eq!(wake_attribution().1, Some(a));
    }
}
