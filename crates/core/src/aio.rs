//! Asynchronous file I/O abstractions (paper §4.5).
//!
//! The paper submits disk reads through Linux AIO and harvests completions
//! in a dedicated event loop. Here a disk is anything implementing
//! [`AioFile`]: the real runtime ships a RAM-backed implementation
//! ([`crate::io::ramdisk`]), and `eveth-simos` provides a seek-accurate
//! simulated disk with elevator scheduling. Completions resume the waiting
//! monadic thread through the runtime's AIO event port.

use std::fmt;
use std::sync::Arc;

use bytes::Bytes;
use parking_lot::Mutex;

use crate::engine::RuntimeCtx;
use crate::reactor::{EventPort, Unparker};
use crate::task::{Task, TaskShell};
use crate::time::Nanos;
use crate::trace::AioCont;

/// Errors reported by file and device I/O.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IoError {
    /// The named file does not exist.
    NotFound,
    /// The request extends past the end of the file or device.
    OutOfRange,
    /// The file or device was closed.
    Closed,
    /// The operation is not supported by this device.
    Unsupported,
    /// Any other failure, with a description.
    Other(Arc<str>),
}

impl fmt::Display for IoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IoError::NotFound => f.write_str("file not found"),
            IoError::OutOfRange => f.write_str("request out of range"),
            IoError::Closed => f.write_str("file closed"),
            IoError::Unsupported => f.write_str("operation not supported"),
            IoError::Other(msg) => f.write_str(msg),
        }
    }
}

impl std::error::Error for IoError {}

/// Result of an asynchronous I/O operation: the bytes read (possibly short
/// at end-of-file), or the bytes-written count encoded as an empty buffer
/// for writes.
pub type AioResult = Result<Bytes, IoError>;

/// A file on which asynchronous reads and writes can be submitted.
///
/// Implementations must *never* block the calling thread: they record the
/// request and complete it later (possibly immediately) by invoking the
/// [`AioCompletion`].
pub trait AioFile: Send + Sync {
    /// Size of the file in bytes.
    fn len(&self) -> u64;

    /// True if the file is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Submits an asynchronous read of `len` bytes at `offset`.
    fn submit_read(&self, offset: u64, len: usize, done: AioCompletion);

    /// Submits an asynchronous write of `data` at `offset`.
    fn submit_write(&self, offset: u64, data: Bytes, done: AioCompletion);
}

/// A pending `SYS_AIO_READ` carried by a trace node.
pub struct AioReadReq {
    /// Target file.
    pub file: Arc<dyn AioFile>,
    /// Byte offset of the read.
    pub offset: u64,
    /// Number of bytes requested.
    pub len: usize,
}

impl fmt::Debug for AioReadReq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AioReadReq")
            .field("offset", &self.offset)
            .field("len", &self.len)
            .finish()
    }
}

/// A pending `SYS_AIO_WRITE` carried by a trace node.
pub struct AioWriteReq {
    /// Target file.
    pub file: Arc<dyn AioFile>,
    /// Byte offset of the write.
    pub offset: u64,
    /// Bytes to write.
    pub data: Bytes,
}

impl fmt::Debug for AioWriteReq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AioWriteReq")
            .field("offset", &self.offset)
            .field("len", &self.data.len())
            .finish()
    }
}

struct PendingAio {
    shell: TaskShell,
    cont: AioCont,
    ctx: Arc<dyn RuntimeCtx>,
    port: Arc<dyn EventPort>,
}

/// One-shot completion handle for a submitted AIO request.
///
/// Devices call [`complete`](AioCompletion::complete) exactly once (extra
/// calls are ignored); the suspended thread is resumed with the result via
/// the runtime's AIO event port — the paper's dedicated AIO event loop.
#[derive(Clone)]
pub struct AioCompletion {
    inner: Arc<Mutex<Option<PendingAio>>>,
}

impl AioCompletion {
    /// Packages a parked thread continuation as a completion handle. Called
    /// by the scheduler engine; devices only consume completions.
    pub fn new(
        shell: TaskShell,
        cont: AioCont,
        ctx: Arc<dyn RuntimeCtx>,
        port: Arc<dyn EventPort>,
    ) -> Self {
        AioCompletion {
            inner: Arc::new(Mutex::new(Some(PendingAio {
                shell,
                cont,
                ctx,
                port,
            }))),
        }
    }

    /// Delivers the result now, resuming the waiting thread. Returns `false`
    /// if the completion had already been delivered.
    pub fn complete(&self, res: AioResult) -> bool {
        match self.inner.lock().take() {
            Some(p) => {
                let cont = p.cont;
                let task = Task::from_parts(p.shell, Box::new(move || cont(res)));
                p.port.notify(Unparker::new(task, p.ctx));
                true
            }
            None => false,
        }
    }

    /// Delivers the result after a delay on the runtime's timer — used by
    /// devices that model fixed access latency. Returns `false` if already
    /// delivered.
    pub fn complete_after(&self, res: AioResult, delay: Nanos) -> bool {
        match self.inner.lock().take() {
            Some(p) => {
                let cont = p.cont;
                let task = Task::from_parts(p.shell, Box::new(move || cont(res)));
                p.ctx.sleep(delay, task);
                true
            }
            None => false,
        }
    }

    /// True if the result has already been delivered.
    pub fn is_complete(&self) -> bool {
        self.inner.lock().is_none()
    }
}

impl fmt::Debug for AioCompletion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AioCompletion")
            .field("complete", &self.is_complete())
            .finish()
    }
}

/// Maps request paths to files — the interface between servers (which name
/// files) and storage devices (which hold them).
pub trait FileStore: Send + Sync {
    /// Resolves `path` to an open file, or `None` if absent.
    fn lookup(&self, path: &str) -> Option<Arc<dyn AioFile>>;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::testing::noop_ctx;
    use crate::reactor::DirectPort;
    use crate::task::TaskId;
    use crate::trace::Trace;

    fn completion(ctx: &Arc<crate::engine::testing::CountingCtx>) -> AioCompletion {
        AioCompletion::new(
            TaskShell::new(TaskId(1)),
            Box::new(|_res| Trace::Ret),
            Arc::clone(ctx) as Arc<dyn RuntimeCtx>,
            Arc::new(DirectPort),
        )
    }

    #[test]
    fn complete_is_one_shot() {
        let ctx = noop_ctx();
        let c = completion(&ctx);
        assert!(!c.is_complete());
        assert!(c.complete(Ok(Bytes::from_static(b"x"))));
        assert!(c.is_complete());
        assert!(!c.complete(Err(IoError::Closed)));
        assert_eq!(ctx.ready_count(), 1);
    }

    #[test]
    fn complete_after_uses_timer() {
        let ctx = noop_ctx();
        let c = completion(&ctx);
        assert!(c.complete_after(Ok(Bytes::new()), 1_000));
        // The testing ctx's timer fires immediately into the ready list.
        assert_eq!(ctx.ready_count(), 1);
    }

    #[test]
    fn io_error_display() {
        assert_eq!(IoError::NotFound.to_string(), "file not found");
        assert_eq!(IoError::Other("disk fire".into()).to_string(), "disk fire");
    }

    #[test]
    fn req_debug_shows_geometry() {
        struct Nop;
        impl AioFile for Nop {
            fn len(&self) -> u64 {
                0
            }
            fn submit_read(&self, _: u64, _: usize, _: AioCompletion) {}
            fn submit_write(&self, _: u64, _: Bytes, _: AioCompletion) {}
        }
        let r = AioReadReq {
            file: Arc::new(Nop),
            offset: 4096,
            len: 512,
        };
        let s = format!("{r:?}");
        assert!(s.contains("4096") && s.contains("512"));
    }
}
