//! The event-native service framework: a [`Service`] trait plus a generic
//! [`Server<S>`] that owns every piece of connection lifecycle the event
//! layer already knows how to express.
//!
//! The paper's central claim is that one set of application-level
//! concurrency primitives can express a whole network service — yet each
//! service used to hand-roll the same ~100 lines of plumbing: an accept
//! loop, a per-session wait, an idle-timeout/shutdown `choose`, and a
//! listener-closing supervisor thread. Concurrent ML's lesson (Reppy;
//! Chaudhuri) is that synchronization *protocols* — accept, serve, drain —
//! belong in first-class events owned by the framework, not in per-server
//! boilerplate. So:
//!
//! * the **acceptor** is one `choose` over
//!   [`Listener::accept_evt`] and the
//!   shutdown broadcast — no supervisor thread closes the listener; the
//!   losing branch simply is the shutdown;
//! * each **session** waits on
//!   [`session_input`] — one `choose` over
//!   socket readiness, the idle deadline and the same broadcast;
//! * the server tracks connection counts and exposes a **graceful drain**
//!   signal that fires once shutdown has been requested and the last
//!   session has ended.
//!
//! A service supplies only what is actually service-specific: per-session
//! state (typically a protocol parser), a chunk handler that parses /
//! executes / replies, and optional hooks for session-end bookkeeping and
//! exception recovery. Both bundled services (`eveth-kv`'s `KvServer`,
//! `eveth-http`'s `WebServer`) are thin [`Service`] implementations over
//! this module.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use bytes::Bytes;
//! use eveth_core::net::{send_all, Conn};
//! use eveth_core::service::{Server, ServerConfig, Service, Step};
//! use eveth_core::ThreadM;
//!
//! /// An echo service: per-session state is nothing, every chunk is sent
//! /// straight back.
//! struct Echo;
//!
//! impl Service for Echo {
//!     type Session = ();
//!     fn open(&self, _conn: &Arc<dyn Conn>) {}
//!     fn on_chunk(
//!         &self,
//!         conn: Arc<dyn Conn>,
//!         _session: (),
//!         chunk: Bytes,
//!     ) -> ThreadM<Step<()>> {
//!         send_all(&conn, chunk).map(|sent| match sent {
//!             Ok(()) => Step::Continue(()),
//!             Err(_) => Step::Close,
//!         })
//!     }
//! }
//! # let _ = |stack: Arc<dyn eveth_core::net::NetStack>| {
//! let server = Server::new(stack, Echo, ServerConfig { port: 7, ..Default::default() });
//! let run = server.run(); // spawn on a runtime
//! # let _ = run; };
//! ```

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use bytes::Bytes;

use crate::do_m;
use crate::event::{choose, sync, Signal};
use crate::exception::Exception;
use crate::net::{session_input, Conn, Listener, NetError, NetStack, SessionInput};
use crate::syscall::{sys_catch, sys_fork, sys_nbio, sys_throw};
use crate::thread::{loop_m, Loop, ThreadM};
use crate::time::Nanos;

/// What a [`Service::on_chunk`] handler decides about the session.
#[derive(Debug)]
pub enum Step<S> {
    /// Keep the session alive with this state for the next chunk.
    Continue(S),
    /// End the session; the server closes the connection.
    Close,
}

/// Why a session ended — handed to [`Service::on_end`] so services keep
/// their own counters without owning the loop.
#[derive(Debug)]
pub enum SessionEnd {
    /// The peer closed the stream (recv returned end-of-stream).
    PeerClosed,
    /// The transport failed mid-session.
    TransportError(NetError),
    /// The idle deadline won the session's `choose`.
    Idle,
    /// The server-wide shutdown broadcast won the session's `choose`.
    Shutdown,
    /// The service returned [`Step::Close`] (protocol quit, non-keep-alive
    /// response, protocol error already answered, …).
    ServiceClosed,
}

/// A network service, expressed as pure protocol logic over the framework's
/// lifecycle: the server owns listening, accepting, the per-session
/// readiness/idle/shutdown `choose`, connection tracking and draining; the
/// service owns parsing and replying.
pub trait Service: Send + Sync + 'static {
    /// Per-connection state, created by [`Service::open`] — typically an
    /// incremental protocol parser.
    type Session: Send + 'static;

    /// Called once per accepted connection; returns the fresh session
    /// state. A good place to bump service-level connection counters.
    fn open(&self, conn: &Arc<dyn Conn>) -> Self::Session;

    /// Handles one received chunk: parse, execute every complete request
    /// already buffered (pipelining), send replies, and decide whether the
    /// session continues. Runs as straight-line monadic code on the
    /// session's thread.
    fn on_chunk(
        &self,
        conn: Arc<dyn Conn>,
        session: Self::Session,
        chunk: Bytes,
    ) -> ThreadM<Step<Self::Session>>;

    /// Observation hook: the session ended for `end`. Non-monadic —
    /// bookkeeping only (the server already closes the connection where
    /// appropriate). The framework's own [`ServerStats`] is the
    /// authoritative lifecycle count; services use this hook to *mirror*
    /// events into their protocol-level statistics (e.g. a public
    /// `idle_reaped` counter kept for API compatibility) — both are driven
    /// from the same call site, so they cannot drift.
    fn on_end(&self, end: &SessionEnd) {
        let _ = end;
    }

    /// Recovery hook: the session thread threw. The default closes the
    /// connection; services may first attempt a protocol-level error
    /// reply (the web server sends a 500). The server counts the error
    /// either way.
    fn on_exception(&self, conn: Arc<dyn Conn>, error: &Exception) -> ThreadM<()> {
        let _ = error;
        conn.close()
    }
}

/// Lifecycle tunables of a [`Server`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listening port.
    pub port: u16,
    /// Socket receive granularity.
    pub recv_chunk: usize,
    /// Reap a connection that stays silent this long between chunks
    /// (virtual nanoseconds); `0` disables idle reaping. A `timeout_evt`
    /// branch of the per-session `choose` — no helper thread, no polling.
    pub idle_timeout: Nanos,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            port: 8080,
            recv_chunk: 16 * 1024,
            idle_timeout: 0,
        }
    }
}

/// Lifecycle counters every [`Server`] keeps, independent of the service's
/// own protocol statistics.
#[derive(Debug, Default)]
pub struct ServerStats {
    /// Connections accepted.
    pub accepted: AtomicU64,
    /// Sessions currently running.
    pub active: AtomicU64,
    /// Sessions reaped by the idle deadline.
    pub idle_reaped: AtomicU64,
    /// Sessions terminated by an exception.
    pub session_errors: AtomicU64,
}

/// The generic server: listening, accept fan-out, per-session waits,
/// connection tracking and graceful drain for any [`Service`].
pub struct Server<S: Service> {
    stack: Arc<dyn NetStack>,
    service: Arc<S>,
    cfg: ServerConfig,
    stats: Arc<ServerStats>,
    shutdown: Signal,
    drained: Signal,
    /// True once the acceptor has exited. Gates the drain barrier: while
    /// the acceptor runs, a connection may have been dequeued by
    /// `accept_evt` but not yet counted in `stats.active`, so `active ==
    /// 0` alone must not fire `drained`.
    acceptor_done: std::sync::atomic::AtomicBool,
}

impl<S: Service> Server<S> {
    /// Builds a server hosting `service` on a socket stack.
    pub fn new(stack: Arc<dyn NetStack>, service: S, cfg: ServerConfig) -> Arc<Self> {
        Arc::new(Server {
            stack,
            service: Arc::new(service),
            cfg,
            stats: Arc::new(ServerStats::default()),
            shutdown: Signal::new(),
            drained: Signal::new(),
            acceptor_done: std::sync::atomic::AtomicBool::new(false),
        })
    }

    /// The hosted service (for its protocol-level statistics and state).
    pub fn service(&self) -> &Arc<S> {
        &self.service
    }

    /// Lifecycle counters.
    pub fn stats(&self) -> &Arc<ServerStats> {
        &self.stats
    }

    /// The configuration this server was built with.
    pub fn config(&self) -> &ServerConfig {
        &self.cfg
    }

    /// Sessions currently running.
    pub fn active(&self) -> u64 {
        self.stats.active.load(Ordering::SeqCst)
    }

    /// Initiates graceful shutdown (callable from any context): the
    /// acceptor's `choose` sees the broadcast and closes the listener —
    /// there is no supervisor thread — and every session's `choose` sees
    /// the same broadcast on its next wait and closes its connection.
    /// [`Server::drained_signal`] fires once the last session ends.
    pub fn shutdown(&self) {
        self.shutdown.fire();
        // The acceptor may already be gone (listener failed or closed
        // externally): the barrier fires here rather than hanging every
        // drain waiter.
        self.maybe_drained();
    }

    /// The shutdown broadcast (for composing with other events).
    pub fn shutdown_signal(&self) -> &Signal {
        &self.shutdown
    }

    /// Fires once shutdown has been requested, the acceptor has exited
    /// *and* every session has ended — the graceful-drain barrier.
    /// `sync(drained_signal().wait_evt())` after [`Server::shutdown`] to
    /// wait for quiescence. The barrier assumes [`Server::run`] was
    /// spawned: on a server that never ran (or whose `listen` failed by
    /// exception) there is no acceptor to exit and the signal never
    /// fires.
    pub fn drained_signal(&self) -> &Signal {
        &self.drained
    }

    /// The main server thread: listen, then run the acceptor `choose`
    /// until shutdown or listener failure, forking one monadic thread per
    /// accepted connection.
    ///
    /// Runs until the listener closes; spawn it with `Runtime::spawn` /
    /// `SimRuntime::spawn`.
    pub fn run(self: &Arc<Self>) -> ThreadM<()> {
        let srv = Arc::clone(self);
        do_m! {
            let listener <- srv.stack.listen(srv.cfg.port);
            let listener = match listener {
                Ok(l) => l,
                Err(e) => {
                    // The server is dead on arrival: broadcast shutdown so
                    // anything tied to this server's lifecycle (service
                    // helper threads, drain waiters) is released rather
                    // than leaked, then surface the failure.
                    srv.shutdown.fire();
                    srv.acceptor_exited();
                    return sys_throw(Exception::with_payload("listen failed", e));
                }
            };
            accept_loop(srv, listener)
        }
    }

    /// One session finished: release its slot and re-check the drain
    /// barrier.
    fn session_ended(&self) {
        self.stats.active.fetch_sub(1, Ordering::SeqCst);
        self.maybe_drained();
    }

    /// The acceptor exited (shutdown branch won, or the listener failed):
    /// no further connection can be dequeued, so the drain barrier is
    /// armed.
    fn acceptor_exited(&self) {
        self.acceptor_done
            .store(true, std::sync::atomic::Ordering::SeqCst);
        self.maybe_drained();
    }

    /// Fires the drain barrier iff shutdown was requested, the acceptor
    /// can no longer introduce sessions, and none is running. Called from
    /// every transition that can complete the condition (shutdown
    /// request, acceptor exit, session end); `Signal::fire` is
    /// idempotent, so concurrent callers are harmless.
    fn maybe_drained(&self) {
        if self.shutdown.is_fired()
            && self.acceptor_done.load(std::sync::atomic::Ordering::SeqCst)
            && self.stats.active.load(Ordering::SeqCst) == 0
        {
            self.drained.fire();
        }
    }
}

impl<S: Service> fmt::Debug for Server<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Server(port={}, active={}, shutdown={})",
            self.cfg.port,
            self.active(),
            self.shutdown.is_fired()
        )
    }
}

/// What woke the acceptor's `choose`.
enum AcceptWake {
    Inbound(Result<Arc<dyn Conn>, NetError>),
    Shutdown,
}

/// The acceptor: one `choose` over the shutdown broadcast and the backlog
/// event. Branch order is policy — shutdown beats a pending accept, so
/// intake stops at the shutdown instant even under a sustained connect
/// stream (with accept polled first, a never-empty backlog would starve
/// the shutdown branch and the server would keep admitting sessions
/// forever). Connections still queued in the backlog are dropped by
/// `listener.shutdown()`, exactly as the old supervisor thread dropped
/// them.
fn accept_loop<S: Service>(srv: Arc<Server<S>>, listener: Arc<dyn Listener>) -> ThreadM<()> {
    loop_m((), move |()| {
        let srv = Arc::clone(&srv);
        let listener = Arc::clone(&listener);
        sync(choose(vec![
            srv.shutdown.wait_evt().wrap(|()| AcceptWake::Shutdown),
            listener.accept_evt().wrap(AcceptWake::Inbound),
        ]))
        .bind(move |wake| match wake {
            AcceptWake::Shutdown => {
                listener.shutdown();
                srv.acceptor_exited();
                ThreadM::pure(Loop::Break(()))
            }
            AcceptWake::Inbound(Err(_)) => {
                // Listener failed or was closed externally.
                srv.acceptor_exited();
                ThreadM::pure(Loop::Break(()))
            }
            AcceptWake::Inbound(Ok(conn)) => {
                srv.stats.accepted.fetch_add(1, Ordering::SeqCst);
                srv.stats.active.fetch_add(1, Ordering::SeqCst);
                let body = session(Arc::clone(&srv), Arc::clone(&conn));
                // An exception ends the session, never the server; the
                // service may answer with a protocol-level error first.
                let catcher = Arc::clone(&srv);
                let guarded = sys_catch(body, move |e| {
                    catcher.stats.session_errors.fetch_add(1, Ordering::SeqCst);
                    catcher.service.on_exception(conn, &e)
                });
                // The slot is released on every exit — including an
                // exception thrown by `on_exception` itself, which is
                // re-thrown afterwards so it still surfaces as an
                // uncaught-exception report rather than silently
                // vanishing (or leaking `active` and wedging the drain
                // barrier).
                let tracker = Arc::clone(&srv);
                let escape_tracker = Arc::clone(&srv);
                let tracked = sys_catch(
                    guarded.bind(move |_| sys_nbio(move || tracker.session_ended())),
                    move |e| {
                        escape_tracker.session_ended();
                        sys_throw(e)
                    },
                );
                sys_fork(tracked).map(|_| Loop::Continue(()))
            }
        })
    })
}

/// One session: wait on the composed input, hand data chunks to the
/// service, end on peer close / transport error / idle reap / shutdown /
/// service decision.
fn session<S: Service>(srv: Arc<Server<S>>, conn: Arc<dyn Conn>) -> ThreadM<()> {
    let state = srv.service.open(&conn);
    loop_m(state, move |state| {
        let srv = Arc::clone(&srv);
        let conn = Arc::clone(&conn);
        session_input(
            &conn,
            srv.cfg.recv_chunk,
            srv.cfg.idle_timeout,
            &srv.shutdown,
        )
        .bind(move |input| match input {
            SessionInput::Data(Ok(chunk)) if chunk.is_empty() => {
                srv.service.on_end(&SessionEnd::PeerClosed);
                conn.close().map(|_| Loop::Break(()))
            }
            SessionInput::Data(Ok(chunk)) => {
                let srv2 = Arc::clone(&srv);
                let conn2 = Arc::clone(&conn);
                srv.service
                    .on_chunk(Arc::clone(&conn), state, chunk)
                    .bind(move |step| match step {
                        Step::Continue(next) => ThreadM::pure(Loop::Continue(next)),
                        Step::Close => {
                            srv2.service.on_end(&SessionEnd::ServiceClosed);
                            conn2.close().map(|_| Loop::Break(()))
                        }
                    })
            }
            SessionInput::Data(Err(e)) => {
                srv.service.on_end(&SessionEnd::TransportError(e));
                ThreadM::pure(Loop::Break(()))
            }
            SessionInput::IdleTimeout => {
                // The stalled connection is reaped; live sessions are
                // untouched (each races its own deadline).
                srv.stats.idle_reaped.fetch_add(1, Ordering::SeqCst);
                srv.service.on_end(&SessionEnd::Idle);
                conn.close().map(|_| Loop::Break(()))
            }
            SessionInput::Shutdown => {
                srv.service.on_end(&SessionEnd::Shutdown);
                conn.close().map(|_| Loop::Break(()))
            }
        })
    })
}
