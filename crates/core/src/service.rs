//! The event-native service framework: a [`Service`] trait plus a generic
//! [`Server<S>`] that owns every piece of connection lifecycle the event
//! layer already knows how to express.
//!
//! The paper's central claim is that one set of application-level
//! concurrency primitives can express a whole network service — yet each
//! service used to hand-roll the same ~100 lines of plumbing: an accept
//! loop, a per-session wait, an idle-timeout/shutdown `choose`, and a
//! listener-closing supervisor thread. Concurrent ML's lesson (Reppy;
//! Chaudhuri) is that synchronization *protocols* — accept, serve, drain —
//! belong in first-class events owned by the framework, not in per-server
//! boilerplate. So:
//!
//! * the **acceptor** is one `choose` over
//!   [`Listener::accept_evt`] and the
//!   shutdown broadcast — no supervisor thread closes the listener; the
//!   losing branch simply is the shutdown;
//! * each **session** waits on its
//!   [`SessionIo`] input — one `choose` over
//!   socket readiness, the idle deadline and the same broadcast;
//! * the server tracks connection counts and exposes a **graceful drain**
//!   signal that fires once shutdown has been requested and the last
//!   session has ended.
//!
//! A service supplies only what is actually service-specific: per-session
//! state (typically a protocol parser), a chunk handler that parses /
//! executes / replies, and optional hooks for session-end bookkeeping and
//! exception recovery. Both bundled services (`eveth-kv`'s `KvServer`,
//! `eveth-http`'s `WebServer`) are thin [`Service`] implementations over
//! this module.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use bytes::Bytes;
//! use eveth_core::net::{send_all, Conn};
//! use eveth_core::service::{Server, ServerConfig, Service, Step};
//! use eveth_core::ThreadM;
//!
//! /// An echo service: per-session state is nothing, every chunk is sent
//! /// straight back.
//! struct Echo;
//!
//! impl Service for Echo {
//!     type Session = ();
//!     fn open(&self, _conn: &Arc<dyn Conn>) {}
//!     fn on_chunk(
//!         &self,
//!         conn: Arc<dyn Conn>,
//!         _session: (),
//!         chunk: Bytes,
//!     ) -> ThreadM<Step<()>> {
//!         send_all(&conn, chunk).map(|sent| match sent {
//!             Ok(()) => Step::Continue(()),
//!             Err(_) => Step::Close,
//!         })
//!     }
//! }
//! # let _ = |stack: Arc<dyn eveth_core::net::NetStack>| {
//! let server = Server::new(stack, Echo, ServerConfig { port: 7, ..Default::default() });
//! let run = server.run(); // spawn on a runtime
//! # let _ = run; };
//! ```

use std::fmt;
use std::sync::Arc;

use bytes::Bytes;
use parking_lot::Mutex;

use crate::do_m;
use crate::event::{choose, sync, Signal};
use crate::exception::Exception;
use crate::net::{Conn, Listener, NetError, NetStack, SessionInput, SessionIo};
use crate::syscall::{span, sys_catch, sys_fork, sys_nbio, sys_throw};
use crate::telemetry::metrics::{Counter, Gauge};
use crate::telemetry::Telemetry;
use crate::thread::{loop_m, Loop, ThreadM};
use crate::time::Nanos;

/// What a [`Service::on_chunk`] handler decides about the session.
#[derive(Debug)]
pub enum Step<S> {
    /// Keep the session alive with this state for the next chunk.
    Continue(S),
    /// End the session; the server closes the connection.
    Close,
}

/// Why a session ended — handed to [`Service::on_end`] so services keep
/// their own counters without owning the loop.
#[derive(Debug)]
pub enum SessionEnd {
    /// The peer closed the stream (recv returned end-of-stream).
    PeerClosed,
    /// The transport failed mid-session.
    TransportError(NetError),
    /// The idle deadline won the session's `choose`.
    Idle,
    /// The server-wide shutdown broadcast won the session's `choose`.
    Shutdown,
    /// The service returned [`Step::Close`] (protocol quit, non-keep-alive
    /// response, protocol error already answered, …).
    ServiceClosed,
}

/// A network service, expressed as pure protocol logic over the framework's
/// lifecycle: the server owns listening, accepting, the per-session
/// readiness/idle/shutdown `choose`, connection tracking and draining; the
/// service owns parsing and replying.
pub trait Service: Send + Sync + 'static {
    /// Per-connection state, created by [`Service::open`] — typically an
    /// incremental protocol parser.
    type Session: Send + 'static;

    /// Called once per accepted connection; returns the fresh session
    /// state. A good place to bump service-level connection counters.
    fn open(&self, conn: &Arc<dyn Conn>) -> Self::Session;

    /// Handles one received chunk: parse, execute every complete request
    /// already buffered (pipelining), send replies, and decide whether the
    /// session continues. Runs as straight-line monadic code on the
    /// session's thread.
    fn on_chunk(
        &self,
        conn: Arc<dyn Conn>,
        session: Self::Session,
        chunk: Bytes,
    ) -> ThreadM<Step<Self::Session>>;

    /// Observation hook: the session ended for `end`. Non-monadic —
    /// bookkeeping only (the server already closes the connection where
    /// appropriate). The framework's own [`ServerStats`] is the
    /// authoritative lifecycle count; services use this hook to *mirror*
    /// events into their protocol-level statistics (e.g. a public
    /// `idle_reaped` counter kept for API compatibility) — both are driven
    /// from the same call site, so they cannot drift.
    fn on_end(&self, end: &SessionEnd) {
        let _ = end;
    }

    /// Recovery hook: the session thread threw. The default closes the
    /// connection; services may first attempt a protocol-level error
    /// reply (the web server sends a 500). The server counts the error
    /// either way.
    fn on_exception(&self, conn: Arc<dyn Conn>, error: &Exception) -> ThreadM<()> {
        let _ = error;
        conn.close()
    }

    /// Wiring hook, called once from [`Server::new`]: hands the service
    /// the lifecycle pieces it may want to keep for its reply paths — the
    /// shutdown broadcast (so a bounded send can abandon a stalled peer on
    /// drain), the configuration (notably [`ServerConfig::send_timeout`])
    /// and the server's stats (notably [`ServerStats::send_timeouts`]).
    /// The default keeps nothing.
    fn attach_lifecycle(&self, shutdown: &Signal, cfg: &ServerConfig, stats: &Arc<ServerStats>) {
        let _ = (shutdown, cfg, stats);
    }
}

/// Lifecycle tunables of a [`Server`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listening port.
    pub port: u16,
    /// Socket receive granularity.
    pub recv_chunk: usize,
    /// Reap a connection that stays silent this long between chunks
    /// (virtual nanoseconds); `0` disables idle reaping. A `timeout_evt`
    /// branch of the per-session `choose` — no helper thread, no polling.
    pub idle_timeout: Nanos,
    /// Abandon a reply send that cannot complete within this long
    /// (virtual nanoseconds); `0` keeps plain unbounded sends. Services
    /// honour it through [`send_all_within`](crate::net::send_all_within)
    /// on their reply paths and count occurrences in
    /// [`ServerStats::send_timeouts`].
    pub send_timeout: Nanos,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            port: 8080,
            recv_chunk: 16 * 1024,
            idle_timeout: 0,
            send_timeout: 0,
        }
    }
}

/// Lifecycle counters every [`Server`] keeps, independent of the service's
/// own protocol statistics.
///
/// The handles are [`telemetry`](crate::telemetry) metrics, so
/// [`Server::attach_telemetry`] can register the *same* cells into a
/// [`Registry`](crate::telemetry::metrics::Registry) — the `/metrics`
/// exposition and these fields cannot drift.
#[derive(Debug, Default)]
pub struct ServerStats {
    /// Connections accepted.
    pub accepted: Counter,
    /// Sessions currently running.
    pub active: Gauge,
    /// Sessions reaped by the idle deadline.
    pub idle_reaped: Counter,
    /// Sessions terminated by an exception.
    pub session_errors: Counter,
    /// Reply sends abandoned by [`ServerConfig::send_timeout`].
    pub send_timeouts: Counter,
    /// Total nanoseconds session threads spent parked on I/O, rolled up
    /// from span wait attribution at session exit. Stays `0` until
    /// [`Server::attach_telemetry`] — the per-span data comes from the
    /// runtime's park/wake hooks.
    pub session_io_wait_ns: Counter,
    /// Total nanoseconds session threads spent parked on locks, rolled up
    /// like [`ServerStats::session_io_wait_ns`].
    pub session_lock_wait_ns: Counter,
}

/// The generic server: listening, accept fan-out, per-session waits,
/// connection tracking and graceful drain for any [`Service`].
pub struct Server<S: Service> {
    stack: Arc<dyn NetStack>,
    service: Arc<S>,
    cfg: ServerConfig,
    stats: Arc<ServerStats>,
    shutdown: Signal,
    drained: Signal,
    /// True once the acceptor has exited. Gates the drain barrier: while
    /// the acceptor runs, a connection may have been dequeued by
    /// `accept_evt` but not yet counted in `stats.active`, so `active ==
    /// 0` alone must not fire `drained`.
    acceptor_done: std::sync::atomic::AtomicBool,
    /// Attached telemetry hub plus the span label sessions are annotated
    /// with; `None` until [`Server::attach_telemetry`].
    telemetry: Mutex<Option<(Arc<Telemetry>, Arc<str>)>>,
    /// Serializes drain-barrier checks. The lifecycle counters are plain
    /// Relaxed metrics cells; every transition updates *then* takes this
    /// lock to re-check, so the last transition's checker observes all
    /// earlier updates through the lock's ordering.
    drain_check: Mutex<()>,
}

impl<S: Service> Server<S> {
    /// Builds a server hosting `service` on a socket stack.
    pub fn new(stack: Arc<dyn NetStack>, service: S, cfg: ServerConfig) -> Arc<Self> {
        let srv = Arc::new(Server {
            stack,
            service: Arc::new(service),
            cfg,
            stats: Arc::new(ServerStats::default()),
            shutdown: Signal::new(),
            drained: Signal::new(),
            acceptor_done: std::sync::atomic::AtomicBool::new(false),
            telemetry: Mutex::new(None),
            drain_check: Mutex::new(()),
        });
        srv.service
            .attach_lifecycle(&srv.shutdown, &srv.cfg, &srv.stats);
        srv
    }

    /// Attaches a telemetry hub: the server's lifecycle counters are
    /// registered into the hub's [`Registry`](crate::telemetry::metrics::Registry)
    /// as `eveth_server_*{service="<label>"}`, every subsequent session
    /// thread is annotated with the span name `label`, and session span
    /// waits are rolled up into [`ServerStats::session_io_wait_ns`] /
    /// [`ServerStats::session_lock_wait_ns`] at session exit.
    ///
    /// Attach *before* spawning [`Server::run`] so no session escapes the
    /// annotation. Idempotent-ish: a second call re-registers under the
    /// new label; sessions use the latest label.
    pub fn attach_telemetry(&self, telemetry: &Arc<Telemetry>, service_label: &str) {
        let reg = telemetry.registry();
        let labels: &[(&str, &str)] = &[("service", service_label)];
        reg.register_counter("eveth_server_accepted_total", labels, &self.stats.accepted);
        reg.register_gauge("eveth_server_active_sessions", labels, &self.stats.active);
        reg.register_counter(
            "eveth_server_idle_reaped_total",
            labels,
            &self.stats.idle_reaped,
        );
        reg.register_counter(
            "eveth_server_session_errors_total",
            labels,
            &self.stats.session_errors,
        );
        reg.register_counter(
            "eveth_server_send_timeouts_total",
            labels,
            &self.stats.send_timeouts,
        );
        reg.register_counter(
            "eveth_server_session_io_wait_ns_total",
            labels,
            &self.stats.session_io_wait_ns,
        );
        reg.register_counter(
            "eveth_server_session_lock_wait_ns_total",
            labels,
            &self.stats.session_lock_wait_ns,
        );
        let io_roll = self.stats.session_io_wait_ns.clone();
        let lock_roll = self.stats.session_lock_wait_ns.clone();
        telemetry.on_span_exit(service_label, move |span| {
            io_roll.add(span.io_wait_ns);
            lock_roll.add(span.lock_wait_ns);
        });
        *self.telemetry.lock() = Some((Arc::clone(telemetry), Arc::from(service_label)));
    }

    /// The telemetry hub attached via [`Server::attach_telemetry`], if
    /// any.
    pub fn telemetry(&self) -> Option<Arc<Telemetry>> {
        self.telemetry.lock().as_ref().map(|(t, _)| Arc::clone(t))
    }

    /// The hosted service (for its protocol-level statistics and state).
    pub fn service(&self) -> &Arc<S> {
        &self.service
    }

    /// Lifecycle counters.
    pub fn stats(&self) -> &Arc<ServerStats> {
        &self.stats
    }

    /// The configuration this server was built with.
    pub fn config(&self) -> &ServerConfig {
        &self.cfg
    }

    /// Sessions currently running.
    pub fn active(&self) -> u64 {
        self.stats.active.get().max(0) as u64
    }

    /// Initiates graceful shutdown (callable from any context): the
    /// acceptor's `choose` sees the broadcast and closes the listener —
    /// there is no supervisor thread — and every session's `choose` sees
    /// the same broadcast on its next wait and closes its connection.
    /// [`Server::drained_signal`] fires once the last session ends.
    pub fn shutdown(&self) {
        self.shutdown.fire();
        // The acceptor may already be gone (listener failed or closed
        // externally): the barrier fires here rather than hanging every
        // drain waiter.
        self.maybe_drained();
    }

    /// The shutdown broadcast (for composing with other events).
    pub fn shutdown_signal(&self) -> &Signal {
        &self.shutdown
    }

    /// Fires once shutdown has been requested, the acceptor has exited
    /// *and* every session has ended — the graceful-drain barrier.
    /// `sync(drained_signal().wait_evt())` after [`Server::shutdown`] to
    /// wait for quiescence. The barrier assumes [`Server::run`] was
    /// spawned: on a server that never ran (or whose `listen` failed by
    /// exception) there is no acceptor to exit and the signal never
    /// fires.
    pub fn drained_signal(&self) -> &Signal {
        &self.drained
    }

    /// The main server thread: listen, then run the acceptor `choose`
    /// until shutdown or listener failure, forking one monadic thread per
    /// accepted connection.
    ///
    /// Runs until the listener closes; spawn it with `Runtime::spawn` /
    /// `SimRuntime::spawn`.
    pub fn run(self: &Arc<Self>) -> ThreadM<()> {
        let srv = Arc::clone(self);
        do_m! {
            let listener <- srv.stack.listen(srv.cfg.port);
            let listener = match listener {
                Ok(l) => l,
                Err(e) => {
                    // The server is dead on arrival: broadcast shutdown so
                    // anything tied to this server's lifecycle (service
                    // helper threads, drain waiters) is released rather
                    // than leaked, then surface the failure.
                    srv.shutdown.fire();
                    srv.acceptor_exited();
                    return sys_throw(Exception::with_payload("listen failed", e));
                }
            };
            accept_loop(srv, listener)
        }
    }

    /// One session finished: release its slot and re-check the drain
    /// barrier.
    fn session_ended(&self) {
        self.stats.active.decr();
        self.maybe_drained();
    }

    /// The acceptor exited (shutdown branch won, or the listener failed):
    /// no further connection can be dequeued, so the drain barrier is
    /// armed.
    fn acceptor_exited(&self) {
        self.acceptor_done
            .store(true, std::sync::atomic::Ordering::SeqCst);
        self.maybe_drained();
    }

    /// Fires the drain barrier iff shutdown was requested, the acceptor
    /// can no longer introduce sessions, and none is running. Called from
    /// every transition that can complete the condition (shutdown
    /// request, acceptor exit, session end); `Signal::fire` is
    /// idempotent, so concurrent callers are harmless. The `drain_check`
    /// lock orders each update (sequenced before its own check) with the
    /// other transitions' checks — without it, Relaxed counter cells would
    /// permit both of two racing finishers to read the other's stale
    /// state and neither to fire.
    fn maybe_drained(&self) {
        let _serialize = self.drain_check.lock();
        if self.shutdown.is_fired()
            && self.acceptor_done.load(std::sync::atomic::Ordering::SeqCst)
            && self.stats.active.get() == 0
        {
            self.drained.fire();
        }
    }
}

impl<S: Service> fmt::Debug for Server<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Server(port={}, active={}, shutdown={})",
            self.cfg.port,
            self.active(),
            self.shutdown.is_fired()
        )
    }
}

/// What woke the acceptor's `choose`.
enum AcceptWake {
    Inbound(Result<Arc<dyn Conn>, NetError>),
    Shutdown,
}

/// The acceptor: one `choose` over the shutdown broadcast and the backlog
/// event. Branch order is policy — shutdown beats a pending accept, so
/// intake stops at the shutdown instant even under a sustained connect
/// stream (with accept polled first, a never-empty backlog would starve
/// the shutdown branch and the server would keep admitting sessions
/// forever). Connections still queued in the backlog are dropped by
/// `listener.shutdown()`, exactly as the old supervisor thread dropped
/// them.
fn accept_loop<S: Service>(srv: Arc<Server<S>>, listener: Arc<dyn Listener>) -> ThreadM<()> {
    loop_m((), move |()| {
        let srv = Arc::clone(&srv);
        let listener = Arc::clone(&listener);
        sync(choose(vec![
            srv.shutdown.wait_evt().wrap(|()| AcceptWake::Shutdown),
            listener.accept_evt().wrap(AcceptWake::Inbound),
        ]))
        .bind(move |wake| match wake {
            AcceptWake::Shutdown => {
                listener.shutdown();
                srv.acceptor_exited();
                ThreadM::pure(Loop::Break(()))
            }
            AcceptWake::Inbound(Err(_)) => {
                // Listener failed or was closed externally.
                srv.acceptor_exited();
                ThreadM::pure(Loop::Break(()))
            }
            AcceptWake::Inbound(Ok(conn)) => {
                srv.stats.accepted.incr();
                srv.stats.active.incr();
                let body = session(Arc::clone(&srv), Arc::clone(&conn));
                // Name the session's span after the service so telemetry
                // can attribute its waits (and roll them up at exit).
                let body = match srv.telemetry.lock().as_ref() {
                    Some((_, label)) => span(Arc::clone(label), body),
                    None => body,
                };
                // An exception ends the session, never the server; the
                // service may answer with a protocol-level error first.
                let catcher = Arc::clone(&srv);
                let guarded = sys_catch(body, move |e| {
                    catcher.stats.session_errors.incr();
                    catcher.service.on_exception(conn, &e)
                });
                // The slot is released on every exit — including an
                // exception thrown by `on_exception` itself, which is
                // re-thrown afterwards so it still surfaces as an
                // uncaught-exception report rather than silently
                // vanishing (or leaking `active` and wedging the drain
                // barrier).
                let tracker = Arc::clone(&srv);
                let escape_tracker = Arc::clone(&srv);
                let tracked = sys_catch(
                    guarded.bind(move |_| sys_nbio(move || tracker.session_ended())),
                    move |e| {
                        escape_tracker.session_ended();
                        sys_throw(e)
                    },
                );
                sys_fork(tracked).map(|_| Loop::Continue(()))
            }
        })
    })
}

/// One session: wait on the composed input, hand data chunks to the
/// service, end on peer close / transport error / idle reap / shutdown /
/// service decision.
fn session<S: Service>(srv: Arc<Server<S>>, conn: Arc<dyn Conn>) -> ThreadM<()> {
    let state = srv.service.open(&conn);
    // One input endpoint for the whole session: on fd-less transports the
    // receive pump is forked once and told to stop on every end path (and
    // on drop), instead of a fresh helper per wait that outlives a reaped
    // session — see `SessionIo`.
    let io = SessionIo::new(
        Arc::clone(&conn),
        srv.cfg.recv_chunk,
        srv.cfg.idle_timeout,
        srv.shutdown.clone(),
    );
    loop_m(state, move |state| {
        let srv = Arc::clone(&srv);
        let conn = Arc::clone(&conn);
        let io = Arc::clone(&io);
        io.input().bind(move |input| match input {
            SessionInput::Data(Ok(chunk)) if chunk.is_empty() => {
                srv.service.on_end(&SessionEnd::PeerClosed);
                io.finish();
                conn.close().map(|_| Loop::Break(()))
            }
            SessionInput::Data(Ok(chunk)) => {
                let srv2 = Arc::clone(&srv);
                let conn2 = Arc::clone(&conn);
                let io2 = Arc::clone(&io);
                srv.service
                    .on_chunk(Arc::clone(&conn), state, chunk)
                    .bind(move |step| match step {
                        Step::Continue(next) => ThreadM::pure(Loop::Continue(next)),
                        Step::Close => {
                            srv2.service.on_end(&SessionEnd::ServiceClosed);
                            io2.finish();
                            conn2.close().map(|_| Loop::Break(()))
                        }
                    })
            }
            SessionInput::Data(Err(e)) => {
                srv.service.on_end(&SessionEnd::TransportError(e));
                io.finish();
                ThreadM::pure(Loop::Break(()))
            }
            SessionInput::IdleTimeout => {
                // The stalled connection is reaped; live sessions are
                // untouched (each races its own deadline).
                srv.stats.idle_reaped.incr();
                srv.service.on_end(&SessionEnd::Idle);
                io.finish();
                conn.close().map(|_| Loop::Break(()))
            }
            SessionInput::Shutdown => {
                srv.service.on_end(&SessionEnd::Shutdown);
                io.finish();
                conn.close().map(|_| Loop::Break(()))
            }
        })
    })
}
