//! Event abstractions: readiness interests, pollable devices, event ports
//! and one-shot unparkers.
//!
//! This module is the boundary between the thread world and the event world
//! (the centre box of the paper's Figure 2). Devices expose *readiness*
//! through [`Pollable::register`]; the scheduler parks a thread by storing a
//! one-shot [`Unparker`] with the device; when the device becomes ready it
//! routes the unparker through an [`EventPort`] — the paper's `worker_epoll`
//! event loop (Figure 16) is one such port.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::engine::{RuntimeCtx, WaitKind};
use crate::task::Task;

/// The readiness condition a thread waits for — the paper's `EPOLL_READ` /
/// `EPOLL_WRITE` events.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Interest {
    /// Ready to read without blocking (or end-of-stream reached).
    Read,
    /// Ready to write without blocking (or peer closed).
    Write,
}

static NEXT_FD: AtomicU64 = AtomicU64::new(1);

/// A handle naming a registered pollable device, as passed to
/// [`sys_epoll_wait`](crate::syscall::sys_epoll_wait).
///
/// Unlike a Unix fd this handle carries its device, so no global descriptor
/// table is needed; the numeric id exists for logging and ordering.
#[derive(Clone)]
pub struct Fd {
    id: u64,
    dev: Arc<dyn Pollable>,
}

impl Fd {
    /// Wraps a device in a fresh descriptor.
    pub fn new(dev: Arc<dyn Pollable>) -> Self {
        Fd {
            id: NEXT_FD.fetch_add(1, Ordering::Relaxed),
            dev,
        }
    }

    /// The numeric identifier (unique per process).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The underlying device.
    pub fn device(&self) -> &Arc<dyn Pollable> {
        &self.dev
    }
}

impl fmt::Debug for Fd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Fd({})", self.id)
    }
}

/// A device whose readiness can be waited on, in the manner of an fd
/// registered with epoll.
pub trait Pollable: Send + Sync {
    /// Registers `waiter` to be woken when `interest` becomes ready.
    ///
    /// Implementations must check the condition and store the waiter under
    /// the same lock, and must wake the waiter immediately if the condition
    /// already holds — otherwise wakeups may be lost.
    fn register(&self, interest: Interest, waiter: Waiter);
}

/// Delivery route for readiness events: devices hand ready unparkers to a
/// port, which forwards them to the scheduler. The real runtime's port is a
/// queue drained by a dedicated `worker_epoll` thread (paper Figure 16); the
/// simulator's port delivers inline at the current virtual time.
pub trait EventPort: Send + Sync {
    /// Forwards a woken thread towards the ready queue.
    fn notify(&self, unparker: Unparker);
}

/// An [`EventPort`] that unparks inline, bypassing any event-loop queue.
/// Used by the local executor, by tests, and as an ablation of the paper's
/// queued architecture.
#[derive(Debug, Default, Clone, Copy)]
pub struct DirectPort;

impl EventPort for DirectPort {
    fn notify(&self, unparker: Unparker) {
        unparker.unpark();
    }
}

/// A parked thread registered with a device, plus the port that readiness
/// events for it must travel through.
pub struct Waiter {
    unparker: Unparker,
    port: Arc<dyn EventPort>,
}

impl Waiter {
    /// Pairs a parked thread with its event delivery route.
    pub fn new(unparker: Unparker, port: Arc<dyn EventPort>) -> Self {
        Waiter { unparker, port }
    }

    /// Wakes the thread by routing it through the event port.
    pub fn wake(self) {
        self.port.notify(self.unparker);
    }

    /// True if the thread was already woken through another route.
    pub fn is_spent(&self) -> bool {
        self.unparker.is_spent()
    }
}

impl fmt::Debug for Waiter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Waiter")
            .field("spent", &self.is_spent())
            .finish()
    }
}

/// A one-shot handle that resumes a parked monadic thread.
///
/// Cloning is cheap; however many clones exist, the thread is resumed at
/// most once (later `unpark` calls return `false`). This is the primitive
/// from which every blocking abstraction in the system is built — see
/// [`sys_park`](crate::syscall::sys_park).
#[derive(Clone)]
pub struct Unparker {
    inner: Arc<UnparkerInner>,
}

struct UnparkerInner {
    task: Mutex<Option<Task>>,
    ctx: Arc<dyn RuntimeCtx>,
}

impl Unparker {
    /// Wraps a parked task. The scheduler constructs these; device code only
    /// consumes them.
    pub fn new(task: Task, ctx: Arc<dyn RuntimeCtx>) -> Self {
        Unparker {
            inner: Arc::new(UnparkerInner {
                task: Mutex::new(Some(task)),
                ctx,
            }),
        }
    }

    /// Resumes the parked thread by pushing it onto the scheduler's ready
    /// queue. Returns `false` if the thread was already resumed.
    pub fn unpark(&self) -> bool {
        let task = self.inner.task.lock().take();
        match task {
            Some(t) => {
                self.inner.ctx.charge(crate::engine::CostKind::Wake);
                self.inner.ctx.push_ready(t);
                true
            }
            None => false,
        }
    }

    /// True if the thread has already been resumed.
    pub fn is_spent(&self) -> bool {
        self.inner.task.lock().is_none()
    }

    /// The runtime context the parked thread belongs to. The event layer
    /// uses this to reach runtime services (timers, event ports, the
    /// clock) from inside a `sys_park` registration closure, which
    /// otherwise only sees the unparker.
    pub fn runtime_ctx(&self) -> Arc<dyn RuntimeCtx> {
        Arc::clone(&self.inner.ctx)
    }

    /// Reclassifies the in-flight wait episode of the still-parked thread
    /// (see [`RuntimeCtx::task_wait_reclass`]). A `choose` park is charged
    /// as [`WaitKind::Lock`] when it blocks; the branch that ends up waking
    /// the thread calls this so the episode is attributed to the *winning*
    /// wait source (I/O readiness, lock, or timer). Returns `false` — and
    /// does nothing — if the thread was already resumed.
    pub fn reclassify(&self, kind: WaitKind) -> bool {
        let guard = self.inner.task.lock();
        match guard.as_ref() {
            Some(task) => {
                self.inner.ctx.task_wait_reclass(task.tid(), kind);
                true
            }
            None => false,
        }
    }
}

impl fmt::Debug for Unparker {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Unparker")
            .field("spent", &self.is_spent())
            .finish()
    }
}

/// Physical size below which [`WaitList`] and [`WaitQ`] never bother
/// compacting — pruning a handful of entries buys nothing.
const PRUNE_FLOOR: usize = 16;

/// A list of parked waiters maintained by a device, with helpers for the
/// wake-one / wake-all patterns used by pipes, sockets and sync primitives.
#[derive(Debug)]
pub struct WaitList {
    waiters: std::collections::VecDeque<Waiter>,
    /// Physical size at which the next `push` compacts. Doubling it after
    /// each sweep makes pruning amortized O(1) per push while bounding the
    /// physical list at ~2× the live count — the old prune-on-every-push
    /// was O(n) per registration, which a connect/disconnect storm turned
    /// into quadratic work on hot devices.
    prune_at: usize,
}

impl WaitList {
    /// Creates an empty list.
    pub fn new() -> Self {
        WaitList {
            waiters: std::collections::VecDeque::new(),
            prune_at: PRUNE_FLOOR,
        }
    }

    /// Adds a waiter. Entries whose threads were already woken through
    /// another route (e.g. the losing branches of a `choose`) are swept
    /// out whenever the list reaches its high-water mark, so abandoned
    /// registrations cannot accumulate in a device that keeps receiving
    /// traffic, and steady-state churn stays O(1) per push.
    pub fn push(&mut self, w: Waiter) {
        if self.waiters.len() >= self.prune_at {
            self.waiters.retain(|w| !w.is_spent());
            self.prune_at = (self.waiters.len() * 2 + 2).max(PRUNE_FLOOR);
        }
        self.waiters.push_back(w);
    }

    /// Wakes every waiter and clears the list.
    pub fn wake_all(&mut self) {
        for w in self.waiters.drain(..) {
            w.wake();
        }
        self.prune_at = PRUNE_FLOOR;
    }

    /// Wakes one waiter (skipping any already-spent entries). Returns `true`
    /// if a live waiter was woken.
    pub fn wake_one(&mut self) -> bool {
        while let Some(w) = self.waiters.pop_front() {
            if !w.is_spent() {
                w.wake();
                return true;
            }
        }
        false
    }

    /// Number of *live* queued waiters (spent entries not yet swept are
    /// not counted — they will never be woken).
    pub fn len(&self) -> usize {
        self.waiters.iter().filter(|w| !w.is_spent()).count()
    }

    /// Entries physically held, live or spent — bounded at ~2× the live
    /// count plus a small floor. For tests asserting churn leaves no
    /// residue.
    pub fn physical_len(&self) -> usize {
        self.waiters.len()
    }

    /// True if no live waiter is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Default for WaitList {
    fn default() -> Self {
        Self::new()
    }
}

/// A single cancellable registration in a [`WaitQ`].
///
/// The slot is shared between the queue (which consumes the waiter to wake
/// it) and the registering side (which may [`take`](WaitSlot::take) it back
/// when a `choose` commits a different branch). Whichever side gets there
/// first wins; the other observes an empty slot.
pub struct WaitSlot {
    inner: Arc<Mutex<WaitQInner>>,
    key: crate::slab::SlabKey,
}

impl WaitSlot {
    /// Removes the registration if it is still queued, returning the
    /// waiter. `None` means the queue already consumed it — the caller's
    /// wakeup was (or is being) delivered, and a `choose` loser must pass
    /// that wakeup on to the device's next waiter.
    ///
    /// Cancellation is *physical*: the arena slot is freed immediately,
    /// so a storm of registered-then-withdrawn waiters (every losing
    /// `choose` branch in a connect/disconnect churn) leaves nothing
    /// behind for a later wake path to skip over.
    pub fn take(&self) -> Option<Waiter> {
        self.inner.lock().slab.remove(self.key)
    }
}

impl fmt::Debug for WaitSlot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WaitSlot")
            .field("queued", &self.inner.lock().slab.contains(self.key))
            .finish()
    }
}

struct WaitQInner {
    /// The waiters themselves, arena-allocated so registration churn
    /// recycles slots instead of allocating one heap cell per park.
    slab: crate::slab::Slab<Waiter>,
    /// FIFO of keys; a key whose entry was cancelled is a tombstone the
    /// wake paths skip (and amortized sweeps drop).
    order: std::collections::VecDeque<crate::slab::SlabKey>,
}

impl WaitQInner {
    /// Drops order-queue tombstones once they outnumber live entries —
    /// amortized O(1) per operation, physical order length ≤ ~2× live.
    fn maybe_sweep(&mut self) {
        if self.order.len() > (self.slab.len() * 2).max(PRUNE_FLOOR) {
            let WaitQInner { slab, order } = self;
            order.retain(|k| slab.contains(*k));
        }
    }
}

/// A FIFO of parked waiters with *cancellable* entries — the wait queue
/// behind the event-native synchronization primitives (`Chan`, `SyncChan`,
/// `MVar`) and the [`Signal`](crate::event::Signal) broadcast.
///
/// Unlike [`WaitList`], every `push` hands back a [`WaitSlot`] through
/// which the registration can be withdrawn, which is what lets a losing
/// `choose` branch deregister instead of leaving a dead entry behind.
/// Entries live in a [`Slab`](crate::slab::Slab): cancellation removes
/// them physically and the slot is recycled by the next registration, so
/// steady-state churn neither allocates nor accumulates residue;
/// [`WaitQ::len`] counts only live registrations.
pub struct WaitQ {
    inner: Arc<Mutex<WaitQInner>>,
}

impl WaitQ {
    /// An empty queue.
    pub fn new() -> Self {
        WaitQ {
            inner: Arc::new(Mutex::new(WaitQInner {
                slab: crate::slab::Slab::new(),
                order: std::collections::VecDeque::new(),
            })),
        }
    }

    /// Appends a waiter; the returned slot cancels the registration.
    pub fn push(&mut self, w: Waiter) -> WaitSlot {
        let mut q = self.inner.lock();
        let key = q.slab.insert(w);
        q.order.push_back(key);
        q.maybe_sweep();
        WaitSlot {
            inner: Arc::clone(&self.inner),
            key,
        }
    }

    /// Wakes the oldest live waiter; tombstones and spent entries are
    /// dropped along the way. Returns `true` if a live waiter was woken.
    pub fn wake_one(&mut self) -> bool {
        let mut q = self.inner.lock();
        while let Some(key) = q.order.pop_front() {
            match q.slab.remove(key) {
                Some(w) if !w.is_spent() => {
                    drop(q);
                    w.wake();
                    return true;
                }
                _ => {} // cancelled or already woken elsewhere: skip
            }
        }
        false
    }

    /// Wakes every queued waiter and clears the queue.
    pub fn wake_all(&mut self) {
        let mut q = self.inner.lock();
        let mut woken = Vec::new();
        while let Some(key) = q.order.pop_front() {
            if let Some(w) = q.slab.remove(key) {
                woken.push(w);
            }
        }
        drop(q);
        for w in woken {
            w.wake();
        }
    }

    /// Number of live (neither cancelled nor spent) registrations.
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .slab
            .iter()
            .filter(|w| !w.is_spent())
            .count()
    }

    /// Entries physically held in the arena, live or spent. Cancelled
    /// registrations are gone from here the moment [`WaitSlot::take`]
    /// runs — the residue metric for churn tests.
    pub fn physical_len(&self) -> usize {
        self.inner.lock().slab.len()
    }

    /// True when no live registration is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Default for WaitQ {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for WaitQ {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "WaitQ(live={})", self.len())
    }
}

/// Readiness wait lists keyed by [`Interest`] — the per-device half of an
/// epoll registration table.
///
/// A pollable device embeds one of these next to its state (under the same
/// lock, so the check-then-park of [`Pollable::register`] is race-free),
/// parks waiters per interest, and wakes exactly the interest class a
/// state change affects: new bytes wake `Read` waiters, freed buffer space
/// wakes `Write` waiters, fatal events wake both.
#[derive(Debug, Default)]
pub struct InterestWaiters {
    read: WaitList,
    write: WaitList,
}

impl InterestWaiters {
    /// Creates an empty registration table.
    pub fn new() -> Self {
        InterestWaiters::default()
    }

    /// Parks `waiter` until `interest` is next signalled ready.
    pub fn push(&mut self, interest: Interest, waiter: Waiter) {
        self.list_mut(interest).push(waiter);
    }

    /// Wakes every waiter registered for `interest`.
    pub fn wake(&mut self, interest: Interest) {
        self.list_mut(interest).wake_all();
    }

    /// Wakes every waiter of both interests (close, reset, error).
    pub fn wake_all(&mut self) {
        self.read.wake_all();
        self.write.wake_all();
    }

    /// Number of waiters currently registered for `interest`.
    pub fn len(&self, interest: Interest) -> usize {
        match interest {
            Interest::Read => self.read.len(),
            Interest::Write => self.write.len(),
        }
    }

    /// Entries physically held across both interests, spent or live.
    pub fn physical_len(&self) -> usize {
        self.read.physical_len() + self.write.physical_len()
    }

    /// True when no waiter is registered for either interest.
    pub fn is_empty(&self) -> bool {
        self.read.is_empty() && self.write.is_empty()
    }

    fn list_mut(&mut self, interest: Interest) -> &mut WaitList {
        match interest {
            Interest::Read => &mut self.read,
            Interest::Write => &mut self.write,
        }
    }
}

/// A listener backlog with accept-readiness — the device behind both
/// socket stacks' listening sockets.
///
/// The stack's demux path [`push`es](AcceptQueue::push) established
/// connections, `accept` [`pop`s](AcceptQueue::pop) them, and blocked
/// acceptors register epoll-style waiters. Every transition — push,
/// close, register — happens under the one internal lock, so a
/// registration can lose its wakeup neither to a concurrent push nor to
/// a concurrent shutdown.
pub struct AcceptQueue<T> {
    st: Mutex<AcceptState<T>>,
}

struct AcceptState<T> {
    backlog: std::collections::VecDeque<T>,
    waiters: WaitList,
    closed: bool,
}

impl<T> AcceptQueue<T> {
    /// An empty, open backlog.
    pub fn new() -> Self {
        AcceptQueue {
            st: Mutex::new(AcceptState {
                backlog: std::collections::VecDeque::new(),
                waiters: WaitList::new(),
                closed: false,
            }),
        }
    }

    /// Enqueues a connection and wakes every accept waiter. Returns the
    /// connection back if the queue was already shut down — the caller
    /// decides whether to abort it or refuse the peer.
    pub fn push(&self, item: T) -> Result<(), T> {
        let mut st = self.st.lock();
        if st.closed {
            return Err(item);
        }
        st.backlog.push_back(item);
        st.waiters.wake_all();
        Ok(())
    }

    /// Dequeues the oldest pending connection, if any.
    pub fn pop(&self) -> Option<T> {
        self.st.lock().backlog.pop_front()
    }

    /// True once [`AcceptQueue::close`] has run.
    pub fn is_closed(&self) -> bool {
        self.st.lock().closed
    }

    /// Shuts the backlog down and wakes every waiter (they will observe
    /// `is_closed` and fail their accept). Still-queued connections stay
    /// poppable.
    pub fn close(&self) {
        let mut st = self.st.lock();
        st.closed = true;
        st.waiters.wake_all();
    }

    /// Registers an accept waiter, waking it immediately if a connection
    /// is already queued or the backlog is shut down.
    pub fn register(&self, waiter: Waiter) {
        let mut st = self.st.lock();
        if !st.backlog.is_empty() || st.closed {
            drop(st);
            waiter.wake();
        } else {
            st.waiters.push(waiter);
        }
    }

    /// Number of queued, unaccepted connections.
    pub fn len(&self) -> usize {
        self.st.lock().backlog.len()
    }

    /// Live accept waiters currently registered (for tests asserting that
    /// losing `choose` branches leave no residue behind — entries whose
    /// threads committed elsewhere are spent and not counted).
    pub fn waiter_count(&self) -> usize {
        self.st.lock().waiters.len()
    }

    /// Accept-waiter entries physically held, spent or live — the residue
    /// metric a connect/disconnect storm must leave bounded.
    pub fn physical_waiters(&self) -> usize {
        self.st.lock().waiters.physical_len()
    }

    /// True when no connection is queued.
    pub fn is_empty(&self) -> bool {
        self.st.lock().backlog.is_empty()
    }
}

impl<T> Default for AcceptQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> fmt::Debug for AcceptQueue<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let st = self.st.lock();
        f.debug_struct("AcceptQueue")
            .field("backlog", &st.backlog.len())
            .field("waiters", &st.waiters.len())
            .field("closed", &st.closed)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::testing::noop_ctx;
    use crate::task::{Task, TaskId};
    use crate::trace::Trace;

    fn dummy_task() -> Task {
        Task::from_thunk(TaskId(1), Box::new(|| Trace::Ret))
    }

    #[test]
    fn unparker_is_one_shot() {
        let ctx = noop_ctx();
        let u = Unparker::new(dummy_task(), ctx.clone());
        assert!(!u.is_spent());
        assert!(u.unpark());
        assert!(u.is_spent());
        assert!(!u.unpark());
        assert_eq!(ctx.ready_count(), 1);
    }

    #[test]
    fn unparker_clones_share_the_shot() {
        let ctx = noop_ctx();
        let u = Unparker::new(dummy_task(), ctx.clone());
        let v = u.clone();
        assert!(v.unpark());
        assert!(!u.unpark());
        assert_eq!(ctx.ready_count(), 1);
    }

    #[test]
    fn direct_port_unparks_inline() {
        let ctx = noop_ctx();
        let u = Unparker::new(dummy_task(), ctx.clone());
        DirectPort.notify(u);
        assert_eq!(ctx.ready_count(), 1);
    }

    #[test]
    fn wait_list_wake_one_skips_spent() {
        let ctx = noop_ctx();
        let u1 = Unparker::new(dummy_task(), ctx.clone());
        let u2 = Unparker::new(dummy_task(), ctx.clone());
        let mut wl = WaitList::new();
        wl.push(Waiter::new(u1.clone(), Arc::new(DirectPort)));
        wl.push(Waiter::new(u2, Arc::new(DirectPort)));
        u1.unpark(); // woken elsewhere; the queued waiter is now spent
        assert!(wl.wake_one());
        assert!(wl.is_empty());
        assert_eq!(ctx.ready_count(), 2);
    }

    #[test]
    fn wait_list_wake_all() {
        let ctx = noop_ctx();
        let mut wl = WaitList::new();
        for _ in 0..3 {
            wl.push(Waiter::new(
                Unparker::new(dummy_task(), ctx.clone()),
                Arc::new(DirectPort),
            ));
        }
        assert_eq!(wl.len(), 3);
        wl.wake_all();
        assert_eq!(ctx.ready_count(), 3);
        assert!(wl.is_empty());
    }

    #[test]
    fn accept_queue_wakes_on_push_and_close() {
        let ctx = noop_ctx();
        let q: AcceptQueue<u32> = AcceptQueue::new();
        // A parked waiter is woken by a push...
        let u1 = Unparker::new(dummy_task(), ctx.clone());
        q.register(Waiter::new(u1, Arc::new(DirectPort)));
        assert_eq!(ctx.ready_count(), 0);
        assert!(q.push(7).is_ok());
        assert_eq!(ctx.ready_count(), 1);
        // ...a waiter registered while the backlog is non-empty wakes
        // immediately...
        let u2 = Unparker::new(dummy_task(), ctx.clone());
        q.register(Waiter::new(u2, Arc::new(DirectPort)));
        assert_eq!(ctx.ready_count(), 2);
        assert_eq!(q.pop(), Some(7));
        // ...and close wakes parked waiters, refuses new pushes, and
        // wakes post-close registrations immediately (no lost wakeup
        // against shutdown).
        let u3 = Unparker::new(dummy_task(), ctx.clone());
        q.register(Waiter::new(u3, Arc::new(DirectPort)));
        assert_eq!(ctx.ready_count(), 2);
        q.close();
        assert_eq!(ctx.ready_count(), 3);
        assert_eq!(q.push(8), Err(8));
        let u4 = Unparker::new(dummy_task(), ctx.clone());
        q.register(Waiter::new(u4, Arc::new(DirectPort)));
        assert_eq!(ctx.ready_count(), 4);
        assert!(q.is_closed());
    }

    #[test]
    fn wait_list_spent_churn_leaves_bounded_residue() {
        // A device that keeps being registered against by threads that are
        // woken through other routes (losing choose branches): the
        // watermark sweep must keep the physical list near zero live
        // entries, not let 10k spent registrations pile up.
        let ctx = noop_ctx();
        let mut wl = WaitList::new();
        for _ in 0..10_000 {
            let u = Unparker::new(dummy_task(), ctx.clone());
            wl.push(Waiter::new(u.clone(), Arc::new(DirectPort)));
            u.unpark(); // spent immediately: committed elsewhere
            assert!(wl.physical_len() <= 2 * PRUNE_FLOOR);
        }
        assert_eq!(wl.len(), 0);
        assert!(wl.physical_len() <= 2 * PRUNE_FLOOR);
    }

    #[test]
    fn wait_q_cancellation_removes_entries_physically() {
        let ctx = noop_ctx();
        let mut q = WaitQ::new();
        // 10k register/cancel cycles: cancellation frees the arena slot at
        // once, so nothing accumulates and nothing remains to wake.
        for _ in 0..10_000 {
            let slot = q.push(Waiter::new(
                Unparker::new(dummy_task(), ctx.clone()),
                Arc::new(DirectPort),
            ));
            assert!(slot.take().is_some());
            assert_eq!(q.physical_len(), 0);
        }
        assert!(!q.wake_one(), "no residue to wake");
        assert_eq!(ctx.ready_count(), 0);

        // A batch armed together then cancelled together — the shape of a
        // disconnect storm against a shutdown Signal.
        let slots: Vec<_> = (0..10_000)
            .map(|_| {
                q.push(Waiter::new(
                    Unparker::new(dummy_task(), ctx.clone()),
                    Arc::new(DirectPort),
                ))
            })
            .collect();
        assert_eq!(q.len(), 10_000);
        for s in &slots {
            assert!(s.take().is_some());
        }
        assert_eq!(q.physical_len(), 0, "mass cancel leaves zero entries");
        assert_eq!(q.len(), 0);
        // Order tombstones are swept by subsequent traffic, and a live
        // push/wake still works.
        let _slot = q.push(Waiter::new(
            Unparker::new(dummy_task(), ctx.clone()),
            Arc::new(DirectPort),
        ));
        assert!(q.wake_one());
        assert_eq!(ctx.ready_count(), 1);
    }

    #[test]
    fn wait_q_double_take_is_stale() {
        let ctx = noop_ctx();
        let mut q = WaitQ::new();
        let slot = q.push(Waiter::new(
            Unparker::new(dummy_task(), ctx.clone()),
            Arc::new(DirectPort),
        ));
        assert!(slot.take().is_some());
        assert!(slot.take().is_none(), "second take sees a stale key");
        // The freed slot is recycled; the old key must not touch the new
        // tenant.
        let slot2 = q.push(Waiter::new(
            Unparker::new(dummy_task(), ctx.clone()),
            Arc::new(DirectPort),
        ));
        assert!(slot.take().is_none());
        assert_eq!(q.physical_len(), 1);
        assert!(slot2.take().is_some());
    }

    #[test]
    fn accept_queue_spent_churn_leaves_bounded_residue() {
        let ctx = noop_ctx();
        let q: AcceptQueue<u32> = AcceptQueue::new();
        for _ in 0..10_000 {
            let u = Unparker::new(dummy_task(), ctx.clone());
            q.register(Waiter::new(u.clone(), Arc::new(DirectPort)));
            u.unpark();
        }
        assert_eq!(q.waiter_count(), 0);
        assert!(q.physical_waiters() <= 2 * PRUNE_FLOOR);
    }

    #[test]
    fn fd_ids_are_unique() {
        struct Never;
        impl Pollable for Never {
            fn register(&self, _: Interest, _: Waiter) {}
        }
        let a = Fd::new(Arc::new(Never));
        let b = Fd::new(Arc::new(Never));
        assert_ne!(a.id(), b.id());
        assert!(format!("{a:?}").starts_with("Fd("));
    }
}
