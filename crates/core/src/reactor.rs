//! Event abstractions: readiness interests, pollable devices, event ports
//! and one-shot unparkers.
//!
//! This module is the boundary between the thread world and the event world
//! (the centre box of the paper's Figure 2). Devices expose *readiness*
//! through [`Pollable::register`]; the scheduler parks a thread by storing a
//! one-shot [`Unparker`] with the device; when the device becomes ready it
//! routes the unparker through an [`EventPort`] — the paper's `worker_epoll`
//! event loop (Figure 16) is one such port.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::engine::RuntimeCtx;
use crate::task::Task;

/// The readiness condition a thread waits for — the paper's `EPOLL_READ` /
/// `EPOLL_WRITE` events.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Interest {
    /// Ready to read without blocking (or end-of-stream reached).
    Read,
    /// Ready to write without blocking (or peer closed).
    Write,
}

static NEXT_FD: AtomicU64 = AtomicU64::new(1);

/// A handle naming a registered pollable device, as passed to
/// [`sys_epoll_wait`](crate::syscall::sys_epoll_wait).
///
/// Unlike a Unix fd this handle carries its device, so no global descriptor
/// table is needed; the numeric id exists for logging and ordering.
#[derive(Clone)]
pub struct Fd {
    id: u64,
    dev: Arc<dyn Pollable>,
}

impl Fd {
    /// Wraps a device in a fresh descriptor.
    pub fn new(dev: Arc<dyn Pollable>) -> Self {
        Fd {
            id: NEXT_FD.fetch_add(1, Ordering::Relaxed),
            dev,
        }
    }

    /// The numeric identifier (unique per process).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The underlying device.
    pub fn device(&self) -> &Arc<dyn Pollable> {
        &self.dev
    }
}

impl fmt::Debug for Fd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Fd({})", self.id)
    }
}

/// A device whose readiness can be waited on, in the manner of an fd
/// registered with epoll.
pub trait Pollable: Send + Sync {
    /// Registers `waiter` to be woken when `interest` becomes ready.
    ///
    /// Implementations must check the condition and store the waiter under
    /// the same lock, and must wake the waiter immediately if the condition
    /// already holds — otherwise wakeups may be lost.
    fn register(&self, interest: Interest, waiter: Waiter);
}

/// Delivery route for readiness events: devices hand ready unparkers to a
/// port, which forwards them to the scheduler. The real runtime's port is a
/// queue drained by a dedicated `worker_epoll` thread (paper Figure 16); the
/// simulator's port delivers inline at the current virtual time.
pub trait EventPort: Send + Sync {
    /// Forwards a woken thread towards the ready queue.
    fn notify(&self, unparker: Unparker);
}

/// An [`EventPort`] that unparks inline, bypassing any event-loop queue.
/// Used by the local executor, by tests, and as an ablation of the paper's
/// queued architecture.
#[derive(Debug, Default, Clone, Copy)]
pub struct DirectPort;

impl EventPort for DirectPort {
    fn notify(&self, unparker: Unparker) {
        unparker.unpark();
    }
}

/// A parked thread registered with a device, plus the port that readiness
/// events for it must travel through.
pub struct Waiter {
    unparker: Unparker,
    port: Arc<dyn EventPort>,
}

impl Waiter {
    /// Pairs a parked thread with its event delivery route.
    pub fn new(unparker: Unparker, port: Arc<dyn EventPort>) -> Self {
        Waiter { unparker, port }
    }

    /// Wakes the thread by routing it through the event port.
    pub fn wake(self) {
        self.port.notify(self.unparker);
    }

    /// True if the thread was already woken through another route.
    pub fn is_spent(&self) -> bool {
        self.unparker.is_spent()
    }
}

impl fmt::Debug for Waiter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Waiter")
            .field("spent", &self.is_spent())
            .finish()
    }
}

/// A one-shot handle that resumes a parked monadic thread.
///
/// Cloning is cheap; however many clones exist, the thread is resumed at
/// most once (later `unpark` calls return `false`). This is the primitive
/// from which every blocking abstraction in the system is built — see
/// [`sys_park`](crate::syscall::sys_park).
#[derive(Clone)]
pub struct Unparker {
    inner: Arc<UnparkerInner>,
}

struct UnparkerInner {
    task: Mutex<Option<Task>>,
    ctx: Arc<dyn RuntimeCtx>,
}

impl Unparker {
    /// Wraps a parked task. The scheduler constructs these; device code only
    /// consumes them.
    pub fn new(task: Task, ctx: Arc<dyn RuntimeCtx>) -> Self {
        Unparker {
            inner: Arc::new(UnparkerInner {
                task: Mutex::new(Some(task)),
                ctx,
            }),
        }
    }

    /// Resumes the parked thread by pushing it onto the scheduler's ready
    /// queue. Returns `false` if the thread was already resumed.
    pub fn unpark(&self) -> bool {
        let task = self.inner.task.lock().take();
        match task {
            Some(t) => {
                self.inner.ctx.charge(crate::engine::CostKind::Wake);
                self.inner.ctx.push_ready(t);
                true
            }
            None => false,
        }
    }

    /// True if the thread has already been resumed.
    pub fn is_spent(&self) -> bool {
        self.inner.task.lock().is_none()
    }
}

impl fmt::Debug for Unparker {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Unparker")
            .field("spent", &self.is_spent())
            .finish()
    }
}

/// A list of parked waiters maintained by a device, with helpers for the
/// wake-one / wake-all patterns used by pipes, sockets and sync primitives.
#[derive(Debug, Default)]
pub struct WaitList {
    waiters: Vec<Waiter>,
}

impl WaitList {
    /// Creates an empty list.
    pub fn new() -> Self {
        WaitList {
            waiters: Vec::new(),
        }
    }

    /// Adds a waiter.
    pub fn push(&mut self, w: Waiter) {
        self.waiters.push(w);
    }

    /// Wakes every waiter and clears the list.
    pub fn wake_all(&mut self) {
        for w in self.waiters.drain(..) {
            w.wake();
        }
    }

    /// Wakes one waiter (skipping any already-spent entries). Returns `true`
    /// if a live waiter was woken.
    pub fn wake_one(&mut self) -> bool {
        while !self.waiters.is_empty() {
            let w = self.waiters.remove(0);
            if !w.is_spent() {
                w.wake();
                return true;
            }
        }
        false
    }

    /// Number of queued waiters (including spent ones not yet drained).
    pub fn len(&self) -> usize {
        self.waiters.len()
    }

    /// True if no waiters are queued.
    pub fn is_empty(&self) -> bool {
        self.waiters.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::testing::noop_ctx;
    use crate::task::{Task, TaskId};
    use crate::trace::Trace;

    fn dummy_task() -> Task {
        Task::from_thunk(TaskId(1), Box::new(|| Trace::Ret))
    }

    #[test]
    fn unparker_is_one_shot() {
        let ctx = noop_ctx();
        let u = Unparker::new(dummy_task(), ctx.clone());
        assert!(!u.is_spent());
        assert!(u.unpark());
        assert!(u.is_spent());
        assert!(!u.unpark());
        assert_eq!(ctx.ready_count(), 1);
    }

    #[test]
    fn unparker_clones_share_the_shot() {
        let ctx = noop_ctx();
        let u = Unparker::new(dummy_task(), ctx.clone());
        let v = u.clone();
        assert!(v.unpark());
        assert!(!u.unpark());
        assert_eq!(ctx.ready_count(), 1);
    }

    #[test]
    fn direct_port_unparks_inline() {
        let ctx = noop_ctx();
        let u = Unparker::new(dummy_task(), ctx.clone());
        DirectPort.notify(u);
        assert_eq!(ctx.ready_count(), 1);
    }

    #[test]
    fn wait_list_wake_one_skips_spent() {
        let ctx = noop_ctx();
        let u1 = Unparker::new(dummy_task(), ctx.clone());
        let u2 = Unparker::new(dummy_task(), ctx.clone());
        let mut wl = WaitList::new();
        wl.push(Waiter::new(u1.clone(), Arc::new(DirectPort)));
        wl.push(Waiter::new(u2, Arc::new(DirectPort)));
        u1.unpark(); // woken elsewhere; the queued waiter is now spent
        assert!(wl.wake_one());
        assert!(wl.is_empty());
        assert_eq!(ctx.ready_count(), 2);
    }

    #[test]
    fn wait_list_wake_all() {
        let ctx = noop_ctx();
        let mut wl = WaitList::new();
        for _ in 0..3 {
            wl.push(Waiter::new(
                Unparker::new(dummy_task(), ctx.clone()),
                Arc::new(DirectPort),
            ));
        }
        assert_eq!(wl.len(), 3);
        wl.wake_all();
        assert_eq!(ctx.ready_count(), 3);
        assert!(wl.is_empty());
    }

    #[test]
    fn fd_ids_are_unique() {
        struct Never;
        impl Pollable for Never {
            fn register(&self, _: Interest, _: Waiter) {}
        }
        let a = Fd::new(Arc::new(Never));
        let b = Fd::new(Arc::new(Never));
        assert_ne!(a.id(), b.id());
        assert!(format!("{a:?}").starts_with("Fd("));
    }
}
