//! Time units shared by the real and simulated runtimes.
//!
//! Both runtimes report time as nanoseconds since runtime start, so thread
//! code written against [`sys_time`](crate::syscall::sys_time) behaves
//! identically under the wall-clock runtime and the discrete-event simulator.

/// A point in time, in nanoseconds since the runtime started.
pub type Nanos = u64;

/// Nanoseconds per microsecond.
pub const MICROS: Nanos = 1_000;
/// Nanoseconds per millisecond.
pub const MILLIS: Nanos = 1_000_000;
/// Nanoseconds per second.
pub const SECS: Nanos = 1_000_000_000;

/// Formats a [`Nanos`] duration with a human-friendly unit.
///
/// # Examples
///
/// ```
/// assert_eq!(eveth_core::time::fmt_nanos(1_500_000), "1.500ms");
/// assert_eq!(eveth_core::time::fmt_nanos(250), "250ns");
/// ```
pub fn fmt_nanos(n: Nanos) -> String {
    if n >= SECS {
        format!("{:.3}s", n as f64 / SECS as f64)
    } else if n >= MILLIS {
        format!("{:.3}ms", n as f64 / MILLIS as f64)
    } else if n >= MICROS {
        format!("{:.3}us", n as f64 / MICROS as f64)
    } else {
        format!("{n}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formats_all_ranges() {
        assert_eq!(fmt_nanos(5), "5ns");
        assert_eq!(fmt_nanos(5 * MICROS), "5.000us");
        assert_eq!(fmt_nanos(5 * MILLIS), "5.000ms");
        assert_eq!(fmt_nanos(2 * SECS + SECS / 2), "2.500s");
    }
}
