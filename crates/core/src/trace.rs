//! Run-time representation of thread execution: the *trace*.
//!
//! A trace (paper §3.1, Figure 5) is a tree describing the sequence of
//! system calls made by a monadic thread. Each system call in the
//! multithreaded programming interface corresponds to exactly one node kind.
//! In Haskell the tree is lazy; forcing a node runs the thread up to its next
//! system call. Here every child is a boxed [`Thunk`] — calling it performs
//! exactly the same controlled resumption, so the scheduler can "push" thread
//! continuations to execute by traversing the tree.

use std::fmt;

use crate::aio::{AioReadReq, AioResult, AioWriteReq};
use crate::exception::Exception;
use crate::reactor::{Fd, Interest, Unparker};
use crate::time::Nanos;

/// A suspended computation producing the next trace node when forced.
///
/// This plays the role of Haskell's lazy `Trace` fields: the consumer of the
/// trace (the scheduler) controls the execution of its producer (the thread).
pub type Thunk = Box<dyn FnOnce() -> Trace + Send>;

/// An exception handler installed by `sys_catch`; produces the handler's
/// trace when invoked with the thrown exception.
pub type HandlerFn = Box<dyn FnOnce(Exception) -> Trace + Send>;

/// Continuation of an asynchronous I/O operation, resumed with its result.
pub type AioCont = Box<dyn FnOnce(AioResult) -> Trace + Send>;

/// A blocking job for the blocking-I/O thread pool: runs the blocking
/// operation and hands back the (cheap) continuation thunk to be scheduled
/// on a normal worker.
pub type BlioJob = Box<dyn FnOnce() -> Thunk + Send>;

/// One node in a thread's trace; the scheduler interprets these.
///
/// Naming follows the paper's `SYS_*` constructors. Variants that suspend the
/// thread carry the continuation as a [`Thunk`] (or a typed continuation for
/// value-returning calls such as AIO).
pub enum Trace {
    /// `SYS_RET` — the thread terminated.
    Ret,
    /// `SYS_NBIO` — a non-blocking effectful operation fused with the
    /// continuation: running the closure performs the I/O and yields the
    /// next node (Haskell: `SYS_NBIO (IO Trace)`).
    Nbio(Box<dyn FnOnce() -> Trace + Send>),
    /// `SYS_FORK` — two sub-traces: the child thread and the parent's
    /// continuation, in that order (paper Figure 5).
    Fork(Thunk, Thunk),
    /// `SYS_YIELD` — reschedule the thread at the back of the ready queue.
    Yield(Thunk),
    /// `SYS_EPOLL_WAIT` — block until `interest` is ready on `fd`.
    EpollWait(Fd, Interest, Thunk),
    /// `SYS_AIO_READ` — submit an asynchronous read; the continuation
    /// receives the result (Haskell: `SYS_AIO_READ FD Integer Buffer
    /// (Int -> Trace)`).
    AioRead(AioReadReq, AioCont),
    /// `SYS_AIO_WRITE` — submit an asynchronous write.
    AioWrite(AioWriteReq, AioCont),
    /// `SYS_BLIO` — run a blocking operation on the blocking-I/O pool
    /// (paper §4.6), then reschedule the continuation on a worker.
    Blio(BlioJob),
    /// `SYS_THROW` — raise an exception to the nearest handler.
    Throw(Exception),
    /// `SYS_CATCH` — push an exception handler, then run the body.
    Catch {
        /// The protected computation.
        body: Thunk,
        /// Handler run if the body throws.
        handler: HandlerFn,
    },
    /// Internal: the body of a `sys_catch` completed normally; pop the
    /// handler frame and continue. (The paper folds this into its `SYS_RET`
    /// interpretation; a distinct node keeps whole-thread exit and
    /// catch-scope exit unambiguous.)
    CatchPop(Thunk),
    /// Block for a duration (backs `sys_sleep` and protocol timers).
    Sleep(Nanos, Thunk),
    /// Query the scheduler clock (virtual time under simulation).
    GetTime(Box<dyn FnOnce(Nanos) -> Trace + Send>),
    /// Consume modelled CPU time: a no-op on the real runtime, a clock
    /// advance under simulation. Used by workload models.
    Cpu(Nanos, Thunk),
    /// The scheduler-extension interface: park this thread, handing a
    /// one-shot [`Unparker`] to the registration closure. Mutexes, channels,
    /// TCP socket waits and STM `retry` are all built from this node.
    Park(Box<dyn FnOnce(Unparker) + Send>, Thunk),
    /// Name the current thread's telemetry span (`sys_annotate`). A pure
    /// metadata node: the scheduler forwards the name to its telemetry
    /// hook and continues — no cost is charged, so annotating threads
    /// never perturbs virtual time.
    Annotate(std::sync::Arc<str>, Thunk),
}

impl Trace {
    /// The paper-style name of this node kind.
    ///
    /// # Examples
    ///
    /// ```
    /// use eveth_core::Trace;
    /// assert_eq!(Trace::Ret.kind(), "SYS_RET");
    /// ```
    pub fn kind(&self) -> &'static str {
        match self {
            Trace::Ret => "SYS_RET",
            Trace::Nbio(_) => "SYS_NBIO",
            Trace::Fork(_, _) => "SYS_FORK",
            Trace::Yield(_) => "SYS_YIELD",
            Trace::EpollWait(_, _, _) => "SYS_EPOLL_WAIT",
            Trace::AioRead(_, _) => "SYS_AIO_READ",
            Trace::AioWrite(_, _) => "SYS_AIO_WRITE",
            Trace::Blio(_) => "SYS_BLIO",
            Trace::Throw(_) => "SYS_THROW",
            Trace::Catch { .. } => "SYS_CATCH",
            Trace::CatchPop(_) => "SYS_CATCH_POP",
            Trace::Sleep(_, _) => "SYS_SLEEP",
            Trace::GetTime(_) => "SYS_GETTIME",
            Trace::Cpu(_, _) => "SYS_CPU",
            Trace::Park(_, _) => "SYS_PARK",
            Trace::Annotate(_, _) => "SYS_ANNOTATE",
        }
    }
}

impl fmt::Debug for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Trace::EpollWait(fd, i, _) => write!(f, "SYS_EPOLL_WAIT({fd:?}, {i:?})"),
            Trace::AioRead(req, _) => {
                write!(f, "SYS_AIO_READ(off={}, len={})", req.offset, req.len)
            }
            Trace::AioWrite(req, _) => write!(
                f,
                "SYS_AIO_WRITE(off={}, len={})",
                req.offset,
                req.data.len()
            ),
            Trace::Throw(e) => write!(f, "SYS_THROW({e})"),
            Trace::Sleep(d, _) => write!(f, "SYS_SLEEP({})", crate::time::fmt_nanos(*d)),
            Trace::Cpu(d, _) => write!(f, "SYS_CPU({})", crate::time::fmt_nanos(*d)),
            Trace::Annotate(name, _) => write!(f, "SYS_ANNOTATE({name})"),
            other => f.write_str(other.kind()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_are_paper_names() {
        assert_eq!(Trace::Ret.kind(), "SYS_RET");
        assert_eq!(Trace::Yield(Box::new(|| Trace::Ret)).kind(), "SYS_YIELD");
        assert_eq!(
            Trace::Fork(Box::new(|| Trace::Ret), Box::new(|| Trace::Ret)).kind(),
            "SYS_FORK"
        );
        assert_eq!(Trace::Nbio(Box::new(|| Trace::Ret)).kind(), "SYS_NBIO");
    }

    #[test]
    fn debug_is_nonempty() {
        let t = Trace::Throw(Exception::new("x"));
        assert!(format!("{t:?}").contains("SYS_THROW"));
        let s = Trace::Sleep(1_000_000, Box::new(|| Trace::Ret));
        assert!(format!("{s:?}").contains("SYS_SLEEP"));
    }
}
