//! # eveth-core — events *and* threads, at application level
//!
//! A Rust implementation of the hybrid concurrency model of Li & Zdancewic,
//! *"Combining Events and Threads for Scalable Network Services"* (PLDI
//! 2007): per-client code is written as cheap, monadic **threads**, while
//! the whole application is an **event-driven** program built on
//! asynchronous I/O — and both halves live in the same language, address
//! space and compilation unit.
//!
//! The key pieces, following the paper:
//!
//! * [`ThreadM`] — the CPS concurrency monad (`newtype M a = M ((a ->
//!   Trace) -> Trace)`), with [`do_m!`] standing in for Haskell's
//!   `do`-syntax;
//! * [`Trace`] — the lazy tree of system calls a thread performs; the event
//!   abstraction the scheduler traverses;
//! * [`syscall`] — the system-call vocabulary (`sys_nbio`, `sys_fork`,
//!   `sys_epoll_wait`, `sys_aio_read`, `sys_throw`/`sys_catch`, …);
//! * [`engine`] — the trace interpreter shared by every scheduler;
//! * [`runtime`] — the real runtime: SMP `worker_main` pools, a
//!   `worker_epoll` readiness loop, a `worker_aio` completion loop, a
//!   blocking-I/O pool and a timer wheel (paper Figure 14);
//! * [`sync`] — blocking synchronization (mutexes, MVars, channels) built
//!   as scheduler extensions on [`syscall::sys_park`];
//! * [`event`] — first-class composable events (CML-style
//!   `Event`/`choose`/`wrap`/`guard`/`sync`), lowering multi-way waits
//!   ("receive OR time out OR shut down") onto one generalized park;
//! * [`io`] — in-memory pollable devices (FIFO pipes, RAM disk);
//! * [`net`] — the socket abstraction servers program against, so kernel
//!   sockets and the application-level TCP stack are interchangeable;
//! * [`service`] — the event-native service framework: a [`service::Service`]
//!   trait plus a generic [`service::Server`] owning accept fan-out, the
//!   per-session readiness/idle/shutdown `choose`, and graceful drain;
//! * [`telemetry`] — the observability fabric: per-thread spans, a
//!   flight-recorder event ring with Chrome-trace export, a metrics
//!   registry and a live [`telemetry::DebugService`] introspection
//!   endpoint.
//!
//! ## Quickstart
//!
//! ```
//! use eveth_core::{do_m, runtime::Runtime, syscall::*, ThreadM};
//!
//! let rt = Runtime::builder().workers(2).build();
//! let result = rt.block_on(do_m! {
//!     sys_fork(sys_nbio(|| println!("hello from a forked thread")));
//!     let t <- sys_time();
//!     ThreadM::pure(t)
//! });
//! assert!(result < u64::MAX);
//! rt.shutdown();
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
// The do_m! macro expands `let p = e;` bindings verbatim, and unit-typed
// bindings there trip an ICE in clippy's let_unit_value lint (clippy
// #13458-style unwrap on None); the lint is noise for this idiom anyway.
#![allow(clippy::let_unit_value)]

pub mod aio;
pub mod check;
pub mod engine;
pub mod event;
pub mod exception;
pub mod hash;
pub mod io;
pub mod local;
pub mod net;
pub mod ops;
pub mod reactor;
pub mod runtime;
pub mod sched;
pub mod service;
pub mod slab;
pub mod sync;
pub mod syscall;
pub mod task;
pub mod telemetry;
pub mod thread;
pub mod time;
pub mod timer;
pub mod trace;

pub use exception::Exception;
pub use thread::{for_each_m, forever_m, loop_m, map_m, while_m, Cont, Loop, ThreadM};
pub use trace::Trace;
