//! `MVar` — Concurrent Haskell's one-place synchronized buffer, implemented
//! as a scheduler extension exactly as the paper suggests for "other
//! synchronization primitives such as MVars" (§4.7).

use std::collections::VecDeque;
use std::fmt;
use std::sync::Arc;

use crate::reactor::Unparker;
use crate::syscall::{sys_nbio, sys_park};
use crate::thread::{loop_m, Loop, ThreadM};

struct MvState<T> {
    value: Option<T>,
    takers: VecDeque<Unparker>,
    putters: VecDeque<Unparker>,
}

struct MvInner<T> {
    st: parking_lot::Mutex<MvState<T>>,
}

/// A one-place buffer: `take` blocks while empty, `put` blocks while full.
///
/// # Examples
///
/// ```
/// use eveth_core::{do_m, runtime::Runtime, sync::MVar, syscall::*, ThreadM};
///
/// let rt = Runtime::builder().workers(2).build();
/// let mv = MVar::new_empty();
/// let producer = mv.clone();
/// let got = rt.block_on(do_m! {
///     sys_fork(producer.put(99));
///     let v <- mv.take();
///     ThreadM::pure(v)
/// });
/// assert_eq!(got, 99);
/// rt.shutdown();
/// ```
pub struct MVar<T> {
    inner: Arc<MvInner<T>>,
}

impl<T> Clone for MVar<T> {
    fn clone(&self) -> Self {
        MVar {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T: Send + 'static> MVar<T> {
    /// Creates an empty MVar.
    pub fn new_empty() -> Self {
        MVar {
            inner: Arc::new(MvInner {
                st: parking_lot::Mutex::new(MvState {
                    value: None,
                    takers: VecDeque::new(),
                    putters: VecDeque::new(),
                }),
            }),
        }
    }

    /// Creates a full MVar holding `v`.
    pub fn new(v: T) -> Self {
        let mv = Self::new_empty();
        mv.inner.st.lock().value = Some(v);
        mv
    }

    /// Non-blocking take (mainly for tests).
    pub fn try_take(&self) -> Option<T> {
        let mut st = self.inner.st.lock();
        let v = st.value.take();
        if v.is_some() {
            wake_all(&mut st.putters);
        }
        v
    }

    /// Non-blocking put; returns `Err(v)` if full.
    pub fn try_put(&self, v: T) -> Result<(), T> {
        let mut st = self.inner.st.lock();
        if st.value.is_some() {
            Err(v)
        } else {
            st.value = Some(v);
            wake_all(&mut st.takers);
            Ok(())
        }
    }

    /// True if the MVar currently holds a value.
    pub fn is_full(&self) -> bool {
        self.inner.st.lock().value.is_some()
    }

    /// Takes the value, parking the monadic thread while empty.
    pub fn take(&self) -> ThreadM<T> {
        let inner = Arc::clone(&self.inner);
        loop_m((), move |()| {
            let try_inner = Arc::clone(&inner);
            let park_inner = Arc::clone(&inner);
            sys_nbio(move || {
                let mut st = try_inner.st.lock();
                let v = st.value.take();
                if v.is_some() {
                    wake_all(&mut st.putters);
                }
                v
            })
            .bind(move |got| match got {
                Some(v) => ThreadM::pure(Loop::Break(v)),
                None => sys_park(move |u| {
                    let mut st = park_inner.st.lock();
                    if st.value.is_some() {
                        drop(st);
                        u.unpark();
                    } else {
                        st.takers.push_back(u);
                    }
                })
                .map(|_| Loop::Continue(())),
            })
        })
    }

    /// Puts a value, parking the monadic thread while full.
    pub fn put(&self, v: T) -> ThreadM<()> {
        let inner = Arc::clone(&self.inner);
        loop_m(v, move |v| {
            let try_inner = Arc::clone(&inner);
            let park_inner = Arc::clone(&inner);
            sys_nbio(move || {
                let mut st = try_inner.st.lock();
                if st.value.is_some() {
                    Err(v)
                } else {
                    st.value = Some(v);
                    wake_all(&mut st.takers);
                    Ok(())
                }
            })
            .bind(move |res| match res {
                Ok(()) => ThreadM::pure(Loop::Break(())),
                Err(v) => sys_park(move |u| {
                    let mut st = park_inner.st.lock();
                    if st.value.is_none() {
                        drop(st);
                        u.unpark();
                    } else {
                        st.putters.push_back(u);
                    }
                })
                .map(move |_| Loop::Continue(v)),
            })
        })
    }
}

impl<T: Clone + Send + 'static> MVar<T> {
    /// Reads the value without removing it, parking while empty.
    pub fn read(&self) -> ThreadM<T> {
        let inner = Arc::clone(&self.inner);
        loop_m((), move |()| {
            let try_inner = Arc::clone(&inner);
            let park_inner = Arc::clone(&inner);
            sys_nbio(move || try_inner.st.lock().value.clone()).bind(move |got| match got {
                Some(v) => ThreadM::pure(Loop::Break(v)),
                None => sys_park(move |u| {
                    let mut st = park_inner.st.lock();
                    if st.value.is_some() {
                        drop(st);
                        u.unpark();
                    } else {
                        st.takers.push_back(u);
                    }
                })
                .map(|_| Loop::Continue(())),
            })
        })
    }
}

fn wake_all(q: &mut VecDeque<Unparker>) {
    // Wake everyone and let them re-compete: with one-shot unparkers this is
    // both simple and immune to lost-wakeup races.
    for u in q.drain(..) {
        u.unpark();
    }
}

impl<T> fmt::Debug for MVar<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let st = self.inner.st.lock();
        write!(
            f,
            "MVar(full={}, takers={}, putters={})",
            st.value.is_some(),
            st.takers.len(),
            st.putters.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::Runtime;
    use crate::syscall::sys_fork;

    #[test]
    fn try_take_and_put() {
        let mv = MVar::new(1);
        assert!(mv.is_full());
        assert_eq!(mv.try_take(), Some(1));
        assert_eq!(mv.try_take(), None);
        assert!(mv.try_put(2).is_ok());
        assert_eq!(mv.try_put(3).unwrap_err(), 3);
    }

    #[test]
    fn take_blocks_until_put() {
        let rt = Runtime::builder().workers(2).build();
        let mv: MVar<u32> = MVar::new_empty();
        let putter = mv.clone();
        let got = rt.block_on(crate::do_m! {
            sys_fork(crate::do_m! {
                crate::syscall::sys_sleep(10 * crate::time::MILLIS);
                putter.put(5)
            });
            mv.take()
        });
        assert_eq!(got, 5);
        rt.shutdown();
    }

    #[test]
    fn producer_consumer_preserves_all_items() {
        let rt = Runtime::builder().workers(4).build();
        let mv: MVar<u64> = MVar::new_empty();
        const N: u64 = 500;
        let producer = mv.clone();
        rt.spawn(crate::for_each_m(0..N, move |i| producer.put(i)));
        let sum = rt.block_on(crate::loop_m((0u64, 0u64), move |(count, sum)| {
            if count == N {
                return crate::ThreadM::pure(crate::Loop::Break(sum));
            }
            mv.take()
                .map(move |v| crate::Loop::Continue((count + 1, sum + v)))
        }));
        assert_eq!(sum, N * (N - 1) / 2);
        rt.shutdown();
    }

    #[test]
    fn read_does_not_consume() {
        let rt = Runtime::builder().workers(1).build();
        let mv = MVar::new(7u8);
        let taker = mv.clone();
        let (a, b) = rt.block_on(crate::do_m! {
            let a <- mv.read();
            let b <- taker.take();
            crate::ThreadM::pure((a, b))
        });
        assert_eq!((a, b), (7, 7));
        assert!(!mv.is_full());
        rt.shutdown();
    }

    #[test]
    fn debug_reports_occupancy() {
        let mv = MVar::new(1);
        assert!(format!("{mv:?}").contains("full=true"));
    }
}
