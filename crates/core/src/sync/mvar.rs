//! `MVar` — Concurrent Haskell's one-place synchronized buffer, implemented
//! as a scheduler extension exactly as the paper suggests for "other
//! synchronization primitives such as MVars" (§4.7).
//!
//! Event-native: [`MVar::take_evt`] / [`MVar::put_evt`] /
//! [`MVar::read_evt`] compose under [`choose`](crate::event::choose), and
//! the blocking methods are `sync(..._evt())`. State changes wake *all*
//! waiters of the affected class (wake-all is immune to lost wakeups with
//! one-shot unparkers), so losing `choose` branches need no baton — their
//! cancelled registrations are simply withdrawn.

use std::fmt;
use std::sync::Arc;

use crate::check;
use crate::engine::WaitKind;
use crate::event::{branch_waiter, sync, Branch, Event, Registration};
use crate::reactor::WaitQ;
use crate::thread::ThreadM;

struct MvState<T> {
    value: Option<T>,
    takers: WaitQ,
    putters: WaitQ,
    rid: u64,
}

impl<T> MvState<T> {
    fn op(&self, kind: check::OpKind) {
        let full = self.value.is_some() as u64;
        check::op(self.rid, check::ResKind::MVar, kind, [full, 1 - full]);
    }
}

struct MvInner<T> {
    st: parking_lot::Mutex<MvState<T>>,
}

/// A one-place buffer: `take` blocks while empty, `put` blocks while full.
///
/// # Examples
///
/// ```
/// use eveth_core::{do_m, runtime::Runtime, sync::MVar, syscall::*, ThreadM};
///
/// let rt = Runtime::builder().workers(2).build();
/// let mv = MVar::new_empty();
/// let producer = mv.clone();
/// let got = rt.block_on(do_m! {
///     sys_fork(producer.put(99));
///     let v <- mv.take();
///     ThreadM::pure(v)
/// });
/// assert_eq!(got, 99);
/// rt.shutdown();
/// ```
pub struct MVar<T> {
    inner: Arc<MvInner<T>>,
}

impl<T> Clone for MVar<T> {
    fn clone(&self) -> Self {
        MVar {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T: Send + 'static> MVar<T> {
    /// Creates an empty MVar.
    pub fn new_empty() -> Self {
        MVar {
            inner: Arc::new(MvInner {
                st: parking_lot::Mutex::new(MvState {
                    value: None,
                    takers: WaitQ::new(),
                    putters: WaitQ::new(),
                    rid: check::new_rid(),
                }),
            }),
        }
    }

    /// Creates a full MVar holding `v`.
    pub fn new(v: T) -> Self {
        let mv = Self::new_empty();
        mv.inner.st.lock().value = Some(v);
        mv
    }

    /// Non-blocking take (mainly for tests).
    pub fn try_take(&self) -> Option<T> {
        let mut st = self.inner.st.lock();
        let v = st.value.take();
        if v.is_some() {
            st.op(check::OpKind::Consume);
            let _scope = check::wake_scope(st.rid);
            st.putters.wake_all();
        }
        v
    }

    /// Non-blocking put; returns `Err(v)` if full.
    pub fn try_put(&self, v: T) -> Result<(), T> {
        let mut st = self.inner.st.lock();
        if st.value.is_some() {
            Err(v)
        } else {
            st.value = Some(v);
            st.op(check::OpKind::Publish);
            let _scope = check::wake_scope(st.rid);
            st.takers.wake_all();
            Ok(())
        }
    }

    /// True if the MVar currently holds a value.
    pub fn is_full(&self) -> bool {
        self.inner.st.lock().value.is_some()
    }

    /// Live registrations parked on this MVar, as `(takers, putters)` (for
    /// tests asserting loser cancellation leaves nothing behind).
    pub fn waiter_counts(&self) -> (usize, usize) {
        let st = self.inner.st.lock();
        (st.takers.len(), st.putters.len())
    }

    /// The take event: ready while the MVar is full; commits by emptying
    /// it and waking every blocked putter.
    pub fn take_evt(&self) -> Event<T> {
        let poll_inner = Arc::clone(&self.inner);
        let reg_inner = Arc::clone(&self.inner);
        Event::from_fn(move |_t0, out| {
            out.push(Branch::new(
                WaitKind::Lock,
                move |_now| {
                    let mut st = poll_inner.st.lock();
                    let v = st.value.take();
                    if v.is_some() {
                        st.op(check::OpKind::Consume);
                        let _scope = check::wake_scope(st.rid);
                        st.putters.wake_all();
                    }
                    v
                },
                move |u| {
                    let waiter = branch_waiter(u, WaitKind::Lock);
                    let mut st = reg_inner.st.lock();
                    if st.value.is_some() {
                        let rid = st.rid;
                        drop(st);
                        let _scope = check::wake_scope(rid);
                        waiter.wake();
                        return Registration::none();
                    }
                    st.op(check::OpKind::BlockTake);
                    let slot = st.takers.push(waiter);
                    // Puts wake *all* takers: a consumed wake costs the
                    // device nothing, so plain withdrawal suffices.
                    Registration::with_take(move || slot.take().is_some())
                },
            ));
        })
    }

    /// The put event: ready while the MVar is empty; commits by filling it
    /// with `v` and waking every blocked taker.
    pub fn put_evt(&self, v: T) -> Event<()> {
        let poll_inner = Arc::clone(&self.inner);
        let reg_inner = Arc::clone(&self.inner);
        let mut slot = Some(v);
        Event::from_fn(move |_t0, out| {
            out.push(Branch::new(
                WaitKind::Lock,
                move |_now| {
                    let mut st = poll_inner.st.lock();
                    if st.value.is_none() {
                        if let Some(v) = slot.take() {
                            st.value = Some(v);
                            st.op(check::OpKind::Publish);
                            let _scope = check::wake_scope(st.rid);
                            st.takers.wake_all();
                            return Some(());
                        }
                    }
                    None
                },
                move |u| {
                    let waiter = branch_waiter(u, WaitKind::Lock);
                    let mut st = reg_inner.st.lock();
                    if st.value.is_none() {
                        let rid = st.rid;
                        drop(st);
                        let _scope = check::wake_scope(rid);
                        waiter.wake();
                        return Registration::none();
                    }
                    st.op(check::OpKind::BlockPut);
                    let slot_reg = st.putters.push(waiter);
                    Registration::with_take(move || slot_reg.take().is_some())
                },
            ));
        })
    }

    /// Takes the value, parking the monadic thread while empty —
    /// `sync(self.take_evt())`.
    pub fn take(&self) -> ThreadM<T> {
        sync(self.take_evt())
    }

    /// Puts a value, parking the monadic thread while full —
    /// `sync(self.put_evt(v))`.
    pub fn put(&self, v: T) -> ThreadM<()> {
        sync(self.put_evt(v))
    }
}

impl<T: Clone + Send + 'static> MVar<T> {
    /// The read event: ready while the MVar is full; commits by cloning
    /// the value without removing it.
    pub fn read_evt(&self) -> Event<T> {
        let poll_inner = Arc::clone(&self.inner);
        let reg_inner = Arc::clone(&self.inner);
        Event::from_fn(move |_t0, out| {
            out.push(Branch::new(
                WaitKind::Lock,
                move |_now| poll_inner.st.lock().value.clone(),
                move |u| {
                    let waiter = branch_waiter(u, WaitKind::Lock);
                    let mut st = reg_inner.st.lock();
                    if st.value.is_some() {
                        let rid = st.rid;
                        drop(st);
                        let _scope = check::wake_scope(rid);
                        waiter.wake();
                        return Registration::none();
                    }
                    st.op(check::OpKind::BlockTake);
                    let slot = st.takers.push(waiter);
                    Registration::with_take(move || slot.take().is_some())
                },
            ));
        })
    }

    /// Reads the value without removing it, parking while empty —
    /// `sync(self.read_evt())`.
    pub fn read(&self) -> ThreadM<T> {
        sync(self.read_evt())
    }
}

impl<T> fmt::Debug for MVar<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let st = self.inner.st.lock();
        write!(
            f,
            "MVar(full={}, takers={}, putters={})",
            st.value.is_some(),
            st.takers.len(),
            st.putters.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::Runtime;
    use crate::syscall::sys_fork;

    #[test]
    fn try_take_and_put() {
        let mv = MVar::new(1);
        assert!(mv.is_full());
        assert_eq!(mv.try_take(), Some(1));
        assert_eq!(mv.try_take(), None);
        assert!(mv.try_put(2).is_ok());
        assert_eq!(mv.try_put(3).unwrap_err(), 3);
    }

    #[test]
    fn take_blocks_until_put() {
        let rt = Runtime::builder().workers(2).build();
        let mv: MVar<u32> = MVar::new_empty();
        let putter = mv.clone();
        let got = rt.block_on(crate::do_m! {
            sys_fork(crate::do_m! {
                crate::syscall::sys_sleep(10 * crate::time::MILLIS);
                putter.put(5)
            });
            mv.take()
        });
        assert_eq!(got, 5);
        rt.shutdown();
    }

    #[test]
    fn producer_consumer_preserves_all_items() {
        let rt = Runtime::builder().workers(4).build();
        let mv: MVar<u64> = MVar::new_empty();
        const N: u64 = 500;
        let producer = mv.clone();
        rt.spawn(crate::for_each_m(0..N, move |i| producer.put(i)));
        let sum = rt.block_on(crate::loop_m((0u64, 0u64), move |(count, sum)| {
            if count == N {
                return crate::ThreadM::pure(crate::Loop::Break(sum));
            }
            mv.take()
                .map(move |v| crate::Loop::Continue((count + 1, sum + v)))
        }));
        assert_eq!(sum, N * (N - 1) / 2);
        rt.shutdown();
    }

    #[test]
    fn read_does_not_consume() {
        let rt = Runtime::builder().workers(1).build();
        let mv = MVar::new(7u8);
        let taker = mv.clone();
        let (a, b) = rt.block_on(crate::do_m! {
            let a <- mv.read();
            let b <- taker.take();
            crate::ThreadM::pure((a, b))
        });
        assert_eq!((a, b), (7, 7));
        assert!(!mv.is_full());
        rt.shutdown();
    }

    #[test]
    fn debug_reports_occupancy() {
        let mv = MVar::new(1);
        assert!(format!("{mv:?}").contains("full=true"));
    }
}
