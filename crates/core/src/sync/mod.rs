//! Blocking synchronization for monadic threads (paper §4.7).
//!
//! The paper implements mutexes "as scheduler extensions": a blocked locker's
//! trace is queued inside the mutex and dispatched back to the ready queue on
//! unlock. Every primitive here follows that recipe, built on
//! [`sys_park`](crate::syscall::sys_park): the blocking condition and the
//! waiter queue live under one lock, and wakeups hand one-shot
//! [`Unparker`](crate::reactor::Unparker)s back to the scheduler.
//!
//! * [`Mutex`] — the paper's `sys_mutex`;
//! * [`MVar`] — Concurrent Haskell's one-place buffer;
//! * [`Chan`] — an unbounded FIFO channel (the paper's ready queues are
//!   exactly this);
//! * [`SyncChan`] — a bounded channel with back-pressure;
//! * [`RwLock`] — shared/exclusive access, writer-preferring;
//! * [`Semaphore`] — counting permits (resource-aware scheduling).

pub mod chan;
pub mod mutex;
pub mod mvar;
pub mod rwlock;
pub mod semaphore;

pub use chan::{Chan, SyncChan};
pub use mutex::Mutex;
pub use mvar::MVar;
pub use rwlock::RwLock;
pub use semaphore::Semaphore;
