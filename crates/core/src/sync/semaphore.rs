//! A counting semaphore for monadic threads (scheduler extension, §4.7) —
//! the natural tool for the paper's resource-aware-scheduling future work:
//! bounding concurrent disk requests, connection counts, etc.

use std::collections::VecDeque;
use std::fmt;
use std::sync::Arc;

use crate::reactor::Unparker;
use crate::syscall::{sys_finally, sys_nbio, sys_park};
use crate::thread::{loop_m, Loop, ThreadM};

struct SemState {
    permits: usize,
    waiters: VecDeque<Unparker>,
}

/// A counting semaphore whose `acquire` parks the monadic thread.
///
/// # Examples
///
/// ```
/// use eveth_core::{do_m, runtime::Runtime, sync::Semaphore, syscall::*, ThreadM};
///
/// let rt = Runtime::builder().workers(2).build();
/// let sem = Semaphore::new(2);
/// rt.block_on(sem.with(sys_nbio(|| ())));
/// assert_eq!(sem.permits(), 2);
/// rt.shutdown();
/// ```
#[derive(Clone)]
pub struct Semaphore {
    st: Arc<parking_lot::Mutex<SemState>>,
}

impl Semaphore {
    /// Creates a semaphore with `permits` initial permits.
    pub fn new(permits: usize) -> Self {
        Semaphore {
            st: Arc::new(parking_lot::Mutex::new(SemState {
                permits,
                waiters: VecDeque::new(),
            })),
        }
    }

    /// Currently available permits.
    pub fn permits(&self) -> usize {
        self.st.lock().permits
    }

    /// Threads parked waiting for a permit.
    pub fn waiters(&self) -> usize {
        self.st.lock().waiters.len()
    }

    /// Takes one permit, parking while none are available.
    pub fn acquire(&self) -> ThreadM<()> {
        let st_outer = Arc::clone(&self.st);
        loop_m((), move |()| {
            let try_st = Arc::clone(&st_outer);
            let park_st = Arc::clone(&st_outer);
            sys_nbio(move || {
                let mut st = try_st.lock();
                if st.permits > 0 {
                    st.permits -= 1;
                    true
                } else {
                    false
                }
            })
            .bind(move |got| {
                if got {
                    ThreadM::pure(Loop::Break(()))
                } else {
                    sys_park(move |u| {
                        let mut st = park_st.lock();
                        if st.permits > 0 {
                            drop(st);
                            u.unpark();
                        } else {
                            st.waiters.push_back(u);
                        }
                    })
                    .map(|_| Loop::Continue(()))
                }
            })
        })
    }

    /// Attempts to take one permit without parking.
    pub fn try_acquire(&self) -> bool {
        let mut st = self.st.lock();
        if st.permits > 0 {
            st.permits -= 1;
            true
        } else {
            false
        }
    }

    /// Returns one permit, waking a waiter if any.
    pub fn release(&self) -> ThreadM<()> {
        let st_outer = Arc::clone(&self.st);
        sys_nbio(move || {
            let mut st = st_outer.lock();
            st.permits += 1;
            while let Some(u) = st.waiters.pop_front() {
                if u.unpark() {
                    break;
                }
            }
        })
    }

    /// Runs `body` holding one permit, releasing afterwards even on
    /// exceptions.
    pub fn with<A: Send + 'static>(&self, body: ThreadM<A>) -> ThreadM<A> {
        let release = self.clone();
        self.acquire()
            .bind(move |_| sys_finally(body, move || release.release()))
    }
}

impl fmt::Debug for Semaphore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Semaphore(permits={}, waiters={})",
            self.permits(),
            self.waiters()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::Runtime;
    use crate::syscall::{sys_nbio, sys_sleep, sys_throw, sys_yield};
    use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

    #[test]
    fn bounds_concurrency_exactly() {
        let rt = Runtime::builder().workers(4).build();
        let sem = Semaphore::new(3);
        let inside = Arc::new(AtomicI64::new(0));
        let peak = Arc::new(AtomicI64::new(0));
        let done = Arc::new(AtomicU64::new(0));
        const N: u64 = 40;
        for _ in 0..N {
            let sem = sem.clone();
            let inside = Arc::clone(&inside);
            let peak = Arc::clone(&peak);
            let done = Arc::clone(&done);
            rt.spawn(crate::do_m! {
                sem.with(crate::do_m! {
                    sys_nbio({
                        let i = Arc::clone(&inside);
                        let p = Arc::clone(&peak);
                        move || {
                            let v = i.fetch_add(1, Ordering::SeqCst) + 1;
                            p.fetch_max(v, Ordering::SeqCst);
                        }
                    });
                    sys_yield();
                    sys_nbio(move || { inside.fetch_sub(1, Ordering::SeqCst); })
                });
                sys_nbio(move || { done.fetch_add(1, Ordering::SeqCst); })
            });
        }
        let watch = Arc::clone(&done);
        rt.block_on(crate::loop_m((), move |()| {
            let watch = Arc::clone(&watch);
            crate::do_m! {
                sys_sleep(crate::time::MILLIS);
                let d <- sys_nbio(move || watch.load(Ordering::SeqCst));
                crate::ThreadM::pure(if d == N { crate::Loop::Break(()) } else { crate::Loop::Continue(()) })
            }
        }));
        assert!(peak.load(Ordering::SeqCst) <= 3, "permit bound violated");
        assert_eq!(sem.permits(), 3, "all permits returned");
        rt.shutdown();
    }

    #[test]
    fn try_acquire_counts_down() {
        let sem = Semaphore::new(1);
        assert!(sem.try_acquire());
        assert!(!sem.try_acquire());
        assert_eq!(sem.permits(), 0);
    }

    #[test]
    fn with_releases_on_exception() {
        let rt = Runtime::builder().workers(1).build();
        let sem = Semaphore::new(1);
        let r = rt.block_on_result(sem.with(sys_throw::<()>("x")));
        assert!(r.is_err());
        assert_eq!(sem.permits(), 1);
        rt.shutdown();
    }
}
