//! A readers–writer lock for monadic threads — another §4.7 scheduler
//! extension: reader/writer queues of parked traces dispatched on release.
//!
//! Writer-preferring: once a writer is waiting, new readers park behind
//! it, so writers cannot starve.

use std::collections::VecDeque;
use std::fmt;
use std::sync::Arc;

use crate::reactor::Unparker;
use crate::syscall::{sys_finally, sys_nbio, sys_park};
use crate::thread::{loop_m, Loop, ThreadM};

struct RwState {
    readers: usize,
    writer: bool,
    waiting_writers: usize,
    read_waiters: VecDeque<Unparker>,
    write_waiters: VecDeque<Unparker>,
}

struct RwInner {
    st: parking_lot::Mutex<RwState>,
}

/// A shared/exclusive lock whose acquisition parks the monadic thread.
///
/// # Examples
///
/// ```
/// use eveth_core::{do_m, runtime::Runtime, sync::RwLock, syscall::*, ThreadM};
///
/// let rt = Runtime::builder().workers(2).build();
/// let lock = RwLock::new();
/// let r = rt.block_on(do_m! {
///     lock.read();
///     let v <- sys_nbio(|| 5);
///     lock.unlock_read();
///     ThreadM::pure(v)
/// });
/// assert_eq!(r, 5);
/// rt.shutdown();
/// ```
#[derive(Clone)]
pub struct RwLock {
    inner: Arc<RwInner>,
}

impl RwLock {
    /// Creates an unlocked lock.
    pub fn new() -> Self {
        RwLock {
            inner: Arc::new(RwInner {
                st: parking_lot::Mutex::new(RwState {
                    readers: 0,
                    writer: false,
                    waiting_writers: 0,
                    read_waiters: VecDeque::new(),
                    write_waiters: VecDeque::new(),
                }),
            }),
        }
    }

    /// Current reader count (diagnostics).
    pub fn readers(&self) -> usize {
        self.inner.st.lock().readers
    }

    /// True while a writer holds the lock.
    pub fn is_write_locked(&self) -> bool {
        self.inner.st.lock().writer
    }

    /// Acquires shared access, parking while a writer holds or awaits the
    /// lock.
    pub fn read(&self) -> ThreadM<()> {
        let inner = Arc::clone(&self.inner);
        loop_m((), move |()| {
            let try_inner = Arc::clone(&inner);
            let park_inner = Arc::clone(&inner);
            sys_nbio(move || {
                let mut st = try_inner.st.lock();
                if !st.writer && st.waiting_writers == 0 {
                    st.readers += 1;
                    true
                } else {
                    false
                }
            })
            .bind(move |got| {
                if got {
                    ThreadM::pure(Loop::Break(()))
                } else {
                    sys_park(move |u| {
                        let mut st = park_inner.st.lock();
                        if !st.writer && st.waiting_writers == 0 {
                            drop(st);
                            u.unpark();
                        } else {
                            st.read_waiters.push_back(u);
                        }
                    })
                    .map(|_| Loop::Continue(()))
                }
            })
        })
    }

    /// Releases shared access.
    pub fn unlock_read(&self) -> ThreadM<()> {
        let inner = Arc::clone(&self.inner);
        sys_nbio(move || {
            let mut st = inner.st.lock();
            st.readers = st.readers.saturating_sub(1);
            if st.readers == 0 {
                Self::wake_next(&mut st);
            }
        })
    }

    /// Acquires exclusive access, parking while anyone holds the lock.
    pub fn write(&self) -> ThreadM<()> {
        let inner = Arc::clone(&self.inner);
        let announce = Arc::clone(&self.inner);
        // Register writer intent once so readers queue behind us.
        sys_nbio(move || {
            announce.st.lock().waiting_writers += 1;
        })
        .bind(move |_| {
            loop_m((), move |()| {
                let try_inner = Arc::clone(&inner);
                let park_inner = Arc::clone(&inner);
                sys_nbio(move || {
                    let mut st = try_inner.st.lock();
                    if !st.writer && st.readers == 0 {
                        st.writer = true;
                        st.waiting_writers -= 1;
                        true
                    } else {
                        false
                    }
                })
                .bind(move |got| {
                    if got {
                        ThreadM::pure(Loop::Break(()))
                    } else {
                        sys_park(move |u| {
                            let mut st = park_inner.st.lock();
                            if !st.writer && st.readers == 0 {
                                drop(st);
                                u.unpark();
                            } else {
                                st.write_waiters.push_back(u);
                            }
                        })
                        .map(|_| Loop::Continue(()))
                    }
                })
            })
        })
    }

    /// Releases exclusive access.
    pub fn unlock_write(&self) -> ThreadM<()> {
        let inner = Arc::clone(&self.inner);
        sys_nbio(move || {
            let mut st = inner.st.lock();
            st.writer = false;
            Self::wake_next(&mut st);
        })
    }

    fn wake_next(st: &mut RwState) {
        // Prefer a waiting writer; otherwise release the whole read herd.
        while let Some(u) = st.write_waiters.pop_front() {
            if u.unpark() {
                return;
            }
        }
        for u in st.read_waiters.drain(..) {
            u.unpark();
        }
    }

    /// Runs `body` holding shared access, releasing afterwards even on
    /// exceptions.
    pub fn with_read<A: Send + 'static>(&self, body: ThreadM<A>) -> ThreadM<A> {
        let unlock = self.clone();
        self.read()
            .bind(move |_| sys_finally(body, move || unlock.unlock_read()))
    }

    /// Runs `body` holding exclusive access, releasing afterwards even on
    /// exceptions.
    pub fn with_write<A: Send + 'static>(&self, body: ThreadM<A>) -> ThreadM<A> {
        let unlock = self.clone();
        self.write()
            .bind(move |_| sys_finally(body, move || unlock.unlock_write()))
    }
}

impl Default for RwLock {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for RwLock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let st = self.inner.st.lock();
        write!(
            f,
            "RwLock(readers={}, writer={}, waiting_writers={})",
            st.readers, st.writer, st.waiting_writers
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::Runtime;
    use crate::syscall::{sys_sleep, sys_throw, sys_yield};
    use std::sync::atomic::{AtomicI32, AtomicU64, Ordering};

    #[test]
    fn readers_share_writers_exclude() {
        let rt = Runtime::builder().workers(4).build();
        let lock = RwLock::new();
        let concurrency = Arc::new(AtomicI32::new(0));
        let max_readers = Arc::new(AtomicI32::new(0));
        let writes = Arc::new(AtomicU64::new(0));
        const READERS: u64 = 16;
        const WRITERS: u64 = 4;
        let done = Arc::new(AtomicU64::new(0));

        for _ in 0..READERS {
            let lock = lock.clone();
            let concurrency = Arc::clone(&concurrency);
            let max_readers = Arc::clone(&max_readers);
            let done = Arc::clone(&done);
            rt.spawn(crate::do_m! {
                lock.with_read(crate::do_m! {
                    crate::syscall::sys_nbio({
                        let c = Arc::clone(&concurrency);
                        let m = Arc::clone(&max_readers);
                        move || {
                            let v = c.fetch_add(1, Ordering::SeqCst) + 1;
                            assert!(v > 0, "writer present during read");
                            m.fetch_max(v, Ordering::SeqCst);
                        }
                    });
                    sys_yield();
                    crate::syscall::sys_nbio(move || { concurrency.fetch_sub(1, Ordering::SeqCst); })
                });
                crate::syscall::sys_nbio(move || { done.fetch_add(1, Ordering::SeqCst); })
            });
        }
        for _ in 0..WRITERS {
            let lock = lock.clone();
            let concurrency = Arc::clone(&concurrency);
            let writes = Arc::clone(&writes);
            let done = Arc::clone(&done);
            rt.spawn(crate::do_m! {
                lock.with_write(crate::do_m! {
                    crate::syscall::sys_nbio({
                        let c = Arc::clone(&concurrency);
                        move || {
                            // Exclusive: no readers, no other writers.
                            assert_eq!(c.fetch_sub(1000, Ordering::SeqCst), 0);
                        }
                    });
                    sys_yield();
                    crate::syscall::sys_nbio(move || {
                        concurrency.fetch_add(1000, Ordering::SeqCst);
                        writes.fetch_add(1, Ordering::SeqCst);
                    })
                });
                crate::syscall::sys_nbio(move || { done.fetch_add(1, Ordering::SeqCst); })
            });
        }
        // Wait for completion.
        let watch = Arc::clone(&done);
        rt.block_on(crate::loop_m((), move |()| {
            let watch = Arc::clone(&watch);
            crate::do_m! {
                sys_sleep(crate::time::MILLIS);
                let d <- crate::syscall::sys_nbio(move || watch.load(Ordering::SeqCst));
                crate::ThreadM::pure(if d == READERS + WRITERS {
                    crate::Loop::Break(())
                } else {
                    crate::Loop::Continue(())
                })
            }
        }));
        assert_eq!(writes.load(Ordering::SeqCst), WRITERS);
        assert!(!lock.is_write_locked());
        assert_eq!(lock.readers(), 0);
        rt.shutdown();
    }

    #[test]
    fn with_write_releases_on_exception() {
        let rt = Runtime::builder().workers(1).build();
        let lock = RwLock::new();
        let r = rt.block_on_result(lock.with_write(sys_throw::<()>("bad")));
        assert!(r.is_err());
        assert!(!lock.is_write_locked());
        rt.shutdown();
    }

    #[test]
    fn debug_shows_counts() {
        let lock = RwLock::new();
        assert!(format!("{lock:?}").contains("readers=0"));
    }
}
