//! FIFO channels between monadic threads.
//!
//! [`Chan`] is the unbounded channel of Concurrent Haskell (the paper's task
//! queues between event loops are exactly this shape); [`SyncChan`] adds a
//! capacity bound with back-pressure on writers.
//!
//! Both are *event-native*: the primitive operations are events
//! ([`Chan::read_evt`], [`SyncChan::write_evt`], …) that compose under
//! [`choose`](crate::event::choose), and the blocking methods are defined
//! as `sync(..._evt())` — the thread view and the event view of the same
//! synchronization. Waiter queues are cancellable ([`WaitQ`]), so a losing
//! `choose` branch withdraws its registration instead of leaving a dead
//! entry, and a wakeup consumed by a thread that committed elsewhere is
//! passed on to the next waiter (the baton of
//! [`Registration::new`](crate::event::Registration::new)).

use std::collections::VecDeque;
use std::fmt;
use std::sync::Arc;

use crate::check;
use crate::engine::WaitKind;
use crate::event::{branch_waiter, sync, Branch, Event, Registration};
use crate::reactor::WaitQ;
use crate::thread::ThreadM;

struct ChState<T> {
    queue: VecDeque<T>,
    takers: WaitQ,
    rid: u64,
}

impl<T> ChState<T> {
    fn op(&self, kind: check::OpKind) {
        check::op(
            self.rid,
            check::ResKind::Chan,
            kind,
            [self.queue.len() as u64, 0],
        );
    }
}

/// An unbounded multi-producer multi-consumer FIFO channel; `read` blocks
/// the monadic thread while empty, `write` never blocks.
///
/// # Examples
///
/// ```
/// use eveth_core::{do_m, runtime::Runtime, sync::Chan, syscall::*, ThreadM};
///
/// let rt = Runtime::builder().workers(2).build();
/// let ch = Chan::new();
/// let tx = ch.clone();
/// let v = rt.block_on(do_m! {
///     sys_fork(tx.write("ping"));
///     ch.read()
/// });
/// assert_eq!(v, "ping");
/// rt.shutdown();
/// ```
pub struct Chan<T> {
    st: Arc<parking_lot::Mutex<ChState<T>>>,
}

impl<T> Clone for Chan<T> {
    fn clone(&self) -> Self {
        Chan {
            st: Arc::clone(&self.st),
        }
    }
}

impl<T: Send + 'static> Chan<T> {
    /// Creates an empty channel.
    pub fn new() -> Self {
        Chan {
            st: Arc::new(parking_lot::Mutex::new(ChState {
                queue: VecDeque::new(),
                takers: WaitQ::new(),
                rid: check::new_rid(),
            })),
        }
    }

    /// Enqueues an item without blocking (callable from any context,
    /// including device drivers and plain OS threads).
    pub fn push_now(&self, v: T) {
        let mut st = self.st.lock();
        st.queue.push_back(v);
        st.op(check::OpKind::Publish);
        let _scope = check::wake_scope(st.rid);
        st.takers.wake_one();
    }

    /// Dequeues without blocking, if an item is available.
    pub fn try_read_now(&self) -> Option<T> {
        let mut st = self.st.lock();
        let v = st.queue.pop_front();
        if v.is_some() {
            st.op(check::OpKind::Consume);
        }
        v
    }

    /// Number of queued items.
    pub fn len(&self) -> usize {
        self.st.lock().queue.len()
    }

    /// True if no items are queued.
    pub fn is_empty(&self) -> bool {
        self.st.lock().queue.is_empty()
    }

    /// Live read registrations currently parked on this channel (for tests
    /// asserting that losing `choose` branches deregister).
    pub fn taker_count(&self) -> usize {
        self.st.lock().takers.len()
    }

    /// The receive event: ready when an item can be dequeued; commits by
    /// dequeuing it.
    pub fn read_evt(&self) -> Event<T> {
        let poll_st = Arc::clone(&self.st);
        let reg_st = Arc::clone(&self.st);
        Event::from_fn(move |_t0, out| {
            out.push(Branch::new(
                WaitKind::Lock,
                move |_now| {
                    let mut st = poll_st.lock();
                    let v = st.queue.pop_front();
                    if v.is_some() {
                        st.op(check::OpKind::Consume);
                    }
                    v
                },
                move |u| {
                    let waiter = branch_waiter(u, WaitKind::Lock);
                    let mut st = reg_st.lock();
                    if !st.queue.is_empty() {
                        let rid = st.rid;
                        drop(st);
                        let _scope = check::wake_scope(rid);
                        waiter.wake();
                        return Registration::none();
                    }
                    st.op(check::OpKind::BlockTake);
                    let slot = st.takers.push(waiter);
                    drop(st);
                    let baton_st = Arc::clone(&reg_st);
                    Registration::new(
                        move || slot.take().is_some(),
                        move || {
                            // Our wake was consumed but we committed another
                            // branch: hand it to the next reader if an item
                            // is still there.
                            let mut st = baton_st.lock();
                            if !st.queue.is_empty() {
                                st.op(check::OpKind::Baton);
                                let _scope = check::wake_scope(st.rid);
                                st.takers.wake_one();
                            }
                        },
                    )
                },
            ));
        })
    }

    /// The send event: always ready (the channel is unbounded); commits by
    /// enqueuing `v` and waking one reader.
    pub fn write_evt(&self, v: T) -> Event<()> {
        let this = self.clone();
        let mut slot = Some(v);
        Event::from_fn(move |_t0, out| {
            out.push(Branch::new(
                WaitKind::Lock,
                move |_now| slot.take().map(|v| this.push_now(v)),
                |_u| Registration::none(),
            ));
        })
    }

    /// Monadic read: parks while the channel is empty —
    /// `sync(self.read_evt())`.
    pub fn read(&self) -> ThreadM<T> {
        sync(self.read_evt())
    }

    /// Monadic write: enqueue and wake one reader —
    /// `sync(self.write_evt(v))`.
    pub fn write(&self, v: T) -> ThreadM<()> {
        sync(self.write_evt(v))
    }
}

impl<T: Send + 'static> Default for Chan<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> fmt::Debug for Chan<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let st = self.st.lock();
        write!(
            f,
            "Chan(len={}, takers={})",
            st.queue.len(),
            st.takers.len()
        )
    }
}

struct SyncChState<T> {
    queue: VecDeque<T>,
    cap: usize,
    takers: WaitQ,
    putters: WaitQ,
    rid: u64,
}

impl<T> SyncChState<T> {
    fn op(&self, kind: check::OpKind) {
        check::op(
            self.rid,
            check::ResKind::SyncChan,
            kind,
            [
                self.queue.len() as u64,
                (self.cap - self.queue.len()) as u64,
            ],
        );
    }
}

/// A bounded FIFO channel: `write` parks while full, providing
/// back-pressure; `read` parks while empty.
pub struct SyncChan<T> {
    st: Arc<parking_lot::Mutex<SyncChState<T>>>,
}

impl<T> Clone for SyncChan<T> {
    fn clone(&self) -> Self {
        SyncChan {
            st: Arc::clone(&self.st),
        }
    }
}

impl<T: Send + 'static> SyncChan<T> {
    /// Creates a channel holding at most `cap` items.
    ///
    /// # Panics
    ///
    /// Panics if `cap` is zero (rendezvous channels are not supported).
    pub fn new(cap: usize) -> Self {
        assert!(cap > 0, "SyncChan capacity must be non-zero");
        SyncChan {
            st: Arc::new(parking_lot::Mutex::new(SyncChState {
                queue: VecDeque::with_capacity(cap),
                cap,
                takers: WaitQ::new(),
                putters: WaitQ::new(),
                rid: check::new_rid(),
            })),
        }
    }

    /// Number of queued items.
    pub fn len(&self) -> usize {
        self.st.lock().queue.len()
    }

    /// True if no items are queued.
    pub fn is_empty(&self) -> bool {
        self.st.lock().queue.is_empty()
    }

    /// Live read/write registrations parked on this channel, as
    /// `(takers, putters)` (for tests asserting loser cancellation).
    pub fn waiter_counts(&self) -> (usize, usize) {
        let st = self.st.lock();
        (st.takers.len(), st.putters.len())
    }

    /// The send event: ready while the channel has a free slot; commits by
    /// enqueuing `v` and waking one reader.
    pub fn write_evt(&self, v: T) -> Event<()> {
        let poll_st = Arc::clone(&self.st);
        let reg_st = Arc::clone(&self.st);
        let mut slot = Some(v);
        Event::from_fn(move |_t0, out| {
            out.push(Branch::new(
                WaitKind::Lock,
                move |_now| {
                    let mut st = poll_st.lock();
                    if st.queue.len() < st.cap {
                        if let Some(v) = slot.take() {
                            st.queue.push_back(v);
                            st.op(check::OpKind::Publish);
                            let _scope = check::wake_scope(st.rid);
                            st.takers.wake_one();
                            return Some(());
                        }
                    }
                    None
                },
                move |u| {
                    let waiter = branch_waiter(u, WaitKind::Lock);
                    let mut st = reg_st.lock();
                    if st.queue.len() < st.cap {
                        let rid = st.rid;
                        drop(st);
                        let _scope = check::wake_scope(rid);
                        waiter.wake();
                        return Registration::none();
                    }
                    st.op(check::OpKind::BlockPut);
                    let slot_reg = st.putters.push(waiter);
                    drop(st);
                    let baton_st = Arc::clone(&reg_st);
                    Registration::new(
                        move || slot_reg.take().is_some(),
                        move || {
                            let mut st = baton_st.lock();
                            if st.queue.len() < st.cap {
                                st.op(check::OpKind::Baton);
                                let _scope = check::wake_scope(st.rid);
                                st.putters.wake_one();
                            }
                        },
                    )
                },
            ));
        })
    }

    /// The receive event: ready when an item can be dequeued; commits by
    /// dequeuing it and waking one writer.
    pub fn read_evt(&self) -> Event<T> {
        let poll_st = Arc::clone(&self.st);
        let reg_st = Arc::clone(&self.st);
        Event::from_fn(move |_t0, out| {
            out.push(Branch::new(
                WaitKind::Lock,
                move |_now| {
                    let mut st = poll_st.lock();
                    let v = st.queue.pop_front();
                    if v.is_some() {
                        st.op(check::OpKind::Consume);
                        let _scope = check::wake_scope(st.rid);
                        st.putters.wake_one();
                    }
                    v
                },
                move |u| {
                    let waiter = branch_waiter(u, WaitKind::Lock);
                    let mut st = reg_st.lock();
                    if !st.queue.is_empty() {
                        let rid = st.rid;
                        drop(st);
                        let _scope = check::wake_scope(rid);
                        waiter.wake();
                        return Registration::none();
                    }
                    st.op(check::OpKind::BlockTake);
                    let slot = st.takers.push(waiter);
                    drop(st);
                    let baton_st = Arc::clone(&reg_st);
                    Registration::new(
                        move || slot.take().is_some(),
                        move || {
                            let mut st = baton_st.lock();
                            if !st.queue.is_empty() {
                                st.op(check::OpKind::Baton);
                                let _scope = check::wake_scope(st.rid);
                                st.takers.wake_one();
                            }
                        },
                    )
                },
            ));
        })
    }

    /// Monadic write: parks while the channel is full —
    /// `sync(self.write_evt(v))`.
    pub fn write(&self, v: T) -> ThreadM<()> {
        sync(self.write_evt(v))
    }

    /// Monadic read: parks while the channel is empty —
    /// `sync(self.read_evt())`.
    pub fn read(&self) -> ThreadM<T> {
        sync(self.read_evt())
    }
}

impl<T> fmt::Debug for SyncChan<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let st = self.st.lock();
        write!(f, "SyncChan(len={}/{})", st.queue.len(), st.cap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::Runtime;
    use crate::syscall::sys_fork;

    #[test]
    fn chan_fifo_order() {
        let rt = Runtime::builder().workers(1).build();
        let ch = Chan::new();
        let tx = ch.clone();
        let got = rt.block_on(crate::do_m! {
            tx.write(1);
            tx.write(2);
            tx.write(3);
            let a <- ch.read();
            let b <- ch.read();
            let c <- ch.read();
            crate::ThreadM::pure(vec![a, b, c])
        });
        assert_eq!(got, vec![1, 2, 3]);
        rt.shutdown();
    }

    #[test]
    fn chan_read_blocks_until_write() {
        let rt = Runtime::builder().workers(2).build();
        let ch: Chan<&str> = Chan::new();
        let tx = ch.clone();
        let got = rt.block_on(crate::do_m! {
            sys_fork(crate::do_m! {
                crate::syscall::sys_sleep(5 * crate::time::MILLIS);
                tx.write("late")
            });
            ch.read()
        });
        assert_eq!(got, "late");
        rt.shutdown();
    }

    #[test]
    fn chan_push_now_from_os_thread() {
        let rt = Runtime::builder().workers(1).build();
        let ch: Chan<u8> = Chan::new();
        let tx = ch.clone();
        let h = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(5));
            tx.push_now(42);
        });
        assert_eq!(rt.block_on(ch.read()), 42);
        h.join().unwrap();
        rt.shutdown();
    }

    #[test]
    fn sync_chan_backpressure() {
        let rt = Runtime::builder().workers(2).build();
        let ch: SyncChan<u32> = SyncChan::new(2);
        // Producer of 100 items through a 2-slot channel.
        let tx = ch.clone();
        rt.spawn(crate::for_each_m(0..100u32, move |i| tx.write(i)));
        let sum = rt.block_on(crate::loop_m((0u32, 0u64), move |(n, sum)| {
            if n == 100 {
                return crate::ThreadM::pure(crate::Loop::Break(sum));
            }
            ch.read()
                .map(move |v| crate::Loop::Continue((n + 1, sum + v as u64)))
        }));
        assert_eq!(sum, 99 * 100 / 2);
        rt.shutdown();
    }

    #[test]
    fn mpmc_all_items_delivered_once() {
        let rt = Runtime::builder().workers(4).build();
        let ch: Chan<u64> = Chan::new();
        let out: Chan<u64> = Chan::new();
        const ITEMS: u64 = 400;
        for p in 0..4u64 {
            let tx = ch.clone();
            rt.spawn(crate::for_each_m(0..ITEMS / 4, move |i| {
                tx.write(p * (ITEMS / 4) + i)
            }));
        }
        for _ in 0..4 {
            let rx = ch.clone();
            let out = out.clone();
            rt.spawn(crate::forever_m(move || {
                let out = out.clone();
                rx.read().bind(move |v| out.write(v))
            }));
        }
        let total = rt.block_on(crate::loop_m((0u64, 0u64), move |(n, sum)| {
            if n == ITEMS {
                return crate::ThreadM::pure(crate::Loop::Break(sum));
            }
            out.read()
                .map(move |v| crate::Loop::Continue((n + 1, sum + v)))
        }));
        assert_eq!(total, ITEMS * (ITEMS - 1) / 2);
        rt.shutdown();
    }

    #[test]
    fn debug_nonempty() {
        let ch: Chan<u8> = Chan::new();
        assert!(format!("{ch:?}").contains("Chan"));
        let sc: SyncChan<u8> = SyncChan::new(1);
        assert!(format!("{sc:?}").contains("SyncChan"));
    }
}
