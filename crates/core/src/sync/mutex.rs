//! A mutex for monadic threads — the paper's `sys_mutex` extension (§4.7):
//! "a mutex is represented as a memory reference that points to a pair
//! `(l, q)` where `l` indicates whether the mutex is locked, and `q` is a
//! linked list of thread traces blocking on this mutex."

use std::collections::VecDeque;
use std::fmt;
use std::sync::Arc;

use crate::reactor::Unparker;
use crate::syscall::{sys_finally, sys_nbio, sys_park};
use crate::thread::{loop_m, Loop, ThreadM};

struct MxState {
    locked: bool,
    waiters: VecDeque<Unparker>,
}

struct MutexInner {
    st: parking_lot::Mutex<MxState>,
}

/// A mutual-exclusion lock whose `lock` blocks the *monadic* thread, never
/// the OS worker underneath it.
///
/// Lock acquisition is "barging" (an unlocker wakes one waiter, which
/// re-competes with any newcomer); this favors throughput over strict FIFO
/// fairness, like most production mutexes.
///
/// # Examples
///
/// ```
/// use eveth_core::{do_m, runtime::Runtime, sync::Mutex, syscall::*, ThreadM};
///
/// let rt = Runtime::builder().workers(2).build();
/// let m = Mutex::new();
/// let n = rt.block_on(do_m! {
///     m.lock();
///     let v <- sys_nbio(|| 5);
///     m.unlock();
///     ThreadM::pure(v)
/// });
/// assert_eq!(n, 5);
/// rt.shutdown();
/// ```
#[derive(Clone)]
pub struct Mutex {
    inner: Arc<MutexInner>,
}

impl Mutex {
    /// Creates an unlocked mutex.
    pub fn new() -> Self {
        Mutex {
            inner: Arc::new(MutexInner {
                st: parking_lot::Mutex::new(MxState {
                    locked: false,
                    waiters: VecDeque::new(),
                }),
            }),
        }
    }

    /// Attempts to take the lock without blocking. Mainly for tests and
    /// non-monadic integration.
    pub fn try_lock_now(&self) -> bool {
        let mut st = self.inner.st.lock();
        if st.locked {
            false
        } else {
            st.locked = true;
            true
        }
    }

    /// True if some thread currently holds the lock.
    pub fn is_locked(&self) -> bool {
        self.inner.st.lock().locked
    }

    /// Acquires the lock, parking the monadic thread while it is held
    /// elsewhere.
    pub fn lock(&self) -> ThreadM<()> {
        let inner = Arc::clone(&self.inner);
        loop_m((), move |()| {
            let try_inner = Arc::clone(&inner);
            let park_inner = Arc::clone(&inner);
            sys_nbio(move || {
                let mut st = try_inner.st.lock();
                if st.locked {
                    false
                } else {
                    st.locked = true;
                    true
                }
            })
            .bind(move |acquired| {
                if acquired {
                    ThreadM::pure(Loop::Break(()))
                } else {
                    sys_park(move |u| {
                        let mut st = park_inner.st.lock();
                        if st.locked {
                            st.waiters.push_back(u);
                        } else {
                            // Unlocked between the failed try and the park:
                            // wake immediately and re-compete.
                            drop(st);
                            u.unpark();
                        }
                    })
                    .map(|_| Loop::Continue(()))
                }
            })
        })
    }

    /// Releases the lock and wakes one waiter, if any.
    ///
    /// Unlocking an unlocked mutex is a no-op (matching the permissive
    /// semantics of the paper's scheduler extension).
    pub fn unlock(&self) -> ThreadM<()> {
        let inner = Arc::clone(&self.inner);
        sys_nbio(move || {
            let mut st = inner.st.lock();
            st.locked = false;
            while let Some(u) = st.waiters.pop_front() {
                if u.unpark() {
                    break;
                }
            }
        })
    }

    /// Runs `body` with the lock held, releasing it afterwards even if
    /// `body` throws.
    pub fn with<A: Send + 'static>(&self, body: ThreadM<A>) -> ThreadM<A> {
        let unlock_handle = self.clone();
        self.lock()
            .bind(move |_| sys_finally(body, move || unlock_handle.unlock()))
    }

    /// Number of threads parked on this mutex.
    pub fn waiters(&self) -> usize {
        self.inner.st.lock().waiters.len()
    }
}

impl Default for Mutex {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for Mutex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Mutex(locked={}, waiters={})",
            self.is_locked(),
            self.waiters()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::Runtime;
    use crate::syscall::{sys_throw, sys_yield};
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn try_lock_now_excludes() {
        let m = Mutex::new();
        assert!(m.try_lock_now());
        assert!(!m.try_lock_now());
        assert!(m.is_locked());
    }

    #[test]
    fn critical_section_is_exclusive_under_smp() {
        let rt = Runtime::builder().workers(4).build();
        let m = Mutex::new();
        let counter = Arc::new(AtomicU64::new(0));
        let in_section = Arc::new(AtomicU64::new(0));
        const THREADS: u64 = 64;
        const ROUNDS: u64 = 20;

        for _ in 0..THREADS {
            let m = m.clone();
            let counter = counter.clone();
            let in_section = in_section.clone();
            rt.spawn(crate::for_each_m(0..ROUNDS, move |_| {
                let m2 = m.clone();
                let counter = counter.clone();
                let in_section = in_section.clone();
                m.with(crate::do_m! {
                    sys_nbio({
                        let s = in_section.clone();
                        move || assert_eq!(s.fetch_add(1, Ordering::SeqCst), 0, "mutual exclusion violated")
                    });
                    sys_yield();
                    sys_nbio(move || {
                        counter.fetch_add(1, Ordering::SeqCst);
                        in_section.fetch_sub(1, Ordering::SeqCst);
                    })
                })
                .map(move |_| {
                    let _ = &m2;
                })
            }));
        }
        // Wait for all increments.
        let c2 = counter.clone();
        rt.block_on(crate::loop_m((), move |()| {
            let c = c2.clone();
            crate::do_m! {
                sys_yield();
                let done <- sys_nbio(move || c.load(Ordering::SeqCst) == THREADS * ROUNDS);
                crate::ThreadM::pure(if done { crate::Loop::Break(()) } else { crate::Loop::Continue(()) })
            }
        }));
        assert_eq!(counter.load(Ordering::SeqCst), THREADS * ROUNDS);
        assert!(!m.is_locked());
        rt.shutdown();
    }

    #[test]
    fn with_unlocks_on_exception() {
        let rt = Runtime::builder().workers(1).build();
        let m = Mutex::new();
        let r = rt.block_on_result(m.with(sys_throw::<()>("inside")));
        assert_eq!(r.unwrap_err().message(), "inside");
        assert!(!m.is_locked(), "mutex must be released after a throw");
        rt.shutdown();
    }

    #[test]
    fn unlock_without_lock_is_noop() {
        let rt = Runtime::builder().workers(1).build();
        let m = Mutex::new();
        rt.block_on(m.unlock());
        assert!(!m.is_locked());
        rt.shutdown();
    }

    #[test]
    fn debug_shows_state() {
        let m = Mutex::new();
        assert!(format!("{m:?}").contains("locked=false"));
    }
}
