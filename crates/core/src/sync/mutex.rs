//! A mutex for monadic threads — the paper's `sys_mutex` extension (§4.7):
//! "a mutex is represented as a memory reference that points to a pair
//! `(l, q)` where `l` indicates whether the mutex is locked, and `q` is a
//! linked list of thread traces blocking on this mutex."

use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::check;
use crate::reactor::Unparker;
use crate::syscall::{sys_finally, sys_nbio, sys_park, sys_time};
use crate::thread::{loop_m, Loop, ThreadM};
use crate::time::Nanos;

struct MxState {
    locked: bool,
    waiters: VecDeque<Unparker>,
}

struct MutexInner {
    st: parking_lot::Mutex<MxState>,
    /// Check-probe resource id ([`crate::check`]).
    rid: u64,
    /// Nanoseconds (runtime time: wall or virtual) threads spent waiting
    /// for this mutex while it was held elsewhere.
    contended_ns: AtomicU64,
    /// Lock acquisitions that had to wait at least once.
    contentions: AtomicU64,
}

impl MutexInner {
    /// One non-blocking acquisition attempt.
    fn try_acquire(&self) -> bool {
        let mut st = self.st.lock();
        if st.locked {
            false
        } else {
            st.locked = true;
            check::op(
                self.rid,
                check::ResKind::Mutex,
                check::OpKind::Acquire,
                [0, 0],
            );
            true
        }
    }

    /// Parks `u` on the wait queue — unless the lock was released between
    /// the failed try and the park, in which case wake immediately and
    /// re-compete.
    fn enqueue_waiter(&self, u: Unparker) {
        let mut st = self.st.lock();
        if st.locked {
            check::op(
                self.rid,
                check::ResKind::Mutex,
                check::OpKind::BlockTake,
                [0, 0],
            );
            st.waiters.push_back(u);
        } else {
            drop(st);
            // Raced with an unlock: wake ourselves immediately and
            // re-compete. Attribute the self-wake to this mutex.
            let _scope = check::wake_scope(self.rid);
            u.unpark();
        }
    }
}

/// A mutual-exclusion lock whose `lock` blocks the *monadic* thread, never
/// the OS worker underneath it.
///
/// Lock acquisition is "barging" (an unlocker wakes one waiter, which
/// re-competes with any newcomer); this favors throughput over strict FIFO
/// fairness, like most production mutexes.
///
/// # Examples
///
/// ```
/// use eveth_core::{do_m, runtime::Runtime, sync::Mutex, syscall::*, ThreadM};
///
/// let rt = Runtime::builder().workers(2).build();
/// let m = Mutex::new();
/// let n = rt.block_on(do_m! {
///     m.lock();
///     let v <- sys_nbio(|| 5);
///     m.unlock();
///     ThreadM::pure(v)
/// });
/// assert_eq!(n, 5);
/// rt.shutdown();
/// ```
#[derive(Clone)]
pub struct Mutex {
    inner: Arc<MutexInner>,
}

impl Mutex {
    /// Creates an unlocked mutex.
    pub fn new() -> Self {
        Mutex {
            inner: Arc::new(MutexInner {
                st: parking_lot::Mutex::new(MxState {
                    locked: false,
                    waiters: VecDeque::new(),
                }),
                rid: check::new_rid(),
                contended_ns: AtomicU64::new(0),
                contentions: AtomicU64::new(0),
            }),
        }
    }

    /// Attempts to take the lock without blocking. Mainly for tests and
    /// non-monadic integration.
    pub fn try_lock_now(&self) -> bool {
        let mut st = self.inner.st.lock();
        if st.locked {
            false
        } else {
            st.locked = true;
            check::op(
                self.inner.rid,
                check::ResKind::Mutex,
                check::OpKind::Acquire,
                [0, 0],
            );
            true
        }
    }

    /// True if some thread currently holds the lock.
    pub fn is_locked(&self) -> bool {
        self.inner.st.lock().locked
    }

    /// Acquires the lock, parking the monadic thread while it is held
    /// elsewhere. Contended acquisitions measure the time from the first
    /// failed attempt to the successful one and add it to this mutex's
    /// wait bookkeeping ([`Mutex::contended_ns`]) — which is how the KV
    /// store's shard locks report how much virtual time contention cost.
    pub fn lock(&self) -> ThreadM<()> {
        // Uncontended fast path: one non-blocking try, no loop machinery.
        // The emitted trace ([Nbio] on success, [Nbio, GetTime, Park, …]
        // under contention) matches the original loop-based formulation
        // node for node, so schedules — and virtual time — are unchanged;
        // the fast path only skips the allocations of the loop state.
        let inner = Arc::clone(&self.inner);
        let slow = Arc::clone(&self.inner);
        sys_nbio(move || inner.try_acquire()).bind(move |acquired| {
            if acquired {
                ThreadM::pure(())
            } else {
                Mutex::lock_contended(slow)
            }
        })
    }

    /// The parking slow path: stamp the wait start, count the contention,
    /// park, then retry until acquired, accumulating the measured wait
    /// into [`Mutex::contended_ns`].
    fn lock_contended(inner: Arc<MutexInner>) -> ThreadM<()> {
        sys_time().bind(move |t0| {
            inner.contentions.fetch_add(1, Ordering::Relaxed);
            let park_inner = Arc::clone(&inner);
            let loop_inner = Arc::clone(&inner);
            sys_park(move |u| park_inner.enqueue_waiter(u)).bind(move |_| {
                loop_m(t0, move |t0: Nanos| {
                    let try_inner = Arc::clone(&loop_inner);
                    let done_inner = Arc::clone(&loop_inner);
                    let park_inner = Arc::clone(&loop_inner);
                    sys_nbio(move || try_inner.try_acquire()).bind(move |acquired| {
                        if acquired {
                            sys_time().map(move |t1| {
                                done_inner
                                    .contended_ns
                                    .fetch_add(t1.saturating_sub(t0), Ordering::Relaxed);
                                Loop::Break(())
                            })
                        } else {
                            sys_park(move |u| park_inner.enqueue_waiter(u))
                                .map(move |_| Loop::Continue(t0))
                        }
                    })
                })
            })
        })
    }

    /// Releases the lock and wakes one waiter, if any.
    ///
    /// Unlocking an unlocked mutex is a no-op (matching the permissive
    /// semantics of the paper's scheduler extension).
    pub fn unlock(&self) -> ThreadM<()> {
        let inner = Arc::clone(&self.inner);
        sys_nbio(move || {
            let mut st = inner.st.lock();
            st.locked = false;
            check::op(
                inner.rid,
                check::ResKind::Mutex,
                check::OpKind::Release,
                [1, 0],
            );
            let _scope = check::wake_scope(inner.rid);
            while let Some(u) = st.waiters.pop_front() {
                if u.unpark() {
                    break;
                }
            }
        })
    }

    /// Runs `body` with the lock held, releasing it afterwards even if
    /// `body` throws.
    pub fn with<A: Send + 'static>(&self, body: ThreadM<A>) -> ThreadM<A> {
        let unlock_handle = self.clone();
        self.lock()
            .bind(move |_| sys_finally(body, move || unlock_handle.unlock()))
    }

    /// Runs an *infallible, non-blocking* closure with the lock held:
    /// lock → one `sys_nbio` step → unlock. This is [`Mutex::with`] minus
    /// the exception-unwind scaffolding (`sys_finally` costs a handler
    /// registration per call), for bodies that cannot throw — the KV
    /// store's shard critical sections. The closure must not build
    /// monadic steps of its own; anything that can throw or park belongs
    /// in [`Mutex::with`].
    pub fn with_nbio<A, F>(&self, f: F) -> ThreadM<A>
    where
        A: Send + 'static,
        F: FnOnce() -> A + Send + 'static,
    {
        let unlock_handle = self.clone();
        self.lock()
            .bind(move |_| sys_nbio(f).bind(move |a| unlock_handle.unlock().map(move |_| a)))
    }

    /// Number of threads parked on this mutex.
    pub fn waiters(&self) -> usize {
        self.inner.st.lock().waiters.len()
    }

    /// Total nanoseconds (runtime time: wall-clock under [`crate::runtime::Runtime`],
    /// virtual under simulation) threads spent waiting to acquire this
    /// mutex while it was held elsewhere.
    pub fn contended_ns(&self) -> u64 {
        self.inner.contended_ns.load(Ordering::Relaxed)
    }

    /// Number of acquisitions that had to wait at least once.
    pub fn contentions(&self) -> u64 {
        self.inner.contentions.load(Ordering::Relaxed)
    }
}

impl Default for Mutex {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for Mutex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Mutex(locked={}, waiters={})",
            self.is_locked(),
            self.waiters()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::Runtime;
    use crate::syscall::{sys_throw, sys_yield};
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn try_lock_now_excludes() {
        let m = Mutex::new();
        assert!(m.try_lock_now());
        assert!(!m.try_lock_now());
        assert!(m.is_locked());
    }

    #[test]
    fn critical_section_is_exclusive_under_smp() {
        let rt = Runtime::builder().workers(4).build();
        let m = Mutex::new();
        let counter = Arc::new(AtomicU64::new(0));
        let in_section = Arc::new(AtomicU64::new(0));
        const THREADS: u64 = 64;
        const ROUNDS: u64 = 20;

        for _ in 0..THREADS {
            let m = m.clone();
            let counter = counter.clone();
            let in_section = in_section.clone();
            rt.spawn(crate::for_each_m(0..ROUNDS, move |_| {
                let m2 = m.clone();
                let counter = counter.clone();
                let in_section = in_section.clone();
                m.with(crate::do_m! {
                    sys_nbio({
                        let s = in_section.clone();
                        move || assert_eq!(s.fetch_add(1, Ordering::SeqCst), 0, "mutual exclusion violated")
                    });
                    sys_yield();
                    sys_nbio(move || {
                        counter.fetch_add(1, Ordering::SeqCst);
                        in_section.fetch_sub(1, Ordering::SeqCst);
                    })
                })
                .map(move |_| {
                    let _ = &m2;
                })
            }));
        }
        // Wait for all increments.
        let c2 = counter.clone();
        rt.block_on(crate::loop_m((), move |()| {
            let c = c2.clone();
            crate::do_m! {
                sys_yield();
                let done <- sys_nbio(move || c.load(Ordering::SeqCst) == THREADS * ROUNDS);
                crate::ThreadM::pure(if done { crate::Loop::Break(()) } else { crate::Loop::Continue(()) })
            }
        }));
        assert_eq!(counter.load(Ordering::SeqCst), THREADS * ROUNDS);
        assert!(!m.is_locked());
        rt.shutdown();
    }

    #[test]
    fn with_unlocks_on_exception() {
        let rt = Runtime::builder().workers(1).build();
        let m = Mutex::new();
        let r = rt.block_on_result(m.with(sys_throw::<()>("inside")));
        assert_eq!(r.unwrap_err().message(), "inside");
        assert!(!m.is_locked(), "mutex must be released after a throw");
        rt.shutdown();
    }

    #[test]
    fn unlock_without_lock_is_noop() {
        let rt = Runtime::builder().workers(1).build();
        let m = Mutex::new();
        rt.block_on(m.unlock());
        assert!(!m.is_locked());
        rt.shutdown();
    }

    #[test]
    fn debug_shows_state() {
        let m = Mutex::new();
        assert!(format!("{m:?}").contains("locked=false"));
    }

    #[test]
    fn contended_wait_is_accounted() {
        use crate::engine::testing::noop_ctx;
        // CountingCtx's clock ticks once per now() call, so any park →
        // acquire span measures > 0.
        let ctx = noop_ctx();
        let m = Mutex::new();
        assert!(m.try_lock_now(), "hold the lock externally");
        let m2 = m.clone();
        ctx.spawn(crate::do_m! { m2.lock(); m2.unlock() });
        ctx.run_all(128);
        assert_eq!(m.contentions(), 1, "the lock() attempt must have waited");
        assert_eq!(m.contended_ns(), 0, "wait still in progress");
        let m3 = m.clone();
        ctx.spawn(m3.unlock());
        ctx.run_all(128);
        assert!(m.contended_ns() > 0, "completed wait recorded");
        assert!(!m.is_locked());
    }

    #[test]
    fn with_nbio_runs_body_locked_and_releases() {
        let rt = Runtime::builder().workers(2).build();
        let m = Mutex::new();
        let probe = m.clone();
        let v = rt.block_on(m.with_nbio(move || {
            assert!(probe.is_locked(), "body must run with the lock held");
            41 + 1
        }));
        assert_eq!(v, 42);
        assert!(!m.is_locked(), "with_nbio must release the lock");
        rt.shutdown();
    }

    #[test]
    fn with_nbio_contends_like_lock() {
        use crate::engine::testing::noop_ctx;
        let ctx = noop_ctx();
        let m = Mutex::new();
        assert!(m.try_lock_now(), "hold the lock externally");
        let m2 = m.clone();
        ctx.spawn(m2.with_nbio(|| ()).map(|_| ()));
        ctx.run_all(128);
        assert_eq!(m.contentions(), 1);
        let m3 = m.clone();
        ctx.spawn(m3.unlock());
        ctx.run_all(128);
        assert!(m.contended_ns() > 0);
        assert!(!m.is_locked());
    }

    #[test]
    fn uncontended_lock_records_no_wait() {
        use crate::engine::testing::noop_ctx;
        let ctx = noop_ctx();
        let m = Mutex::new();
        let m2 = m.clone();
        ctx.spawn(crate::do_m! { m2.lock(); m2.unlock() });
        ctx.run_all(128);
        assert_eq!(m.contentions(), 0);
        assert_eq!(m.contended_ns(), 0);
    }
}
