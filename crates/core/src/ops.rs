//! Higher-level thread operations built from the primitives: fork/join,
//! parallel map, and timeouts. Nothing here touches the scheduler — it is
//! all library code over `sys_fork`, MVars and timers, demonstrating the
//! paper's point that the concurrency vocabulary is extensible *inside*
//! the application.

use std::fmt;

use crate::exception::Exception;
use crate::sync::{Chan, MVar};
use crate::syscall::{sys_fork, sys_sleep, sys_throw, sys_try};
use crate::thread::ThreadM;
use crate::time::Nanos;

/// The result slot of a thread spawned with [`spawn_join`].
pub struct JoinHandle<A> {
    slot: MVar<Result<A, Exception>>,
}

impl<A: Send + 'static> fmt::Debug for JoinHandle<A> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JoinHandle(done={})", self.slot.is_full())
    }
}

impl<A: Send + 'static> JoinHandle<A> {
    /// Blocks (the monadic thread) until the child finishes; rethrows the
    /// child's uncaught exception in the joiner.
    pub fn join(self) -> ThreadM<A> {
        self.slot.take().bind(|res| match res {
            Ok(v) => ThreadM::pure(v),
            Err(e) => sys_throw(e),
        })
    }

    /// Like [`JoinHandle::join`], but yields the exception as a value.
    pub fn join_result(self) -> ThreadM<Result<A, Exception>> {
        self.slot.take()
    }

    /// True once the child has finished (without blocking).
    pub fn is_finished(&self) -> bool {
        self.slot.is_full()
    }
}

/// Forks `m` as a child thread and returns a handle to await its result —
/// exceptions included, so failures cross the fork boundary instead of
/// vanishing.
///
/// # Examples
///
/// ```
/// use eveth_core::ops::spawn_join;
/// use eveth_core::runtime::Runtime;
/// use eveth_core::{do_m, ThreadM};
///
/// let rt = Runtime::builder().workers(2).build();
/// let v = rt.block_on(do_m! {
///     let handle <- spawn_join(ThreadM::pure(21));
///     let v <- handle.join();
///     ThreadM::pure(v * 2)
/// });
/// assert_eq!(v, 42);
/// rt.shutdown();
/// ```
pub fn spawn_join<A: Send + 'static>(m: ThreadM<A>) -> ThreadM<JoinHandle<A>> {
    let slot: MVar<Result<A, Exception>> = MVar::new_empty();
    let child_slot = slot.clone();
    sys_fork(sys_try(m).bind(move |res| child_slot.put(res))).map(move |_| JoinHandle { slot })
}

/// Runs every computation in its own thread and collects the results in
/// order (fork–join parallelism). The first child exception is rethrown
/// after all children finish.
pub fn par_all<A: Send + 'static>(ms: Vec<ThreadM<A>>) -> ThreadM<Vec<A>> {
    // Fork phase.
    let fork_all = crate::thread::loop_m(
        (ms, Vec::new()),
        |(mut ms, mut handles): (Vec<ThreadM<A>>, Vec<JoinHandle<A>>)| {
            if ms.is_empty() {
                return ThreadM::pure(crate::Loop::Break(handles));
            }
            let m = ms.remove(0);
            spawn_join(m).map(move |h| {
                handles.push(h);
                crate::Loop::Continue((ms, handles))
            })
        },
    );
    // Join phase, preserving order.
    fork_all.bind(|handles| {
        crate::thread::loop_m(
            (handles.into_iter(), Vec::new(), None::<Exception>),
            |(mut iter, mut out, first_err)| match iter.next() {
                None => match first_err {
                    None => ThreadM::pure(crate::Loop::Break(Ok(out))),
                    Some(e) => ThreadM::pure(crate::Loop::Break(Err(e))),
                },
                Some(h) => h.join_result().map(move |res| {
                    let first_err = match (res, first_err) {
                        (Ok(v), fe) => {
                            out.push(v);
                            fe
                        }
                        (Err(e), None) => Some(e),
                        (Err(_), fe @ Some(_)) => fe,
                    };
                    crate::Loop::Continue((iter, out, first_err))
                }),
            },
        )
        .bind(|res| match res {
            Ok(v) => ThreadM::pure(v),
            Err(e) => sys_throw(e),
        })
    })
}

/// Races `m` against a timer: `Some(value)` if `m` finishes first,
/// `None` on timeout. Cooperative caveat: on timeout the loser keeps
/// running to completion in the background (threads cannot be killed,
/// matching the paper's cooperative model); its result is discarded.
pub fn with_timeout<A: Send + 'static>(dur: Nanos, m: ThreadM<A>) -> ThreadM<Option<A>> {
    let finish: Chan<Option<Result<A, Exception>>> = Chan::new();
    let from_work = finish.clone();
    let from_timer = finish.clone();
    crate::do_m! {
        sys_fork(sys_try(m).bind(move |res| from_work.write(Some(res))));
        sys_fork(crate::do_m! {
            sys_sleep(dur);
            from_timer.write(None)
        });
        let first <- finish.read();
        match first {
            None => ThreadM::pure(None),
            Some(Ok(v)) => ThreadM::pure(Some(v)),
            Some(Err(e)) => sys_throw(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::Runtime;
    use crate::syscall::{sys_nbio, sys_sleep};
    use crate::time::MILLIS;

    #[test]
    fn join_returns_child_value() {
        let rt = Runtime::builder().workers(2).build();
        let v = rt.block_on(crate::do_m! {
            let h <- spawn_join(crate::do_m! {
                sys_sleep(5 * MILLIS);
                ThreadM::pure("late value")
            });
            h.join()
        });
        assert_eq!(v, "late value");
        rt.shutdown();
    }

    #[test]
    fn join_rethrows_child_exception() {
        let rt = Runtime::builder().workers(2).build();
        let err = rt
            .block_on_result(crate::do_m! {
                let h <- spawn_join(crate::syscall::sys_throw::<u8>("child died"));
                h.join()
            })
            .unwrap_err();
        assert_eq!(err.message(), "child died");
        assert!(
            rt.uncaught_exceptions().is_empty(),
            "exception was captured, not leaked"
        );
        rt.shutdown();
    }

    #[test]
    fn par_all_preserves_order() {
        let rt = Runtime::builder().workers(4).build();
        let ms: Vec<ThreadM<u32>> = (0..16)
            .map(|i| {
                crate::do_m! {
                    // Later items sleep less: completion order is reversed,
                    // result order must not be.
                    sys_sleep((16 - i) as u64 * MILLIS / 4);
                    ThreadM::pure(i)
                }
            })
            .collect();
        let out = rt.block_on(par_all(ms));
        assert_eq!(out, (0..16).collect::<Vec<_>>());
        rt.shutdown();
    }

    #[test]
    fn par_all_surfaces_first_failure_after_all_join() {
        let rt = Runtime::builder().workers(2).build();
        let ms = vec![
            ThreadM::pure(1),
            crate::syscall::sys_throw::<i32>("boom"),
            ThreadM::pure(3),
        ];
        let err = rt.block_on_result(par_all(ms)).unwrap_err();
        assert_eq!(err.message(), "boom");
        rt.shutdown();
    }

    #[test]
    fn timeout_fires_on_slow_work() {
        let rt = Runtime::builder().workers(2).build();
        let out = rt.block_on(with_timeout(
            5 * MILLIS,
            crate::do_m! {
                sys_sleep(60_000 * MILLIS);
                ThreadM::pure(1)
            },
        ));
        assert_eq!(out, None);
        rt.shutdown();
    }

    #[test]
    fn timeout_passes_fast_work_through() {
        let rt = Runtime::builder().workers(2).build();
        let out = rt.block_on(with_timeout(1_000 * MILLIS, sys_nbio(|| 9)));
        assert_eq!(out, Some(9));
        rt.shutdown();
    }

    #[test]
    fn timeout_rethrows_work_exception() {
        let rt = Runtime::builder().workers(2).build();
        let err = rt
            .block_on_result(with_timeout(
                1_000 * MILLIS,
                crate::syscall::sys_throw::<()>("bad"),
            ))
            .unwrap_err();
        assert_eq!(err.message(), "bad");
        rt.shutdown();
    }
}
