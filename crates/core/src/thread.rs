//! The CPS concurrency monad (paper §3.2).
//!
//! A computation producing an `A` is represented in continuation-passing
//! style as a function from a continuation `A -> Trace` to a [`Trace`]:
//!
//! ```haskell
//! newtype M a = M ((a -> Trace) -> Trace)
//! ```
//!
//! [`ThreadM<A>`] is the Rust rendering: the continuation and the computation
//! are boxed `FnOnce` closures. [`ThreadM::bind`] is lazy in its function
//! argument — exactly like Haskell's `>>=` — so recursive server loops build
//! their (conceptually infinite) traces one node at a time as the scheduler
//! forces them, and tail-recursive loops run in constant continuation space.
//!
//! The [`do_m!`](crate::do_m) macro plays the role of Haskell's `do`-syntax.

use std::sync::Arc;

use parking_lot::Mutex;

use crate::trace::Trace;

/// A continuation expecting the result of a monadic computation.
pub type Cont<A> = Box<dyn FnOnce(A) -> Trace + Send>;

/// A monadic thread computation producing a value of type `A`.
///
/// Values of this type are inert descriptions: nothing runs until a scheduler
/// forces the thread's trace. Construct computations with the `sys_*` system
/// calls in [`syscall`](crate::syscall), sequence them with [`bind`] /
/// [`do_m!`](crate::do_m), and hand the finished program to a runtime
/// ([`Runtime::spawn`](crate::runtime::Runtime::spawn)) or to the inline
/// cooperative executor ([`run_local`](crate::local::run_local)).
///
/// [`bind`]: ThreadM::bind
///
/// # Examples
///
/// ```
/// use eveth_core::{do_m, local::run_local, syscall::sys_yield, ThreadM};
///
/// let program = do_m! {
///     let x <- ThreadM::pure(20);
///     sys_yield();
///     let y <- ThreadM::from_fn(move || x + 22);
///     ThreadM::pure(y)
/// };
/// assert_eq!(run_local(program).unwrap(), 42);
/// ```
pub struct ThreadM<A> {
    run: Box<dyn FnOnce(Cont<A>) -> Trace + Send>,
}

impl<A: Send + 'static> ThreadM<A> {
    /// Wraps a raw CPS function. This is the `M` constructor of the paper;
    /// most users want the `sys_*` calls instead.
    pub fn new(f: impl FnOnce(Cont<A>) -> Trace + Send + 'static) -> Self {
        ThreadM { run: Box::new(f) }
    }

    /// Monadic `return`: lifts a value into the monad.
    ///
    /// # Examples
    ///
    /// ```
    /// use eveth_core::{local::run_local, ThreadM};
    /// assert_eq!(run_local(ThreadM::pure(7)).unwrap(), 7);
    /// ```
    pub fn pure(a: A) -> Self {
        ThreadM::new(move |c| c(a))
    }

    /// Lifts a *pure* computation, evaluated only when the thread reaches
    /// this point. Use [`sys_nbio`](crate::syscall::sys_nbio) instead for
    /// effectful operations so they appear in the trace.
    pub fn from_fn(f: impl FnOnce() -> A + Send + 'static) -> Self {
        ThreadM::new(move |c| c(f()))
    }

    /// Monadic bind (`>>=`): sequential composition.
    ///
    /// `f` runs only when this computation's result is available at
    /// *execution* time, so recursive definitions such as
    /// `fn server() -> ThreadM<()> { step().bind(|_| server()) }`
    /// terminate at construction time and unfold lazily, exactly like the
    /// paper's recursive `server` example (Figure 4).
    pub fn bind<B: Send + 'static>(
        self,
        f: impl FnOnce(A) -> ThreadM<B> + Send + 'static,
    ) -> ThreadM<B> {
        ThreadM::new(move |c| (self.run)(Box::new(move |a| (f(a).run)(c))))
    }

    /// Functorial map over the result.
    pub fn map<B: Send + 'static>(self, f: impl FnOnce(A) -> B + Send + 'static) -> ThreadM<B> {
        ThreadM::new(move |c| (self.run)(Box::new(move |a| c(f(a)))))
    }

    /// Sequences `next` after `self`, discarding `self`'s result.
    ///
    /// `next` is constructed eagerly; for recursive tails use [`bind`] with a
    /// closure (or `do_m!`, which always produces lazy chains).
    ///
    /// [`bind`]: ThreadM::bind
    pub fn then<B: Send + 'static>(self, next: ThreadM<B>) -> ThreadM<B> {
        self.bind(move |_| next)
    }

    /// Discards the result.
    pub fn void(self) -> ThreadM<()> {
        self.map(|_| ())
    }

    /// Runs the CPS function with an explicit continuation, producing a
    /// trace. This is how schedulers and combinators tie the knot.
    pub fn run_cont(self, c: Cont<A>) -> Trace {
        (self.run)(c)
    }

    /// Converts the computation into a trace by appending the final
    /// `SYS_RET` continuation — the paper's `build_trace` (Figure 8).
    ///
    /// # Examples
    ///
    /// ```
    /// use eveth_core::{syscall::sys_yield, ThreadM};
    /// let t = sys_yield().into_trace();
    /// assert_eq!(t.kind(), "SYS_YIELD");
    /// ```
    pub fn into_trace(self) -> Trace {
        (self.run)(Box::new(|_| Trace::Ret))
    }
}

impl<A: Send + 'static> From<A> for ThreadM<A> {
    fn from(a: A) -> Self {
        ThreadM::pure(a)
    }
}

impl<A> std::fmt::Debug for ThreadM<A> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("ThreadM(..)")
    }
}

/// A one-shot continuation cell shared between the success and failure paths
/// of `sys_catch`: only one of the two ever consumes it.
pub(crate) struct SharedCont<A>(Arc<Mutex<Option<Cont<A>>>>);

impl<A> Clone for SharedCont<A> {
    fn clone(&self) -> Self {
        SharedCont(Arc::clone(&self.0))
    }
}

impl<A> SharedCont<A> {
    pub(crate) fn new(c: Cont<A>) -> Self {
        SharedCont(Arc::new(Mutex::new(Some(c))))
    }

    /// Takes the continuation out.
    ///
    /// # Panics
    ///
    /// Panics if both paths of a `sys_catch` attempt to resume — a scheduler
    /// bug, never reachable from safe user code.
    pub(crate) fn take(&self) -> Cont<A> {
        self.0
            .lock()
            .take()
            .expect("sys_catch continuation resumed twice")
    }
}

/// Imperative-style sequencing for monadic threads — the paper's `do`-syntax.
///
/// Statement forms:
///
/// * `let x <- expr;` — monadic bind: run `expr :: ThreadM<T>`, bind `x : T`;
/// * `let pat = expr;` — ordinary pure `let`;
/// * `expr;` — run a monadic action, discarding its result;
/// * final `expr` — the overall result (`ThreadM<R>`).
///
/// # Examples
///
/// The paper's server/client skeleton (Figure 4):
///
/// ```
/// use eveth_core::{do_m, local::run_local, syscall::*, ThreadM};
///
/// fn client(n: u32) -> ThreadM<()> {
///     do_m! {
///         sys_nbio(move || println!("client {n}"));
///         ThreadM::pure(())
///     }
/// }
///
/// fn server(n: u32) -> ThreadM<()> {
///     do_m! {
///         sys_fork(client(n));
///         let more <- ThreadM::pure(n > 0);
///         if more { server(n - 1) } else { ThreadM::pure(()) }
///     }
/// }
///
/// run_local(server(3)).unwrap();
/// ```
#[macro_export]
macro_rules! do_m {
    (let mut $x:ident <- $e:expr ; $($rest:tt)+) => {
        $crate::ThreadM::bind($e, move |mut $x| $crate::do_m!($($rest)+))
    };
    (let $x:ident <- $e:expr ; $($rest:tt)+) => {
        $crate::ThreadM::bind($e, move |$x| $crate::do_m!($($rest)+))
    };
    (let $p:pat = $e:expr ; $($rest:tt)+) => {
        { let $p = $e; $crate::do_m!($($rest)+) }
    };
    ($e:expr ; $($rest:tt)+) => {
        $crate::ThreadM::bind($e, move |_| $crate::do_m!($($rest)+))
    };
    ($e:expr) => { $e };
}

/// Control-flow outcome for [`loop_m`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Loop<S, B> {
    /// Run another iteration with the new state.
    Continue(S),
    /// Stop, yielding the final value.
    Break(B),
}

/// A monadic loop: repeatedly runs `body` threading state `S` until it
/// returns [`Loop::Break`]. Tail-recursive in CPS, so it runs in constant
/// continuation space regardless of iteration count.
///
/// # Examples
///
/// ```
/// use eveth_core::{local::run_local, loop_m, Loop, ThreadM};
///
/// let sum = loop_m((0u64, 0u64), |(i, acc)| {
///     ThreadM::pure(if i == 10 {
///         Loop::Break(acc)
///     } else {
///         Loop::Continue((i + 1, acc + i))
///     })
/// });
/// assert_eq!(run_local(sum).unwrap(), 45);
/// ```
pub fn loop_m<S, B, F>(init: S, body: F) -> ThreadM<B>
where
    S: Send + 'static,
    B: Send + 'static,
    F: Fn(S) -> ThreadM<Loop<S, B>> + Send + Sync + 'static,
{
    loop_arc(init, Arc::new(body))
}

fn loop_arc<S, B, F>(state: S, body: Arc<F>) -> ThreadM<B>
where
    S: Send + 'static,
    B: Send + 'static,
    F: Fn(S) -> ThreadM<Loop<S, B>> + Send + Sync + 'static,
{
    let step = body(state);
    step.bind(move |outcome| match outcome {
        Loop::Continue(s) => loop_arc(s, body),
        Loop::Break(b) => ThreadM::pure(b),
    })
}

/// Runs `body` once per item of `items`, in order.
pub fn for_each_m<I, T, F>(items: I, body: F) -> ThreadM<()>
where
    I: IntoIterator<Item = T>,
    I::IntoIter: Send + 'static,
    T: Send + 'static,
    F: Fn(T) -> ThreadM<()> + Send + Sync + 'static,
{
    let iter = items.into_iter();
    loop_m(iter, move |mut it| match it.next() {
        Some(item) => body(item).map(move |_| Loop::Continue(it)),
        None => ThreadM::pure(Loop::Break(())),
    })
}

/// Runs `body(i)` for `i in 0..n`, collecting the results.
pub fn map_m<T, F>(n: usize, body: F) -> ThreadM<Vec<T>>
where
    T: Send + 'static,
    F: Fn(usize) -> ThreadM<T> + Send + Sync + 'static,
{
    loop_m((0usize, Vec::with_capacity(n)), move |(i, mut acc)| {
        if i == n {
            ThreadM::pure(Loop::Break(acc))
        } else {
            body(i).map(move |v| {
                acc.push(v);
                Loop::Continue((i + 1, acc))
            })
        }
    })
}

/// Repeats `body` forever (or until the thread exits via
/// [`sys_ret`](crate::syscall::sys_ret) or an uncaught exception).
pub fn forever_m<F>(body: F) -> ThreadM<()>
where
    F: Fn() -> ThreadM<()> + Send + Sync + 'static,
{
    loop_m((), move |()| body().map(|_| Loop::Continue(())))
}

/// Runs `cond`, and while it yields `true`, runs `body`.
pub fn while_m<C, F>(cond: C, body: F) -> ThreadM<()>
where
    C: Fn() -> ThreadM<bool> + Send + Sync + 'static,
    F: Fn() -> ThreadM<()> + Send + Sync + 'static,
{
    let cond = Arc::new(cond);
    let body = Arc::new(body);
    loop_m((), move |()| {
        let body = Arc::clone(&body);
        cond().bind(move |go| {
            if go {
                body().map(|_| Loop::Continue(()))
            } else {
                ThreadM::pure(Loop::Break(()))
            }
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::local::run_local;
    use crate::syscall::{sys_nbio, sys_yield};
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn pure_returns_value() {
        assert_eq!(run_local(ThreadM::pure(5)).unwrap(), 5);
    }

    #[test]
    fn bind_sequences() {
        let m = ThreadM::pure(2).bind(|x| ThreadM::pure(x * 3));
        assert_eq!(run_local(m).unwrap(), 6);
    }

    #[test]
    fn map_transforms() {
        assert_eq!(run_local(ThreadM::pure(2).map(|x| x + 1)).unwrap(), 3);
    }

    #[test]
    fn then_discards_left() {
        let m = ThreadM::pure("ignored").then(ThreadM::pure(9));
        assert_eq!(run_local(m).unwrap(), 9);
    }

    // Observational monad laws: we cannot compare closures, so we compare
    // run_local results over effect logs.
    #[test]
    fn monad_law_left_identity() {
        let f = |x: i32| ThreadM::pure(x + 1);
        let lhs = ThreadM::pure(41).bind(f);
        let rhs = f(41);
        assert_eq!(run_local(lhs).unwrap(), run_local(rhs).unwrap());
    }

    #[test]
    fn monad_law_right_identity() {
        let m = || ThreadM::pure(7).map(|x| x * 2);
        let lhs = m().bind(ThreadM::pure);
        assert_eq!(run_local(lhs).unwrap(), run_local(m()).unwrap());
    }

    #[test]
    fn monad_law_associativity() {
        let m = || ThreadM::pure(1);
        let f = |x: i32| ThreadM::pure(x + 1);
        let g = |x: i32| ThreadM::pure(x * 10);
        let lhs = m().bind(f).bind(g);
        let rhs = m().bind(move |x| f(x).bind(g));
        assert_eq!(run_local(lhs).unwrap(), run_local(rhs).unwrap());
    }

    #[test]
    fn do_m_bind_and_pure_let() {
        let m = do_m! {
            let x <- ThreadM::pure(10);
            let y = x * 2;
            let z <- ThreadM::pure(y + 1);
            ThreadM::pure(z)
        };
        assert_eq!(run_local(m).unwrap(), 21);
    }

    #[test]
    fn do_m_discard_statement() {
        static HITS: AtomicU64 = AtomicU64::new(0);
        let m = do_m! {
            sys_nbio(|| HITS.fetch_add(1, Ordering::SeqCst));
            sys_nbio(|| HITS.fetch_add(1, Ordering::SeqCst));
            ThreadM::pure(())
        };
        run_local(m).unwrap();
        assert_eq!(HITS.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn do_m_mut_binding() {
        let m = do_m! {
            let mut v <- ThreadM::pure(vec![1]);
            let _ = v.push(2);
            ThreadM::pure(v)
        };
        assert_eq!(run_local(m).unwrap(), vec![1, 2]);
    }

    #[test]
    fn loop_m_counts() {
        let m = loop_m(0u32, |n| {
            ThreadM::pure(if n < 1000 {
                Loop::Continue(n + 1)
            } else {
                Loop::Break(n)
            })
        });
        assert_eq!(run_local(m).unwrap(), 1000);
    }

    #[test]
    fn loop_m_with_yields_is_constant_space() {
        // One hundred thousand yields: would overflow the native stack if the
        // CPS chain grew per iteration.
        let m = loop_m(0u32, |n| {
            if n < 100_000 {
                sys_yield().map(move |_| Loop::Continue(n + 1))
            } else {
                ThreadM::pure(Loop::Break(n))
            }
        });
        assert_eq!(run_local(m).unwrap(), 100_000);
    }

    #[test]
    fn for_each_m_visits_in_order() {
        let log = std::sync::Arc::new(parking_lot::Mutex::new(Vec::new()));
        let l2 = log.clone();
        let m = for_each_m(vec![1, 2, 3], move |x| {
            let l = l2.clone();
            sys_nbio(move || l.lock().push(x))
        });
        run_local(m).unwrap();
        assert_eq!(*log.lock(), vec![1, 2, 3]);
    }

    #[test]
    fn map_m_collects() {
        let m = map_m(5, |i| ThreadM::pure(i * i));
        assert_eq!(run_local(m).unwrap(), vec![0, 1, 4, 9, 16]);
    }

    #[test]
    fn while_m_runs_until_false() {
        let n = std::sync::Arc::new(AtomicU64::new(0));
        let n1 = n.clone();
        let n2 = n.clone();
        let m = while_m(
            move || {
                let n = n1.clone();
                sys_nbio(move || n.load(Ordering::SeqCst) < 5)
            },
            move || {
                let n = n2.clone();
                sys_nbio(move || {
                    n.fetch_add(1, Ordering::SeqCst);
                })
            },
        );
        run_local(m).unwrap();
        assert_eq!(n.load(Ordering::SeqCst), 5);
    }

    #[test]
    fn from_value() {
        let m: ThreadM<i32> = 3.into();
        assert_eq!(run_local(m).unwrap(), 3);
    }

    #[test]
    fn debug_nonempty() {
        assert!(!format!("{:?}", ThreadM::pure(1)).is_empty());
    }
}
