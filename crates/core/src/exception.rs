//! Exception values thrown and caught by monadic threads.
//!
//! The paper (§4.3) adds `sys_throw`/`sys_catch` system calls whose trace
//! nodes are interpreted by the scheduler against a per-thread stack of
//! exception handlers. [`Exception`] is the value that travels along that
//! path: a human-readable message plus an optional typed payload that
//! handlers can downcast.

use std::any::Any;
use std::fmt;
use std::sync::Arc;

/// An exception raised inside a monadic thread.
///
/// Exceptions are cheap to clone (the payload is shared), so a handler can
/// inspect one and rethrow it, as in the paper's `send_file` example
/// (Figure 13).
///
/// # Examples
///
/// ```
/// use eveth_core::Exception;
///
/// #[derive(Debug, PartialEq)]
/// struct Timeout(u64);
///
/// let e = Exception::with_payload("request timed out", Timeout(30));
/// assert_eq!(e.message(), "request timed out");
/// assert_eq!(e.payload_ref::<Timeout>(), Some(&Timeout(30)));
/// assert!(e.payload_ref::<String>().is_none());
/// ```
#[derive(Clone)]
pub struct Exception {
    message: Arc<str>,
    payload: Option<Arc<dyn Any + Send + Sync>>,
}

impl Exception {
    /// Creates an exception carrying only a message.
    ///
    /// # Examples
    ///
    /// ```
    /// let e = eveth_core::Exception::new("connection reset");
    /// assert_eq!(e.message(), "connection reset");
    /// ```
    pub fn new(message: impl Into<Arc<str>>) -> Self {
        Exception {
            message: message.into(),
            payload: None,
        }
    }

    /// Creates an exception carrying a message and a typed payload.
    pub fn with_payload<P: Any + Send + Sync>(message: impl Into<Arc<str>>, payload: P) -> Self {
        Exception {
            message: message.into(),
            payload: Some(Arc::new(payload)),
        }
    }

    /// The human-readable description given at construction.
    pub fn message(&self) -> &str {
        &self.message
    }

    /// Borrows the payload if it has type `P`.
    pub fn payload_ref<P: Any + Send + Sync>(&self) -> Option<&P> {
        self.payload.as_deref().and_then(|p| p.downcast_ref())
    }

    /// Returns `true` if the exception carries a payload of type `P`.
    pub fn is<P: Any + Send + Sync>(&self) -> bool {
        self.payload_ref::<P>().is_some()
    }
}

impl fmt::Debug for Exception {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Exception")
            .field("message", &self.message)
            .field("has_payload", &self.payload.is_some())
            .finish()
    }
}

impl fmt::Display for Exception {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Exception {}

impl From<&str> for Exception {
    fn from(s: &str) -> Self {
        Exception::new(s)
    }
}

impl From<String> for Exception {
    fn from(s: String) -> Self {
        Exception::new(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn message_roundtrip() {
        let e = Exception::new("boom");
        assert_eq!(e.message(), "boom");
        assert_eq!(format!("{e}"), "boom");
    }

    #[test]
    fn payload_downcast() {
        let e = Exception::with_payload("io", 42u32);
        assert_eq!(e.payload_ref::<u32>(), Some(&42));
        assert!(e.payload_ref::<u64>().is_none());
        assert!(e.is::<u32>());
        assert!(!e.is::<i32>());
    }

    #[test]
    fn clone_shares_payload() {
        let e = Exception::with_payload("io", vec![1u8, 2, 3]);
        let f = e.clone();
        assert_eq!(f.payload_ref::<Vec<u8>>().unwrap(), &[1, 2, 3]);
        assert_eq!(e.message(), f.message());
    }

    #[test]
    fn from_impls() {
        let a: Exception = "x".into();
        let b: Exception = String::from("y").into();
        assert_eq!(a.message(), "x");
        assert_eq!(b.message(), "y");
    }

    #[test]
    fn debug_is_nonempty() {
        let e = Exception::new("z");
        assert!(format!("{e:?}").contains("z"));
    }
}
