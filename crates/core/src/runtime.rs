//! The real (wall-clock) runtime: the event-driven system of the paper's
//! Figure 14.
//!
//! Several `worker_main` event loops run in separate OS threads, repeatedly
//! fetching tasks from a shared ready queue and interpreting their traces
//! (true SMP parallelism, §4.4). Readiness events from pollable devices are
//! harvested by a dedicated `worker_epoll` loop (Figure 16), AIO completions
//! by a `worker_aio` loop, blocking operations run on a blocking-I/O pool
//! (§4.6), and timers on a timer wheel. All of it is ordinary application
//! code — no OS thread per monadic thread anywhere.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{self, Receiver, Sender};
use parking_lot::{Condvar, Mutex};

use crate::sched::ReadyQueue;

use crate::engine::{self, CostKind, RuntimeCtx, WaitKind};
use crate::exception::Exception;
use crate::reactor::{DirectPort, EventPort, Unparker, Waiter};
use crate::syscall::sys_try;
use crate::task::{Task, TaskId, TaskShell};
use crate::thread::ThreadM;
use crate::time::Nanos;
use crate::timer::{TimerKey, TimerWheel};
use crate::trace::BlioJob;

/// Counters describing what a runtime has done. All counters are
/// monotonically increasing totals since runtime start.
#[derive(Debug, Default)]
pub struct Stats {
    /// Threads created (including forks).
    pub spawned: AtomicU64,
    /// Threads that ran to completion.
    pub exited: AtomicU64,
    /// Threads killed by uncaught exceptions.
    pub uncaught: AtomicU64,
    /// Non-blocking steps interpreted.
    pub steps: AtomicU64,
    /// Scheduling switches (yields + slice preemptions).
    pub ctx_switches: AtomicU64,
    /// epoll interest registrations.
    pub epoll_registrations: AtomicU64,
    /// Parked threads resumed.
    pub wakes: AtomicU64,
    /// AIO requests submitted.
    pub aio_submitted: AtomicU64,
    /// Jobs dispatched to the blocking-I/O pool.
    pub blio_jobs: AtomicU64,
    /// `sys_park` calls.
    pub parks: AtomicU64,
    /// Timers armed.
    pub sleeps: AtomicU64,
    /// Modelled CPU nanoseconds (`sys_cpu`).
    pub cpu_charged: AtomicU64,
}

/// A point-in-time copy of [`Stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsSnapshot {
    /// Threads created (including forks).
    pub spawned: u64,
    /// Threads that ran to completion.
    pub exited: u64,
    /// Threads killed by uncaught exceptions.
    pub uncaught: u64,
    /// Non-blocking steps interpreted.
    pub steps: u64,
    /// Scheduling switches (yields + slice preemptions).
    pub ctx_switches: u64,
    /// epoll interest registrations.
    pub epoll_registrations: u64,
    /// Parked threads resumed.
    pub wakes: u64,
    /// AIO requests submitted.
    pub aio_submitted: u64,
    /// Jobs dispatched to the blocking-I/O pool.
    pub blio_jobs: u64,
    /// `sys_park` calls.
    pub parks: u64,
    /// Timers armed.
    pub sleeps: u64,
    /// Modelled CPU nanoseconds (`sys_cpu`).
    pub cpu_charged: u64,
}

impl Stats {
    /// Records one metered action.
    pub fn charge(&self, cost: CostKind) {
        match cost {
            CostKind::Step => self.steps.fetch_add(1, Ordering::Relaxed),
            CostKind::Fork => self.spawned.fetch_add(0, Ordering::Relaxed), // counted via task_spawned
            CostKind::CtxSwitch => self.ctx_switches.fetch_add(1, Ordering::Relaxed),
            CostKind::EpollRegister => self.epoll_registrations.fetch_add(1, Ordering::Relaxed),
            CostKind::Wake => self.wakes.fetch_add(1, Ordering::Relaxed),
            CostKind::AioSubmit => self.aio_submitted.fetch_add(1, Ordering::Relaxed),
            CostKind::Blio => self.blio_jobs.fetch_add(1, Ordering::Relaxed),
            CostKind::Park => self.parks.fetch_add(1, Ordering::Relaxed),
            CostKind::Sleep => self.sleeps.fetch_add(1, Ordering::Relaxed),
            CostKind::Custom(ns) => self.cpu_charged.fetch_add(ns, Ordering::Relaxed),
        };
    }

    /// Copies the current counter values.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            spawned: self.spawned.load(Ordering::Relaxed),
            exited: self.exited.load(Ordering::Relaxed),
            uncaught: self.uncaught.load(Ordering::Relaxed),
            steps: self.steps.load(Ordering::Relaxed),
            ctx_switches: self.ctx_switches.load(Ordering::Relaxed),
            epoll_registrations: self.epoll_registrations.load(Ordering::Relaxed),
            wakes: self.wakes.load(Ordering::Relaxed),
            aio_submitted: self.aio_submitted.load(Ordering::Relaxed),
            blio_jobs: self.blio_jobs.load(Ordering::Relaxed),
            parks: self.parks.load(Ordering::Relaxed),
            sleeps: self.sleeps.load(Ordering::Relaxed),
            cpu_charged: self.cpu_charged.load(Ordering::Relaxed),
        }
    }
}

/// Configuration for [`Runtime`].
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of `worker_main` scheduler threads (paper §4.4).
    pub workers: usize,
    /// Number of blocking-I/O pool threads (paper §4.6).
    pub blio_threads: usize,
    /// Non-blocking steps a thread may run before being preempted
    /// ("executed for a large number of steps before switching", §4.2).
    pub slice: usize,
    /// Route readiness/completion events through dedicated `worker_epoll` /
    /// `worker_aio` loops (the paper's architecture) instead of waking
    /// inline. Toggled by the scheduler-architecture ablation.
    pub queued_event_loops: bool,
    /// Per-worker ready deques with work stealing instead of the paper's
    /// single shared queue — the improvement §4.4 proposes as future work.
    pub work_stealing: bool,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            workers: 2,
            blio_threads: 2,
            slice: 256,
            queued_event_loops: true,
            work_stealing: false,
        }
    }
}

/// Builder for [`Runtime`].
#[derive(Debug, Clone, Default)]
pub struct RuntimeBuilder {
    config: Config,
}

impl RuntimeBuilder {
    /// Sets the number of `worker_main` scheduler threads.
    pub fn workers(mut self, n: usize) -> Self {
        self.config.workers = n.max(1);
        self
    }

    /// Sets the number of blocking-I/O pool threads.
    pub fn blio_threads(mut self, n: usize) -> Self {
        self.config.blio_threads = n.max(1);
        self
    }

    /// Sets the preemption slice (non-blocking steps per scheduling turn).
    pub fn slice(mut self, steps: usize) -> Self {
        self.config.slice = steps.max(1);
        self
    }

    /// Chooses between queued event loops (paper architecture) and inline
    /// wakeups.
    pub fn queued_event_loops(mut self, queued: bool) -> Self {
        self.config.queued_event_loops = queued;
        self
    }

    /// Enables per-worker deques with work stealing (§4.4 future work)
    /// instead of the single shared ready queue.
    pub fn work_stealing(mut self, enabled: bool) -> Self {
        self.config.work_stealing = enabled;
        self
    }

    /// Starts the runtime's worker and event-loop threads.
    pub fn build(self) -> Runtime {
        Runtime::with_config(self.config)
    }
}

/// An event queue drained by a dedicated event-loop thread — the paper's
/// `worker_epoll` (Figure 16) and AIO loops use one each.
struct EventLoopQueue {
    queue: Mutex<VecDeque<Unparker>>,
    cv: Condvar,
}

impl EventLoopQueue {
    fn new() -> Self {
        EventLoopQueue {
            queue: Mutex::new(VecDeque::new()),
            cv: Condvar::new(),
        }
    }

    fn drain_batch(&self, wait: Duration) -> Vec<Unparker> {
        let mut q = self.queue.lock();
        if q.is_empty() {
            self.cv.wait_for(&mut q, wait);
        }
        q.drain(..).collect()
    }
}

impl EventPort for EventLoopQueue {
    fn notify(&self, unparker: Unparker) {
        self.queue.lock().push_back(unparker);
        self.cv.notify_one();
    }
}

impl std::fmt::Debug for EventLoopQueue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "EventLoopQueue(pending={})", self.queue.lock().len())
    }
}

/// What an expired timer resumes: a whole parked task (`sys_sleep`) or a
/// racing waiter (`timer_wake`, the event layer's timeout branches).
enum TimerDue {
    /// Requeue the task (a committed `sys_sleep`).
    Task(Task),
    /// Wake the waiter unless already woken elsewhere. Losing timeout
    /// branches no longer carry a lazy-cancel flag: they disarm through
    /// [`RtTimer::cancel`], which removes the entry physically.
    Waiter(Waiter),
}

/// The armed-deadline store shared between arming threads and the
/// `worker_timer` loop: a hierarchical [`TimerWheel`] under the timer
/// thread's mutex/condvar. Cancellation is physical and O(1), so
/// armed-then-cancelled idle deadlines — one per completed or reaped
/// connection under churn — have zero residence time instead of
/// lingering in a heap until their far-future deadline.
struct RtTimer {
    wheel: Mutex<TimerWheel<TimerDue>>,
    cv: Condvar,
}

impl RtTimer {
    fn new() -> Self {
        RtTimer {
            wheel: Mutex::new(TimerWheel::new()),
            cv: Condvar::new(),
        }
    }

    fn insert(&self, deadline: Nanos, due: TimerDue) -> TimerKey {
        let key = self.wheel.lock().insert(deadline, due);
        self.cv.notify_one();
        key
    }

    fn cancel(&self, key: TimerKey) {
        self.wheel.lock().cancel(key);
    }
}

struct RtInner {
    ready: ReadyQueue,
    blio_tx: Sender<(BlioJob, TaskShell)>,
    blio_rx: Receiver<(BlioJob, TaskShell)>,
    epoll_queue: Arc<EventLoopQueue>,
    aio_queue: Arc<EventLoopQueue>,
    timer: Arc<RtTimer>,
    next_tid: AtomicU64,
    live: AtomicI64,
    stats: Stats,
    start: Instant,
    shutdown: AtomicBool,
    config: Config,
    uncaught_log: Mutex<Vec<(TaskId, Exception)>>,
    /// Attached telemetry hub, if any (first attach wins). Read on every
    /// scheduler hook, so it is a set-once cell rather than a lock.
    telemetry: std::sync::OnceLock<Arc<crate::telemetry::Telemetry>>,
}

impl RtInner {
    fn tel(&self) -> Option<&Arc<crate::telemetry::Telemetry>> {
        self.telemetry.get()
    }
}

impl RuntimeCtx for RtInner {
    fn push_ready(&self, task: Task) {
        if let Some(tel) = self.tel() {
            tel.on_wake(self.now(), task.tid().0);
        }
        self.ready.push_task(task);
    }
    fn next_tid(&self) -> TaskId {
        TaskId(self.next_tid.fetch_add(1, Ordering::Relaxed))
    }
    fn task_spawned(&self, tid: TaskId, parent: Option<TaskId>) {
        self.live.fetch_add(1, Ordering::SeqCst);
        self.stats.spawned.fetch_add(1, Ordering::Relaxed);
        if let Some(tel) = self.tel() {
            tel.on_spawn(self.now(), tid.0, parent.map(|p| p.0));
        }
    }
    fn task_exited(&self, tid: TaskId) {
        self.live.fetch_sub(1, Ordering::SeqCst);
        self.stats.exited.fetch_add(1, Ordering::Relaxed);
        if let Some(tel) = self.tel() {
            tel.on_exit(self.now(), tid.0, false);
        }
    }
    fn uncaught_exception(&self, tid: TaskId, e: Exception) {
        self.live.fetch_sub(1, Ordering::SeqCst);
        self.stats.uncaught.fetch_add(1, Ordering::Relaxed);
        self.uncaught_log.lock().push((tid, e));
        if let Some(tel) = self.tel() {
            tel.on_exit(self.now(), tid.0, true);
        }
    }
    fn task_parked(&self, tid: TaskId, kind: WaitKind) {
        if let Some(tel) = self.tel() {
            tel.on_park(self.now(), tid.0, kind);
        }
    }
    fn task_wait_reclass(&self, tid: TaskId, kind: WaitKind) {
        if let Some(tel) = self.tel() {
            tel.on_reclass(self.now(), tid.0, kind);
        }
    }
    fn task_annotate(&self, tid: TaskId, name: Arc<str>) {
        if let Some(tel) = self.tel() {
            tel.on_annotate(self.now(), tid.0, name);
        }
    }
    fn now(&self) -> Nanos {
        self.start.elapsed().as_nanos() as Nanos
    }
    fn charge(&self, cost: CostKind) {
        self.stats.charge(cost);
    }
    fn epoll_port(&self) -> Arc<dyn EventPort> {
        if self.config.queued_event_loops {
            Arc::clone(&self.epoll_queue) as Arc<dyn EventPort>
        } else {
            Arc::new(DirectPort)
        }
    }
    fn aio_port(&self) -> Arc<dyn EventPort> {
        if self.config.queued_event_loops {
            Arc::clone(&self.aio_queue) as Arc<dyn EventPort>
        } else {
            Arc::new(DirectPort)
        }
    }
    fn sleep(&self, dur: Nanos, task: Task) {
        self.timer
            .insert(self.now().saturating_add(dur), TimerDue::Task(task));
    }
    fn timer_wake(&self, dur: Nanos, waiter: Waiter) -> engine::TimerHandle {
        let key = self
            .timer
            .insert(self.now().saturating_add(dur), TimerDue::Waiter(waiter));
        // Physical cancellation: a losing timeout branch removes its wheel
        // entry immediately instead of leaving a flagged corpse behind
        // until the deadline.
        let timer = Arc::clone(&self.timer);
        engine::TimerHandle::new(move || timer.cancel(key))
    }
    fn submit_blio(&self, job: BlioJob, shell: TaskShell) {
        let _ = self.blio_tx.send((job, shell));
    }
}

/// The multi-worker, wall-clock runtime (paper Figure 14).
///
/// # Examples
///
/// ```
/// use eveth_core::{runtime::Runtime, syscall::sys_nbio};
///
/// let rt = Runtime::builder().workers(2).build();
/// assert_eq!(rt.block_on(sys_nbio(|| 6 * 7)), 42);
/// rt.shutdown();
/// ```
pub struct Runtime {
    inner: Arc<RtInner>,
    handles: Mutex<Vec<JoinHandle<()>>>,
}

impl Runtime {
    /// Starts a runtime with default configuration.
    pub fn new() -> Self {
        Runtime::with_config(Config::default())
    }

    /// Returns a configuration builder.
    pub fn builder() -> RuntimeBuilder {
        RuntimeBuilder::default()
    }

    /// Starts a runtime with an explicit configuration.
    pub fn with_config(config: Config) -> Self {
        let (ready, mut local_workers) = if config.work_stealing {
            let (q, locals) = ReadyQueue::stealing(config.workers);
            (q, locals.into_iter().map(Some).collect::<Vec<_>>())
        } else {
            (
                ReadyQueue::shared(),
                (0..config.workers).map(|_| None).collect(),
            )
        };
        let (blio_tx, blio_rx) = channel::unbounded();
        let inner = Arc::new(RtInner {
            ready,
            blio_tx,
            blio_rx,
            epoll_queue: Arc::new(EventLoopQueue::new()),
            aio_queue: Arc::new(EventLoopQueue::new()),
            timer: Arc::new(RtTimer::new()),
            next_tid: AtomicU64::new(1),
            live: AtomicI64::new(0),
            stats: Stats::default(),
            start: Instant::now(),
            shutdown: AtomicBool::new(false),
            config: config.clone(),
            uncaught_log: Mutex::new(Vec::new()),
            telemetry: std::sync::OnceLock::new(),
        });

        let mut handles = Vec::new();

        // worker_main event loops (Figure 11 / Figure 14).
        for (i, slot) in local_workers.iter_mut().enumerate() {
            let inner = Arc::clone(&inner);
            let local = slot.take();
            handles.push(
                std::thread::Builder::new()
                    .name(format!("worker_main-{i}"))
                    .spawn(move || worker_main(inner, local))
                    .expect("failed to spawn worker_main"),
            );
        }

        // worker_epoll: harvests readiness events (Figure 16).
        {
            let inner = Arc::clone(&inner);
            let queue = Arc::clone(&inner.epoll_queue);
            handles.push(
                std::thread::Builder::new()
                    .name("worker_epoll".into())
                    .spawn(move || worker_event_loop(inner, queue))
                    .expect("failed to spawn worker_epoll"),
            );
        }

        // worker_aio: harvests AIO completions.
        {
            let inner = Arc::clone(&inner);
            let queue = Arc::clone(&inner.aio_queue);
            handles.push(
                std::thread::Builder::new()
                    .name("worker_aio".into())
                    .spawn(move || worker_event_loop(inner, queue))
                    .expect("failed to spawn worker_aio"),
            );
        }

        // Blocking-I/O pool (§4.6).
        for i in 0..config.blio_threads {
            let inner = Arc::clone(&inner);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("worker_blio-{i}"))
                    .spawn(move || worker_blio(inner))
                    .expect("failed to spawn worker_blio"),
            );
        }

        // Timer wheel.
        {
            let inner = Arc::clone(&inner);
            handles.push(
                std::thread::Builder::new()
                    .name("worker_timer".into())
                    .spawn(move || worker_timer(inner))
                    .expect("failed to spawn worker_timer"),
            );
        }

        Runtime {
            inner,
            handles: Mutex::new(handles),
        }
    }

    /// Spawns a monadic thread; returns its id. The thread starts running
    /// as soon as a worker picks it up.
    pub fn spawn(&self, m: ThreadM<()>) -> TaskId {
        let tid = self.inner.next_tid();
        self.inner.task_spawned(tid, None);
        self.inner.push_ready(Task::from_thread(tid, m));
        tid
    }

    /// Attaches a telemetry hub: scheduler hooks (spawn / park / wake /
    /// annotate / exit) are forwarded to it from now on, stamped with
    /// wall-clock nanoseconds since runtime start. First attach wins;
    /// later calls return `false` and change nothing.
    pub fn set_telemetry(&self, telemetry: Arc<crate::telemetry::Telemetry>) -> bool {
        self.inner.telemetry.set(telemetry).is_ok()
    }

    /// The attached telemetry hub, if any.
    pub fn telemetry(&self) -> Option<Arc<crate::telemetry::Telemetry>> {
        self.inner.telemetry.get().cloned()
    }

    /// Runs `m` to completion, blocking the calling OS thread until it
    /// produces a value.
    ///
    /// # Panics
    ///
    /// Panics if `m` throws an exception it does not catch. Use
    /// [`Runtime::block_on_result`] to observe exceptions.
    pub fn block_on<T: Send + 'static>(&self, m: ThreadM<T>) -> T {
        match self.block_on_result(m) {
            Ok(v) => v,
            Err(e) => panic!("block_on thread failed with uncaught exception: {e}"),
        }
    }

    /// Like [`Runtime::block_on`], but returns thrown exceptions instead of
    /// panicking.
    pub fn block_on_result<T: Send + 'static>(&self, m: ThreadM<T>) -> Result<T, Exception> {
        type Slot<T> = Arc<(Mutex<Option<Result<T, Exception>>>, Condvar)>;
        let slot: Slot<T> = Arc::new((Mutex::new(None), Condvar::new()));
        let out = Arc::clone(&slot);
        self.spawn(sys_try(m).bind(move |res| {
            crate::syscall::sys_nbio(move || {
                *out.0.lock() = Some(res);
                out.1.notify_all();
            })
        }));
        let mut guard = slot.0.lock();
        while guard.is_none() {
            slot.1.wait(&mut guard);
        }
        guard.take().expect("result present")
    }

    /// Number of live (spawned, not yet finished) monadic threads.
    pub fn live_threads(&self) -> i64 {
        self.inner.live.load(Ordering::SeqCst)
    }

    /// A snapshot of runtime counters.
    pub fn stats(&self) -> StatsSnapshot {
        self.inner.stats.snapshot()
    }

    /// Exceptions that escaped their threads so far.
    pub fn uncaught_exceptions(&self) -> Vec<(TaskId, Exception)> {
        self.inner.uncaught_log.lock().clone()
    }

    /// Nanoseconds since the runtime started.
    pub fn now(&self) -> Nanos {
        self.inner.now()
    }

    /// Armed timer entries physically resident in the wheel. Cancelled
    /// entries are removed eagerly, so after a mass arm-and-cancel this
    /// returns to zero (regression guard for the old lazy-cancel leak,
    /// where entries lingered until their deadline).
    pub fn timer_entries(&self) -> usize {
        self.inner.timer.wheel.lock().len()
    }

    /// A [`RuntimeCtx`] handle for device drivers and schedulers that need
    /// to resume threads directly (e.g. the TCP stack).
    pub fn ctx(&self) -> Arc<dyn RuntimeCtx> {
        Arc::clone(&self.inner) as Arc<dyn RuntimeCtx>
    }

    /// Stops all worker and event-loop threads and waits for them to exit.
    /// Parked and queued threads are discarded.
    pub fn shutdown(self) {
        self.inner.shutdown.store(true, Ordering::SeqCst);
        self.inner.timer.cv.notify_all();
        self.inner.epoll_queue.cv.notify_all();
        self.inner.aio_queue.cv.notify_all();
        let handles = std::mem::take(&mut *self.handles.lock());
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Default for Runtime {
    fn default() -> Self {
        Self::new()
    }
}

impl Drop for Runtime {
    fn drop(&mut self) {
        // Signal loops to exit; do not join (shutdown() joins explicitly).
        self.inner.shutdown.store(true, Ordering::SeqCst);
        self.inner.timer.cv.notify_all();
        self.inner.epoll_queue.cv.notify_all();
        self.inner.aio_queue.cv.notify_all();
    }
}

impl std::fmt::Debug for Runtime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Runtime")
            .field("workers", &self.inner.config.workers)
            .field("live_threads", &self.live_threads())
            .finish()
    }
}

const POLL_INTERVAL: Duration = Duration::from_millis(10);

fn worker_main(inner: Arc<RtInner>, local: Option<crossbeam::deque::Worker<Task>>) {
    if let Some(local) = local {
        inner.ready.register_local(local);
    }
    let ctx: Arc<dyn RuntimeCtx> = Arc::clone(&inner) as Arc<dyn RuntimeCtx>;
    let slice = inner.config.slice;
    loop {
        match inner.ready.pop(POLL_INTERVAL) {
            Some(task) => engine::run_task(&ctx, task, slice),
            None => {
                if inner.shutdown.load(Ordering::SeqCst) {
                    return;
                }
            }
        }
    }
}

fn worker_event_loop(inner: Arc<RtInner>, queue: Arc<EventLoopQueue>) {
    loop {
        let batch = queue.drain_batch(POLL_INTERVAL);
        for unparker in batch {
            unparker.unpark();
        }
        if inner.shutdown.load(Ordering::SeqCst) {
            return;
        }
    }
}

fn worker_blio(inner: Arc<RtInner>) {
    loop {
        match inner.blio_rx.recv_timeout(POLL_INTERVAL) {
            Ok((job, shell)) => {
                // Run the blocking operation here; the continuation thunk it
                // returns is rescheduled onto a normal worker.
                let next = job();
                inner.push_ready(Task::from_parts(shell, next));
            }
            Err(channel::RecvTimeoutError::Timeout) => {
                if inner.shutdown.load(Ordering::SeqCst) {
                    return;
                }
            }
            Err(channel::RecvTimeoutError::Disconnected) => return,
        }
    }
}

fn worker_timer(inner: Arc<RtInner>) {
    loop {
        if inner.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let due;
        {
            let mut wheel = inner.timer.wheel.lock();
            let now = inner.now();
            due = wheel.expire(now);
            if due.is_empty() {
                let wait = wheel
                    .next_deadline_hint()
                    .map(|d| Duration::from_nanos(d.saturating_sub(now)))
                    .unwrap_or(POLL_INTERVAL)
                    .min(POLL_INTERVAL.max(Duration::from_millis(1)) * 10);
                inner.timer.cv.wait_for(&mut wheel, wait);
            }
        }
        for (_, _, entry) in due {
            match entry {
                TimerDue::Task(task) => inner.push_ready(task),
                TimerDue::Waiter(w) => {
                    if !w.is_spent() {
                        w.wake();
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::syscall::*;
    use crate::time::MILLIS;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn block_on_returns_value() {
        let rt = Runtime::builder().workers(2).build();
        assert_eq!(rt.block_on(ThreadM::pure(11)), 11);
        rt.shutdown();
    }

    #[test]
    fn block_on_result_propagates_exceptions() {
        let rt = Runtime::builder().workers(1).build();
        let err = rt.block_on_result(sys_throw::<u8>("broken")).unwrap_err();
        assert_eq!(err.message(), "broken");
        rt.shutdown();
    }

    #[test]
    fn forked_threads_run_in_parallel_workers() {
        let rt = Runtime::builder().workers(4).build();
        let n = Arc::new(AtomicU64::new(0));
        let m = {
            let n = n.clone();
            crate::map_m(64, move |_| {
                let n = n.clone();
                sys_nbio(move || {
                    n.fetch_add(1, Ordering::SeqCst);
                })
            })
        };
        // Fork 64 workers from the main thread and wait for all of them by
        // spinning on the shared counter from the coordinating thread.
        let counter = n.clone();
        rt.block_on(crate::do_m! {
            m;
            ThreadM::pure(())
        });
        assert_eq!(counter.load(Ordering::SeqCst), 64);
        rt.shutdown();
    }

    #[test]
    fn sleep_delays_by_roughly_the_duration() {
        let rt = Runtime::builder().workers(1).build();
        let (t0, t1) = rt.block_on(crate::do_m! {
            let t0 <- sys_time();
            sys_sleep(20 * MILLIS);
            let t1 <- sys_time();
            ThreadM::pure((t0, t1))
        });
        assert!(t1 - t0 >= 15 * MILLIS, "slept only {}ns", t1 - t0);
        rt.shutdown();
    }

    #[test]
    fn blio_runs_off_the_workers() {
        let rt = Runtime::builder().workers(1).blio_threads(2).build();
        let name = rt.block_on(sys_blio(|| {
            std::thread::current().name().unwrap_or("?").to_string()
        }));
        assert!(name.starts_with("worker_blio"), "ran on {name}");
        rt.shutdown();
    }

    #[test]
    fn stats_count_activity() {
        let rt = Runtime::builder().workers(1).build();
        rt.block_on(crate::do_m! {
            sys_fork(sys_yield());
            sys_yield();
            sys_nbio(|| ())
        });
        let s = rt.stats();
        assert!(s.spawned >= 2);
        assert!(s.ctx_switches >= 1);
        assert!(s.steps >= 1);
        rt.shutdown();
    }

    #[test]
    fn uncaught_exceptions_are_logged() {
        let rt = Runtime::builder().workers(1).build();
        rt.block_on(crate::do_m! {
            sys_fork(sys_throw::<()>("background failure"));
            sys_sleep(5 * MILLIS)
        });
        let log = rt.uncaught_exceptions();
        assert_eq!(log.len(), 1);
        assert_eq!(log[0].1.message(), "background failure");
        assert_eq!(rt.stats().uncaught, 1);
        rt.shutdown();
    }

    #[test]
    fn work_stealing_runtime_completes_unbalanced_load() {
        // All spawns come from one producer thread: without stealing the
        // injector path alone must still drain; with stealing, workers
        // balance among themselves. Either way every task must run.
        let rt = Runtime::builder().workers(4).work_stealing(true).build();
        let n = Arc::new(AtomicU64::new(0));
        const TASKS: u64 = 5_000;
        for _ in 0..TASKS {
            let n = n.clone();
            rt.spawn(crate::do_m! {
                sys_yield();
                sys_nbio(move || { n.fetch_add(1, Ordering::SeqCst); })
            });
        }
        let watch = n.clone();
        rt.block_on(crate::loop_m((), move |()| {
            let watch = watch.clone();
            crate::do_m! {
                sys_sleep(MILLIS);
                let v <- sys_nbio(move || watch.load(Ordering::SeqCst));
                ThreadM::pure(if v == TASKS { crate::Loop::Break(()) } else { crate::Loop::Continue(()) })
            }
        }));
        assert_eq!(n.load(Ordering::SeqCst), TASKS);
        rt.shutdown();
    }

    #[test]
    fn work_stealing_and_shared_agree_on_results() {
        for stealing in [false, true] {
            let rt = Runtime::builder()
                .workers(3)
                .work_stealing(stealing)
                .build();
            let sum = rt.block_on(crate::do_m! {
                let parts <- crate::ops::par_all((0..32u64).map(|i| ThreadM::pure(i * i)).collect());
                ThreadM::pure(parts.iter().sum::<u64>())
            });
            assert_eq!(
                sum,
                (0..32u64).map(|i| i * i).sum::<u64>(),
                "stealing={stealing}"
            );
            rt.shutdown();
        }
    }

    #[test]
    fn cancelled_timers_leave_no_residue_in_the_wheel() {
        use crate::reactor::{DirectPort, Unparker, Waiter};
        use crate::time::SECS;
        use crate::trace::Trace;
        let rt = Runtime::builder().workers(1).build();
        let ctx = rt.ctx();
        // Arm 100k far-future idle deadlines — one per simulated
        // connection — then cancel them all, as a churn storm does.
        let handles: Vec<_> = (0..100_000u64)
            .map(|i| {
                let u = Unparker::new(
                    Task::from_thunk(TaskId(1_000_000 + i), Box::new(|| Trace::Ret)),
                    Arc::clone(&ctx),
                );
                ctx.timer_wake(3600 * SECS, Waiter::new(u, Arc::new(DirectPort)))
            })
            .collect();
        assert_eq!(rt.timer_entries(), 100_000);
        for h in handles {
            h.cancel();
        }
        assert_eq!(
            rt.timer_entries(),
            0,
            "cancellation must remove wheel entries physically"
        );
        rt.shutdown();
    }

    #[test]
    fn ten_thousand_threads_complete() {
        let rt = Runtime::builder().workers(4).build();
        let n = Arc::new(AtomicU64::new(0));
        let n2 = n.clone();
        rt.block_on(crate::do_m! {
            crate::for_each_m(0..10_000u32, move |_| {
                let n = n2.clone();
                sys_fork(crate::do_m! {
                    sys_yield();
                    sys_nbio(move || { n.fetch_add(1, Ordering::SeqCst); })
                })
            });
            // Poll until every forked thread has bumped the counter.
            crate::loop_m((), {
                let n = n.clone();
                move |()| {
                    let n = n.clone();
                    crate::do_m! {
                        sys_yield();
                        let done <- sys_nbio(move || n.load(Ordering::SeqCst) == 10_000);
                        ThreadM::pure(if done { crate::Loop::Break(()) } else { crate::Loop::Continue(()) })
                    }
                }
            })
        });
        rt.shutdown();
    }
}
