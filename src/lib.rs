//! # eveth — combining events and threads for scalable network services
//!
//! The facade crate of a full Rust reproduction of Li & Zdancewic,
//! *"Combining Events and Threads for Scalable Network Services:
//! Implementation and Evaluation of Monadic, Application-level Concurrency
//! Primitives"* (PLDI 2007). It re-exports the workspace crates and adds
//! the glue that wires the application-level TCP stack onto the simulated
//! packet network.
//!
//! * [`core`] (`eveth-core`) — the CPS concurrency monad, traces, system
//!   calls, the SMP event-driven runtime, sync primitives and devices;
//! * [`simos`] (`eveth-simos`) — the deterministic simulated substrate:
//!   virtual clock, elevator-scheduled disk, file store, packet network,
//!   kernel-socket model, and the virtual-time runtime with NPTL/monadic
//!   cost models;
//! * [`tcp`] (`eveth-tcp`) — the application-level TCP stack (§4.8);
//! * [`stm`] (`eveth-stm`) — software transactional memory (§4.7);
//! * [`http`] (`eveth-http`) — the web-server case study (§5.2);
//! * [`kv`] (`eveth-kv`) — a sharded, memcached-style key-value service,
//!   the second workload proving the runtime generalizes beyond HTTP;
//! * [`glue`] — adapters connecting the pieces across crates.
//!
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for the
//! reproduction of every figure and table in the paper's evaluation.

#![warn(missing_docs)]

pub use eveth_cluster as cluster;
pub use eveth_core as core;
pub use eveth_http as http;
pub use eveth_kv as kv;
pub use eveth_simos as simos;
pub use eveth_stm as stm;
pub use eveth_tcp as tcp;

pub use eveth_core::{do_m, for_each_m, forever_m, loop_m, map_m, while_m, Loop, ThreadM};

/// Cross-crate adapters: wiring the application-level TCP stack over the
/// simulated packet network — segments become `SimNet` packets (with
/// modelled wire length), and deliveries are injected back into the
/// destination host's `worker_tcp_input` queue.
pub mod glue {
    use std::sync::{Arc, Weak};

    use eveth_core::engine::RuntimeCtx;
    use eveth_core::net::HostId;
    use eveth_simos::net::SimNet;
    use eveth_tcp::host::TcpHost;
    use eveth_tcp::segment::Segment;
    use eveth_tcp::tcb::TcpConfig;
    use eveth_tcp::transport::SegmentTransport;

    /// A [`SegmentTransport`] that ships segments through a simulated
    /// packet network, inheriting its latency, bandwidth and loss.
    #[derive(Debug)]
    pub struct SimNetTransport {
        net: Arc<SimNet>,
    }

    impl SimNetTransport {
        /// Wraps a simulated network.
        pub fn new(net: Arc<SimNet>) -> Arc<Self> {
            Arc::new(SimNetTransport { net })
        }
    }

    impl SegmentTransport for SimNetTransport {
        fn send(&self, src: HostId, dst: HostId, seg: Segment) {
            let wire = seg.wire_len();
            self.net.send(src, dst, wire, Box::new(seg));
        }
    }

    /// Registers `host` with the network so packets addressed to it are
    /// injected into its input queue. The registration holds the host
    /// weakly.
    pub fn attach_tcp_host(net: &Arc<SimNet>, host: &Arc<TcpHost>) {
        let weak: Weak<TcpHost> = Arc::downgrade(host);
        net.register_host(
            host.host_id(),
            Arc::new(move |src, pkt| {
                if let (Some(host), Ok(seg)) = (weak.upgrade(), pkt.downcast::<Segment>()) {
                    host.inject(src, *seg);
                }
            }),
        );
    }

    /// One-call convenience: start a TCP host on `ctx`, transported over
    /// `net`, and attach its receive path.
    pub fn tcp_host_over_simnet(
        ctx: Arc<dyn RuntimeCtx>,
        net: &Arc<SimNet>,
        host: HostId,
        cfg: TcpConfig,
    ) -> Arc<TcpHost> {
        let transport = SimNetTransport::new(Arc::clone(net));
        let tcp = TcpHost::start(ctx, host, transport, cfg);
        attach_tcp_host(net, &tcp);
        tcp
    }
}

#[cfg(test)]
mod tests {
    use super::glue;
    use bytes::Bytes;
    use eveth_core::net::{recv_exact, send_all, Endpoint, HostId, NetStack};
    use eveth_core::syscall::sys_fork;
    use eveth_core::{do_m, ThreadM};
    use eveth_simos::net::LinkParams;
    use eveth_simos::net::SimNet;
    use eveth_simos::SimRuntime;
    use eveth_tcp::tcb::TcpConfig;

    #[test]
    fn tcp_over_simnet_with_latency_and_loss() {
        let sim = SimRuntime::new_default();
        let net = SimNet::new(
            sim.clock(),
            LinkParams::ethernet_100mbps().with_loss(0.02),
            42,
        );
        let a = glue::tcp_host_over_simnet(sim.ctx(), &net, HostId(1), TcpConfig::default());
        let b = glue::tcp_host_over_simnet(sim.ctx(), &net, HostId(2), TcpConfig::default());

        let payload = Bytes::from(vec![0xAB; 200_000]);
        let expect = payload.len();
        let server = do_m! {
            let lst <- b.listen(80);
            let conn <- lst.unwrap().accept();
            let conn = conn.unwrap();
            let got <- recv_exact(&conn, expect);
            let echoed <- send_all(&conn, got.unwrap().slice(..1024));
            let _ = echoed.unwrap();
            ThreadM::pure(())
        };
        let back = sim
            .block_on(do_m! {
                sys_fork(server);
                let conn <- a.connect(Endpoint::new(HostId(2), 80));
                let conn = conn.unwrap();
                let sent <- send_all(&conn, payload);
                let _ = sent.unwrap();
                recv_exact(&conn, 1024)
            })
            .unwrap()
            .unwrap();
        assert_eq!(back.len(), 1024);
        assert!(back.iter().all(|&x| x == 0xAB));
        assert!(
            net.stats()
                .dropped
                .load(std::sync::atomic::Ordering::Relaxed)
                > 0,
            "the lossy link must actually drop segments for this test to bite"
        );
        // 200 KB over 100 Mbps is ≥ 16 ms of serialization alone.
        assert!(sim.now() >= 16_000_000, "virtual time = {}", sim.now());
    }
}
